//! Cross-crate integration tests exercising the public API end to end at
//! test-friendly scales.

use actcomp::compress::plan::CompressionPlan;
use actcomp::compress::spec::CompressorSpec;
use actcomp::core::throughput::{finetune_breakdown, pretrain_breakdown, Machine};
use actcomp::core::{accuracy, AccuracyConfig};
use actcomp::data::GlueTask;
use actcomp::mp::{MpBert, MpConfig};
use actcomp::nn::{BertConfig, BertEncoder};
use actcomp::perfmodel::PerfCoefficients;
use actcomp::tensor::init;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A small config for fast integration-level training.
fn small_accuracy_config() -> AccuracyConfig {
    let mut cfg = AccuracyConfig::paper_default();
    cfg.bert.layers = 4;
    cfg.bert.hidden = 32;
    cfg.bert.ff_hidden = 128;
    cfg.steps = 60;
    cfg.lr = 5e-4;
    cfg.seq = 16;
    cfg
}

#[test]
fn quickstart_flow_compress_and_decompress() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let x = init::randn(&mut rng, [16, 1024], 1.0);
    for spec in CompressorSpec::all() {
        let mut c = spec.build(&mut rng, x.len(), 1024);
        let msg = c.compress(&x);
        let y = c.decompress(&msg);
        assert_eq!(y.dims(), x.dims(), "{spec}");
        assert!(y.all_finite(), "{spec}");
        if spec != CompressorSpec::Baseline {
            assert!(msg.wire_bytes(2) < x.len() * 2, "{spec} did not compress");
        }
    }
}

#[test]
fn throughput_headlines_reproduce() {
    // Takeaway 1 condensed: AE speeds up the PCIe machine, Random-K is
    // catastrophic everywhere, and nothing much helps on NVLink.
    let pcie_base = finetune_breakdown(Machine::LocalPcie, 2, 2, 32, 512, CompressorSpec::Baseline);
    let pcie_a1 = finetune_breakdown(Machine::LocalPcie, 2, 2, 32, 512, CompressorSpec::A1);
    assert!(pcie_base.total_ms / pcie_a1.total_ms > 1.05);

    let nv_base = finetune_breakdown(Machine::AwsP3, 4, 1, 32, 512, CompressorSpec::Baseline);
    let nv_a1 = finetune_breakdown(Machine::AwsP3, 4, 1, 32, 512, CompressorSpec::A1);
    assert!(nv_a1.total_ms >= nv_base.total_ms * 0.99);

    let r4 = finetune_breakdown(Machine::AwsP3, 2, 2, 32, 512, CompressorSpec::R4);
    assert!(r4.total_ms > 20.0 * nv_base.total_ms);
}

#[test]
fn pretrain_headlines_reproduce() {
    // Takeaways 3–4: AE and Top-K help pre-training; quantization hurts.
    let base = pretrain_breakdown(4, 4, CompressorSpec::Baseline);
    let a2 = pretrain_breakdown(4, 4, CompressorSpec::A2);
    let t1 = pretrain_breakdown(4, 4, CompressorSpec::T1);
    let q2 = pretrain_breakdown(4, 4, CompressorSpec::Q2);
    assert!(a2.total_ms < base.total_ms);
    assert!(t1.total_ms < base.total_ms);
    assert!(q2.total_ms > base.total_ms);
    // AE's gain is in the double digits (paper: ~14–16%).
    assert!(base.total_ms / a2.total_ms > 1.05);
}

#[test]
fn accuracy_training_learns_through_compressed_stack() {
    // A real fine-tune through TP=2/PP=2 with the AE in the loop must
    // still learn the easy task far above chance.
    let cfg = small_accuracy_config().with_spec(CompressorSpec::A2);
    let r = accuracy::finetune(&cfg, GlueTask::Sst2);
    assert!(r.score > 75.0, "A2 SST-2 score {}", r.score);

    // And the uncompressed baseline is at least as good.
    let base = accuracy::finetune(&small_accuracy_config(), GlueTask::Sst2);
    assert!(base.score > 80.0, "baseline SST-2 score {}", base.score);
}

#[test]
fn sparsification_hurts_accuracy_more_than_ae() {
    // Table 5's ordering on the fragile sequential task, at small scale:
    // baseline ≥ AE ≫ aggressive Top-K.
    let base = accuracy::finetune(&small_accuracy_config(), GlueTask::Sst2).score;
    let t1 = accuracy::finetune(
        &small_accuracy_config().with_spec(CompressorSpec::T1),
        GlueTask::Sst2,
    )
    .score;
    assert!(
        base - t1 > 5.0,
        "T1 should clearly degrade: baseline {base} vs T1 {t1}"
    );
}

#[test]
fn pretrain_then_finetune_round_trip() {
    let mut cfg = small_accuracy_config().with_spec(CompressorSpec::A2);
    cfg.lr = 5e-4;
    let checkpoint = accuracy::pretrain(&cfg, 40);
    // The checkpoint is a plain serial model (compressors stripped) and
    // can be fine-tuned under a different setting.
    let ft = small_accuracy_config();
    let r = accuracy::finetune_from(&ft, &checkpoint, GlueTask::Sst2);
    assert!(r.score > 60.0, "post-pretrain score {}", r.score);
}

#[test]
fn mp_model_statistics_match_serial() {
    let bert = BertConfig {
        vocab: 32,
        hidden: 16,
        layers: 4,
        heads: 4,
        ff_hidden: 32,
        max_seq: 8,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut serial = BertEncoder::new(&mut rng, bert.clone());
    let cfg = MpConfig {
        bert,
        tp: 2,
        pp: 2,
        plan: CompressionPlan::none(),
        tokens: 8,
        error_feedback: false,
    };
    let mut rng2 = ChaCha8Rng::seed_from_u64(6);
    let mut mp = MpBert::from_serial(&serial, cfg, &mut rng2);
    assert_eq!(mp.num_params(), serial.num_params());
    let ids = [1usize, 2, 3, 4, 5, 6, 7, 8];
    let diff = mp
        .forward(&ids, 2, 4)
        .max_abs_diff(&serial.forward(&ids, 2, 4));
    assert!(diff < 1e-4, "serial/MP divergence {diff}");
}

#[test]
fn perfmodel_consistent_with_simulator_trend() {
    // Both the analytical model and the simulator agree the AE's benefit
    // shrinks with hidden size on a fixed cluster.
    let m = PerfCoefficients::paper();
    let s_small = m.speedup(16, 128, 4096, 400);
    let s_large = m.speedup(16, 128, 16384, 1600);
    assert!(s_small > s_large);
}
