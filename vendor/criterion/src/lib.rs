//! Offline stand-in for `criterion`.
//!
//! Runs each benchmark body a small fixed number of timed iterations and
//! prints a one-line mean. No statistics, warm-up, or HTML reports — just
//! enough to keep `cargo bench` targets compiling and smoke-runnable
//! without network access.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

const ITERS: u32 = 10;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the amount of work per iteration (ignored by this shim).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// Identifier for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter description.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Work performed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to each benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    total_nanos: u128,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..ITERS {
            let start = Instant::now();
            let out = routine();
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
            std::hint::black_box(out);
        }
    }
}

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let mean = if bencher.iters > 0 {
        bencher.total_nanos / bencher.iters as u128
    } else {
        0
    };
    println!("bench {name}: {mean} ns/iter (n={})", bencher.iters);
}

/// Declares a group-runner function over a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed `criterion_group!` runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("times", 3u32), &3u32, |b, &k| {
            b.iter(|| k * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn shim_runs() {
        benches();
    }
}
