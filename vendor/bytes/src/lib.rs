//! Offline stand-in for the `bytes` crate: just an immutable,
//! cheaply-clonable byte buffer, which is all this workspace uses.

#![warn(missing_docs)]

use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    inner: Arc<Vec<u8>>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.as_ref().clone()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: Arc::new(data.to_vec()),
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { inner: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_derefs() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
    }
}
