//! Offline vendored `derive(Serialize, Deserialize)` for the vendored
//! `serde` value model.
//!
//! Parses the deriving item with a small hand-rolled token walker (no
//! `syn`/`quote` available offline) and emits impls of
//! `serde::Serialize::to_value` / `serde::Deserialize::from_value`. The
//! encoding matches what real serde_json produces for the shapes this
//! workspace uses: structs with named fields, and enums with unit,
//! newtype/tuple, and struct variants — no generics, no `#[serde]`
//! attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<(String, VariantKind)>,
    },
}

/// A named field; `optional` fields (type `Option<...>`) read missing JSON
/// keys as `null` instead of erroring.
#[derive(Debug)]
struct Field {
    name: String,
    optional: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// Skips attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(crate)`), returning the next meaningful token.
fn next_meaningful(
    iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> Option<TokenTree> {
    loop {
        match iter.next()? {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Swallow the bracket group of the attribute.
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("expected attribute brackets after `#`, got {other:?}"),
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Swallow a possible restriction like `(crate)`.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            other => return Some(other),
        }
    }
}

/// Parses `name: Type,` sequences from the tokens of a brace group.
fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut iter = group.into_iter().peekable();
    let mut fields = Vec::new();
    while let Some(tok) = next_meaningful(&mut iter) {
        let name = match tok {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type — but note whether it starts with `Option` —
        // consuming until a comma at angle-bracket depth 0.
        let mut optional = false;
        let mut first_type_token = true;
        let mut depth: i32 = 0;
        for t in iter.by_ref() {
            match t {
                TokenTree::Ident(ref id) if first_type_token => {
                    optional = id.to_string() == "Option";
                }
                TokenTree::Punct(ref p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(ref p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(ref p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            first_type_token = false;
        }
        fields.push(Field { name, optional });
    }
    fields
}

/// Counts the top-level comma-separated items in a paren group
/// (tuple-variant field count).
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_any = false;
    let mut depth: i32 = 0;
    for t in group {
        saw_any = true;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let keyword = match next_meaningful(&mut iter) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("derive(Serialize/Deserialize) on generic type `{name}` is not supported by the vendored serde");
        }
    }
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("tuple struct `{name}` is not supported by the vendored serde derive")
        }
        other => panic!("expected body of `{name}`, got {other:?}"),
    };
    match keyword.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => {
            let mut variants = Vec::new();
            let mut iter = body.into_iter().peekable();
            while let Some(tok) = next_meaningful(&mut iter) {
                let vname = match tok {
                    TokenTree::Ident(id) => id.to_string(),
                    other => panic!("expected variant name, got {other:?}"),
                };
                let kind = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g.stream());
                        iter.next();
                        VariantKind::Tuple(n)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        iter.next();
                        VariantKind::Struct(fields)
                    }
                    _ => VariantKind::Unit,
                };
                // Swallow the trailing comma, if any.
                if let Some(TokenTree::Punct(p)) = iter.peek() {
                    if p.as_char() == ',' {
                        iter.next();
                    }
                }
                variants.push((vname, kind));
            }
            Item::Enum { name, variants }
        }
        other => panic!("cannot derive Serialize/Deserialize for `{other}` item"),
    }
}

fn binders(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("f{i}")).collect()
}

fn generate_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, kind)| match kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Obj(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                    ),
                    VariantKind::Tuple(n) => {
                        let bs = binders(*n);
                        let items: Vec<String> = bs
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Obj(vec![(\"{v}\".to_string(), ::serde::Value::Arr(vec![{}]))]),",
                            bs.join(", "),
                            items.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let names: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {} }} => ::serde::Value::Obj(vec![(\"{v}\".to_string(), ::serde::Value::Obj(vec![{}]))]),",
                            names.join(", "),
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

/// Field initializer inside a deserialized struct literal. Optional fields
/// fall back to `null` (→ `None`) when the key is missing.
fn field_init(f: &Field) -> String {
    let name = &f.name;
    if f.optional {
        format!(
            "{name}: ::serde::Deserialize::from_value(::serde::obj_get_opt(entries, \"{name}\"))?"
        )
    } else {
        format!("{name}: ::serde::Deserialize::from_value(::serde::obj_get(entries, \"{name}\")?)?")
    }
}

fn generate_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields.iter().map(field_init).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let entries = v.as_obj().ok_or_else(|| ::serde::Error::custom(\
                             format!(\"expected object for {name}, got {{}}\", v.kind())))?;\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, k)| matches!(k, VariantKind::Unit))
                .map(|(v, _)| format!("\"{v}\" => return Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, kind)| match kind {
                    VariantKind::Unit => None,
                    VariantKind::Tuple(1) => Some(format!(
                        "\"{v}\" => return Ok({name}::{v}(::serde::Deserialize::from_value(payload)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_value(&items[{i}])?")
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                                 let items = payload.as_arr().ok_or_else(|| ::serde::Error::custom(\
                                     \"expected array payload for variant {v}\"))?;\n\
                                 if items.len() != {n} {{\n\
                                     return Err(::serde::Error::custom(\
                                         format!(\"variant {v} expects {n} values, got {{}}\", items.len())));\n\
                                 }}\n\
                                 return Ok({name}::{v}({}));\n\
                             }}",
                            gets.join(", ")
                        ))
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields.iter().map(field_init).collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                                 let entries = payload.as_obj().ok_or_else(|| ::serde::Error::custom(\
                                     \"expected object payload for variant {v}\"))?;\n\
                                 return Ok({name}::{v} {{ {} }});\n\
                             }}",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let ::serde::Value::Str(s) = v {{\n\
                             match s.as_str() {{\n{unit}\n_ => {{}}\n}}\n\
                             return Err(::serde::Error::custom(\
                                 format!(\"unknown {name} variant `{{s}}`\")));\n\
                         }}\n\
                         if let Some(entries) = v.as_obj() {{\n\
                             if entries.len() == 1 {{\n\
                                 let (tag, payload) = &entries[0];\n\
                                 match tag.as_str() {{\n{data}\n_ => {{}}\n}}\n\
                                 return Err(::serde::Error::custom(\
                                     format!(\"unknown {name} variant `{{tag}}`\")));\n\
                             }}\n\
                         }}\n\
                         Err(::serde::Error::custom(\
                             format!(\"expected {name} variant, got {{}}\", v.kind())))\n\
                     }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    }
}

/// Derives `serde::Serialize` (vendored value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (vendored value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}
