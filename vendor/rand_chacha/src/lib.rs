//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream generator
//! behind the [`rand::RngCore`] / [`rand::SeedableRng`] traits.
//!
//! This is genuine ChaCha (Bernstein's quarter-round over a 16-word
//! state), so streams are high quality and reproducible from a seed; the
//! word-level output order is not guaranteed to match upstream
//! `rand_chacha`, which nothing in this workspace depends on.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "{same} of 64 words collide");
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
