//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with range, tuple, `Just`, `prop_map`, and
//! `collection::vec` strategies, plus the `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, and `prop_assume!` macros. Cases are generated from
//! a deterministic per-test RNG; there is no shrinking — a failing case
//! panics with the assertion message, which the standard test harness
//! reports.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator state for one property test.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from the test name so each property gets its own stream.
    pub fn new(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h | 1)
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A rejected test case (failed `prop_assume!`); the case is skipped.
#[derive(Debug)]
pub struct Reject;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// Sampling strategies (`proptest::sample` subset).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy that picks uniformly among a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Picks uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.next_u64() as usize % self.0.len()].clone()
        }
    }
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Acceptable size arguments for [`vec`]: an exact length or a range.
    pub trait IntoSizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize % (self.end - self.start))
        }
    }

    /// Strategy for vectors of `inner`-generated elements.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        inner: S,
        len: L,
    }

    /// Generates `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `inner`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(inner: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { inner, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.inner.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            panic!(
                "prop_assert_eq failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            panic!($($fmt)+);
        }
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::Reject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20),
                        "too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::Reject> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The customary glob import: traits, config, macros, and `prop` alias.
pub mod prelude {
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps(pair in (0u64..5, 0u64..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 8, "sum {pair}");
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u8..=255, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
