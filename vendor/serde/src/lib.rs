//! Offline stand-in for `serde`.
//!
//! Real `serde` decouples data structures from data formats through a
//! visitor-based data model. This vendored replacement collapses that
//! generality into a single concrete value tree ([`Value`]): serializers
//! produce a `Value`, deserializers consume one. The only format in this
//! workspace is JSON (see the vendored `serde_json`), for which the value
//! tree is a faithful model. The `derive(Serialize, Deserialize)` macros
//! are provided by the vendored `serde_derive` and generate the same
//! field-name/variant-name encoding real serde_json would.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the pivot between typed data and text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or small signed integer.
    I64(i64),
    /// Non-negative integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A one-word description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Looks up a required field in object entries.
pub fn obj_get<'a>(entries: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

/// Looks up an optional field: missing keys read as `Value::Null` (so
/// `Option<T>` fields may simply be omitted from the serialized form).
pub fn obj_get_opt<'a>(entries: &'a [(String, Value)], key: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) if *n <= i64::MAX as u64 => *n as i64,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!(
                        "expected number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::custom(format!(
                "expected single-character string, got {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {got}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$(stringify!($idx)),+].len();
                let items = v.as_arr().ok_or_else(|| {
                    Error::custom(format!("expected array (tuple), got {}", v.kind()))
                })?;
                if items.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected tuple of {LEN} elements, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}
impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_and_tuple_round_trip() {
        let x: Option<(usize, usize)> = Some((3, 9));
        let v = x.to_value();
        assert_eq!(<Option<(usize, usize)>>::from_value(&v).unwrap(), x);
        let n: Option<f64> = None;
        assert_eq!(<Option<f64>>::from_value(&n.to_value()).unwrap(), None);
    }

    #[test]
    fn vec_round_trip() {
        let xs = vec![vec![1u64, 2], vec![3]];
        assert_eq!(<Vec<Vec<u64>>>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn out_of_range_is_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(i64::from_value(&Value::Str("x".into())).is_err());
    }
}
