//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde::Value` tree as JSON text.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let v = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::custom("cannot serialize non-finite float as JSON"));
            }
            let s = f.to_string();
            out.push_str(&s);
            // Keep round-trips typed as floats (serde_json prints `1.0`).
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 until a quote or escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_render() {
        let v = vec![1u64, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2,\n  3\n]");
    }

    #[test]
    fn parses_nested() {
        let v: Vec<Vec<f64>> = from_str("[[1.5, 2.0], [], [3]]").unwrap();
        assert_eq!(v, vec![vec![1.5, 2.0], vec![], vec![3.0]]);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{0001}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn floats_stay_floats() {
        let x = 2.0f64;
        let json = to_string(&x).unwrap();
        assert_eq!(json, "2.0");
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5x").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn option_null_round_trip() {
        let x: Option<f64> = None;
        let json = to_string(&x).unwrap();
        assert_eq!(json, "null");
        let back: Option<f64> = from_str(&json).unwrap();
        assert_eq!(back, None);
    }
}
