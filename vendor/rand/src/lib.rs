//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `rand` it actually uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, uniform range and Bernoulli
//! sampling, slice shuffling, and `seq::index::sample`. Algorithms are
//! simple and deterministic; they do not reproduce upstream `rand`'s
//! exact streams, which no test in this repository depends on.

#![warn(missing_docs)]

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from their "natural" domain
/// (`rand`'s `Standard` distribution): full range for integers, `[0, 1)`
/// for floats, fair coin for `bool`.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
float_range!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over the type's natural domain (see
    /// [`StandardSample`]).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        <f64 as StandardSample>::sample(self) < p
    }

    /// Fills `dest` with random bytes (alias of
    /// [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same scheme
    /// `rand_core` uses) and builds the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers (`rand::seq` subset).
pub mod seq {
    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Index sampling without replacement (`rand::seq::index` subset).
    pub mod index {
        use super::super::Rng;

        /// A set of sampled indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterates over the indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length`, uniformly,
        /// via a partial Fisher–Yates pass.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            let mut idx: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                idx.swap(i, j);
            }
            idx.truncate(amount);
            IndexVec(idx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Lcg(7);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = r.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i: i64 = r.gen_range(-10i64..=10);
            assert!((-10..=10).contains(&i));
        }
    }

    #[test]
    fn unit_floats_are_unit() {
        let mut r = Lcg(3);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let f: f32 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn sample_returns_distinct_indices() {
        let mut r = Lcg(11);
        let got = seq::index::sample(&mut r, 10, 4).into_vec();
        assert_eq!(got.len(), 4);
        let set: std::collections::HashSet<_> = got.iter().collect();
        assert_eq!(set.len(), 4);
        assert!(got.iter().all(|&i| i < 10));
    }

    #[test]
    fn shuffle_permutes() {
        use seq::SliceRandom;
        let mut r = Lcg(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
