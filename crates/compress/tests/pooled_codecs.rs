//! Pool-size invariance of the public codec API.
//!
//! The unit-level proptests pin down the internal chunked kernels; this
//! test exercises the *public* `Compressor` round trips under the real
//! process-wide pool configuration and asserts that pools of 1, 2, and
//! 8 workers produce bit-identical messages and reconstructions.
//!
//! Everything runs inside a single `#[test]` so the global
//! `pool::set_threads` never races a concurrently running test.

use actcomp_compress::{
    AutoEncoder, Compressed, Compressor, Identity, Payload, Quantizer, RandomK, RowQuantizer,
    RowTopK, StochasticQuantizer, TopK,
};
use actcomp_tensor::{init, pool, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Byte-exact equality of two compressed messages.
fn msg_eq(a: &Compressed, b: &Compressed) -> bool {
    if a.shape() != b.shape() {
        return false;
    }
    match (a.payload(), b.payload()) {
        (Payload::Dense(x), Payload::Dense(y)) => tensor_eq(x, y),
        (
            Payload::Sparse {
                values: va,
                indices: ia,
            },
            Payload::Sparse {
                values: vb,
                indices: ib,
            },
        ) => ia == ib && va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits()),
        (
            Payload::Quantized {
                codes: ca,
                bits: ba,
                scale: sa,
                zero: za,
            },
            Payload::Quantized {
                codes: cb,
                bits: bb,
                scale: sb,
                zero: zb,
            },
        ) => ca == cb && ba == bb && sa.to_bits() == sb.to_bits() && za.to_bits() == zb.to_bits(),
        _ => false,
    }
}

fn tensor_eq(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Fresh codec instances per pool size, so stateful codecs (rng
/// streams, caches, error-feedback residuals) start from the same seed
/// every time.
fn codecs() -> Vec<(&'static str, Box<dyn Compressor>)> {
    let mut wrng = ChaCha8Rng::seed_from_u64(11);
    vec![
        ("identity", Box::new(Identity::new())),
        ("topk", Box::new(TopK::new(700))),
        ("rowtopk", Box::new(RowTopK::new(9))),
        ("randk", Box::new(RandomK::new(500, 5))),
        ("quant2", Box::new(Quantizer::new(2))),
        ("quant4", Box::new(Quantizer::new(4))),
        ("quant8", Box::new(Quantizer::new(8))),
        ("rowquant4", Box::new(RowQuantizer::new(4))),
        ("stochquant4", Box::new(StochasticQuantizer::new(4, 13))),
        ("autoencoder", Box::new(AutoEncoder::new(&mut wrng, 64, 16))),
    ]
}

#[test]
fn public_codec_round_trips_are_pool_size_invariant() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    // 96 × 64 is large enough that every chunked kernel actually
    // splits at 8 workers (6144 elements, 96 rows).
    let x = init::randn(&mut rng, [96, 64], 1.5);
    let dy = init::randn(&mut rng, [96, 64], 0.7);

    // Reference pass on a single worker.
    pool::set_threads(1);
    let mut reference: Vec<(Compressed, Tensor, Tensor)> = Vec::new();
    for (_, mut c) in codecs() {
        let msg = c.compress(&x);
        let dec = c.decompress(&msg);
        let dx = c.backward(&dy);
        reference.push((msg, dec, dx));
    }

    for threads in [2usize, 8] {
        pool::set_threads(threads);
        for ((name, mut c), (ref_msg, ref_dec, ref_dx)) in codecs().into_iter().zip(&reference) {
            let msg = c.compress(&x);
            assert!(
                msg_eq(&msg, ref_msg),
                "{name}: compress diverged at {threads} threads"
            );
            let dec = c.decompress(&msg);
            assert!(
                tensor_eq(&dec, ref_dec),
                "{name}: decompress diverged at {threads} threads"
            );
            let dx = c.backward(&dy);
            assert!(
                tensor_eq(&dx, ref_dx),
                "{name}: backward diverged at {threads} threads"
            );
        }
    }
    pool::set_threads(1);
}
