//! Property-based tests on compressor invariants.

use actcomp_compress::{
    spec::CompressorSpec, AutoEncoder, Compressor, ErrorFeedback, Identity, Quantizer, RandomK,
    TopK,
};
use actcomp_tensor::Tensor;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tensor_strategy(m: usize, n: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-100.0f32..100.0, m * n)
        .prop_map(move |v| Tensor::from_vec(v, [m, n]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn topk_keeps_largest_magnitudes(x in tensor_strategy(4, 8), k in 1usize..32) {
        let mut c = TopK::new(k);
        let y = c.round_trip(&x);
        let kept: Vec<f32> = y.as_slice().iter().copied().filter(|v| *v != 0.0).collect();
        // Every dropped |value| must be <= every kept |value| (modulo exact ties).
        let kept_min = kept.iter().map(|v| v.abs()).fold(f32::INFINITY, f32::min);
        for (&orig, &rec) in x.as_slice().iter().zip(y.as_slice()) {
            if rec == 0.0 && orig != 0.0 {
                prop_assert!(orig.abs() <= kept_min + 1e-6);
            }
        }
        prop_assert!(kept.len() <= k);
    }

    #[test]
    fn topk_round_trip_never_increases_norm(x in tensor_strategy(3, 9), k in 1usize..27) {
        let mut c = TopK::new(k);
        let y = c.round_trip(&x);
        prop_assert!(y.norm() <= x.norm() + 1e-4);
    }

    #[test]
    fn randk_support_size_and_values(x in tensor_strategy(4, 8), k in 1usize..32, seed in 0u64..1000) {
        let mut c = RandomK::new(k, seed);
        let y = c.round_trip(&x);
        let kept = y.as_slice().iter().filter(|v| **v != 0.0).count();
        prop_assert!(kept <= k.min(32));
        // Every kept value is an original value scaled by n/k.
        let scale = 32.0 / k.min(32) as f32;
        for (&orig, &rec) in x.as_slice().iter().zip(y.as_slice()) {
            if rec != 0.0 {
                prop_assert!((rec - orig * scale).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn quant_error_within_half_step(x in tensor_strategy(4, 8), bits in prop::sample::select(vec![2u8, 4, 8])) {
        let mut q = Quantizer::new(bits);
        let y = q.round_trip(&x);
        let step = (x.max() - x.min()) / ((1u32 << bits) - 1) as f32;
        prop_assert!(x.max_abs_diff(&y) <= step / 2.0 + 1e-4);
    }

    #[test]
    fn quant_preserves_min_max(x in tensor_strategy(2, 16)) {
        let mut q = Quantizer::new(8);
        let y = q.round_trip(&x);
        prop_assert!((y.min() - x.min()).abs() < 1e-4 * (1.0 + x.min().abs()));
        prop_assert!((y.max() - x.max()).abs() < 1e-4 * (1.0 + x.max().abs()));
    }

    #[test]
    fn ae_linearity(x in tensor_strategy(3, 16), s in -3.0f32..3.0) {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut ae = AutoEncoder::new(&mut rng, 16, 4);
        let y1 = ae.round_trip(&x.scale(s));
        let y2 = ae.round_trip(&x).scale(s);
        prop_assert!(y1.max_abs_diff(&y2) < 1e-2 * (1.0 + y2.abs_max()));
    }

    #[test]
    fn identity_is_lossless(x in tensor_strategy(4, 4)) {
        prop_assert_eq!(Identity::new().round_trip(&x), x);
    }

    #[test]
    fn error_feedback_residual_equals_error(x in tensor_strategy(2, 8), k in 1usize..16) {
        let mut ef = ErrorFeedback::new(TopK::new(k));
        let y = ef.round_trip(&x);
        let residual = ef.residual().unwrap().clone();
        // First step: residual == x - reconstruction exactly.
        prop_assert!(residual.max_abs_diff(&x.sub(&y)) < 1e-6);
    }

    #[test]
    fn spec_wire_bytes_match_built_compressor(rows in 1usize..6) {
        // Build each spec against a small-but-divisible geometry and verify
        // the spec's predicted wire bytes match the real message.
        let h = 1024;
        let n = rows * h;
        let x = Tensor::ones([rows, h]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for spec in CompressorSpec::all() {
            let mut c = spec.build(&mut rng, n, h);
            let msg = c.compress(&x);
            let predicted = spec.wire_bytes(n, h);
            let actual = msg.wire_bytes(2);
            let denom = predicted.max(1) as f64;
            prop_assert!(
                ((predicted as f64 - actual as f64).abs() / denom) < 0.05,
                "{}: predicted {} vs actual {}", spec, predicted, actual
            );
        }
    }

    #[test]
    fn codec_round_trip_preserves_shape_and_wire_bytes(
        rows in prop::sample::select(vec![1usize, 2, 4]),
        seed in 0u64..64,
        v in proptest::collection::vec(-50.0f32..50.0, 4 * 1024),
    ) {
        // Encode → decode for every Table 1 spec: the reconstruction must
        // come back in the activation's shape, and the message's measured
        // wire size must match the spec's claimed byte arithmetic.
        let h = 1024;
        let n = rows * h;
        let x = Tensor::from_vec(v[..n].to_vec(), [rows, h]);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for spec in CompressorSpec::all() {
            let mut c = spec.build(&mut rng, n, h);
            let msg = c.compress(&x);
            let y = c.decompress(&msg);
            prop_assert_eq!(
                y.shape().dims(), x.shape().dims(),
                "{}: decode shape {:?} != input {:?}", spec, y.shape(), x.shape()
            );
            let predicted = spec.wire_bytes(n, h);
            let actual = msg.wire_bytes(2);
            let denom = predicted.max(1) as f64;
            prop_assert!(
                ((predicted as f64 - actual as f64).abs() / denom) < 0.05,
                "{}: claimed {} wire bytes, measured {}", spec, predicted, actual
            );
        }
    }

    #[test]
    fn compressed_is_never_larger_than_dense_for_real_specs(rows in 1usize..4) {
        let h = 1024;
        let n = rows * h;
        let dense = n * 2;
        for spec in CompressorSpec::all() {
            if matches!(spec, CompressorSpec::Baseline) {
                continue;
            }
            let bytes = spec.wire_bytes(n, h);
            prop_assert!(bytes < dense, "{}: {} >= {}", spec, bytes, dense);
        }
    }
}
