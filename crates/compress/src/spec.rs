//! The paper's Table 1 notation: `A1`, `A2`, `T1`–`T4`, `R1`–`R4`,
//! `Q1`–`Q3`, and the uncompressed baseline `w/o`.
//!
//! Each spec resolves to a configured [`Compressor`] given the activation
//! geometry. The paper defines the settings at BERT-Large scale
//! (`h = 1024`): `A1`/`A2` are auto-encoders with code dims 50/100;
//! `T1`/`R1` match A1's *communication cost*; `T3`/`R3` match A1's
//! *compression ratio* (and `T2`/`T4`/`R2`/`R4` likewise for A2);
//! `Q1`/`Q2`/`Q3` quantize to 2/4/8 bits. At other hidden sizes the code
//! dims scale proportionally so the compression ratios are preserved.

use crate::{AutoEncoder, Compressor, Identity, Quantizer, RandomK, TopK};
use rand::Rng;

/// Hidden size at which the paper defines the Table 1 settings.
pub const PAPER_HIDDEN: usize = 1024;
/// A1 / T1 / R1 / T3 / R3 reference code dimension at `h = 1024`.
pub const A1_CODE_DIM: usize = 50;
/// A2 / T2 / R2 / T4 / R4 reference code dimension at `h = 1024`.
pub const A2_CODE_DIM: usize = 100;
/// Wire bytes of one sparse element: an fp16 value plus a 32-bit index.
pub const SPARSE_ELEM_BYTES: usize = 6;
/// Wire bytes of one dense fp16 element.
pub const DENSE_ELEM_BYTES: usize = 2;

/// A spec was asked for a parameter its family does not define.
///
/// The typed counterpart of the panics in [`CompressorSpec::code_dim`],
/// [`CompressorSpec::quant_bits`] and [`CompressorSpec::sparsifier_k`]:
/// config-driven callers (e.g. the static checker) use the `try_*`
/// variants and surface these as diagnostics instead of crashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecError {
    /// The spec is not AE-relative, so it has no code dimension.
    NoCodeDim(CompressorSpec),
    /// The spec is not a quantizer, so it has no bit width.
    NotQuantizer(CompressorSpec),
    /// The spec is not a sparsifier, so it keeps no top/random elements.
    NotSparsifier(CompressorSpec),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::NoCodeDim(s) => write!(f, "{} has no code dimension", s.label()),
            SpecError::NotQuantizer(s) => write!(f, "{} has no quantization width", s.label()),
            SpecError::NotSparsifier(s) => write!(f, "{} is not a sparsifier", s.label()),
        }
    }
}

impl std::error::Error for SpecError {}

/// The algorithm family a spec belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Family {
    /// No compression (`w/o`).
    None,
    /// Auto-encoder (learning-based).
    AutoEncoder,
    /// Top-K sparsification.
    TopK,
    /// Random-K sparsification.
    RandomK,
    /// Uniform quantization.
    Quantization,
}

/// One of the paper's named compression settings (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)] // variants are the paper's own notation
pub enum CompressorSpec {
    Baseline,
    A1,
    A2,
    T1,
    T2,
    T3,
    T4,
    R1,
    R2,
    R3,
    R4,
    Q1,
    Q2,
    Q3,
}

impl CompressorSpec {
    /// Every spec, in the paper's table order (baseline first).
    pub fn all() -> [CompressorSpec; 14] {
        use CompressorSpec::*;
        [Baseline, A1, A2, T1, T2, T3, T4, R1, R2, R3, R4, Q1, Q2, Q3]
    }

    /// The specs evaluated in the paper's main tables (no `Q3`).
    pub fn main_table() -> [CompressorSpec; 13] {
        use CompressorSpec::*;
        [Baseline, A1, A2, T1, T2, T3, T4, R1, R2, R3, R4, Q1, Q2]
    }

    /// The paper's label for this spec.
    pub fn label(&self) -> &'static str {
        use CompressorSpec::*;
        match self {
            Baseline => "w/o",
            A1 => "A1",
            A2 => "A2",
            T1 => "T1",
            T2 => "T2",
            T3 => "T3",
            T4 => "T4",
            R1 => "R1",
            R2 => "R2",
            R3 => "R3",
            R4 => "R4",
            Q1 => "Q1",
            Q2 => "Q2",
            Q3 => "Q3",
        }
    }

    /// Algorithm family.
    pub fn family(&self) -> Family {
        use CompressorSpec::*;
        match self {
            Baseline => Family::None,
            A1 | A2 => Family::AutoEncoder,
            T1 | T2 | T3 | T4 => Family::TopK,
            R1 | R2 | R3 | R4 => Family::RandomK,
            Q1 | Q2 | Q3 => Family::Quantization,
        }
    }

    /// The reference code dimension (`c` at `h = 1024`) this spec derives
    /// from, if it is AE-relative.
    fn reference_code_dim(&self) -> Option<usize> {
        use CompressorSpec::*;
        match self {
            A1 | T1 | T3 | R1 | R3 => Some(A1_CODE_DIM),
            A2 | T2 | T4 | R2 | R4 => Some(A2_CODE_DIM),
            _ => None,
        }
    }

    /// Auto-encoder code dimension at hidden size `h` (scaled from the
    /// paper's `h = 1024` definition, minimum 1), or [`SpecError`] when
    /// the spec is not AE-relative.
    pub fn try_code_dim(&self, h: usize) -> Result<usize, SpecError> {
        let c = self
            .reference_code_dim()
            .ok_or(SpecError::NoCodeDim(*self))?;
        Ok((c * h / PAPER_HIDDEN).max(1))
    }

    /// Auto-encoder code dimension at hidden size `h` (scaled from the
    /// paper's `h = 1024` definition, minimum 1).
    ///
    /// # Panics
    ///
    /// Panics if the spec is not AE-relative.
    pub fn code_dim(&self, h: usize) -> usize {
        self.try_code_dim(h).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Quantization width in bits, or [`SpecError`] when the spec is not
    /// a quantizer.
    pub fn try_quant_bits(&self) -> Result<u8, SpecError> {
        use CompressorSpec::*;
        match self {
            Q1 => Ok(2),
            Q2 => Ok(4),
            Q3 => Ok(8),
            _ => Err(SpecError::NotQuantizer(*self)),
        }
    }

    /// Quantization width in bits.
    ///
    /// # Panics
    ///
    /// Panics if the spec is not a quantizer.
    pub fn quant_bits(&self) -> u8 {
        self.try_quant_bits().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of kept elements for sparsifiers, for an activation of `n`
    /// elements and hidden width `h`.
    ///
    /// `T1/T2/R1/R2` match the AE's *communication cost*: the AE sends
    /// `n·c/h` dense fp16 values, a sparse element costs 3× more bytes, so
    /// `k = n·c/(3h)`. `T3/T4/R3/R4` match the AE's *compression ratio*
    /// (`h/c`), so `k = n·c/h`.
    ///
    /// Typed variant of [`CompressorSpec::sparsifier_k`]: [`SpecError`]
    /// when the spec is not a sparsifier.
    pub fn try_sparsifier_k(&self, n: usize, h: usize) -> Result<usize, SpecError> {
        use CompressorSpec::*;
        if !matches!(self.family(), Family::TopK | Family::RandomK) {
            return Err(SpecError::NotSparsifier(*self));
        }
        let c = self
            .reference_code_dim()
            .expect("sparsifiers are AE-relative");
        // The scaled code dim is c·h/1024, so k as a fraction of n depends
        // only on the reference c: k/n = c_scaled/h = c/1024 (and a third of
        // that when matching bytes instead of ratio). `h` is accepted for
        // signature symmetry with the AE path.
        let _ = h;
        let k = match self {
            T1 | T2 | R1 | R2 => n * c / PAPER_HIDDEN / (SPARSE_ELEM_BYTES / DENSE_ELEM_BYTES),
            _ => n * c / PAPER_HIDDEN,
        };
        Ok(k.max(1))
    }

    /// # Panics
    ///
    /// Panics if the spec is not a sparsifier.
    pub fn sparsifier_k(&self, n: usize, h: usize) -> usize {
        self.try_sparsifier_k(n, h)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Expected wire bytes for an activation of `n` elements at hidden
    /// width `h`, at fp16 dense width. The baseline sends `2n` bytes.
    pub fn wire_bytes(&self, n: usize, h: usize) -> usize {
        match self.family() {
            Family::None => n * DENSE_ELEM_BYTES,
            Family::AutoEncoder => {
                let c = self.code_dim(h);
                n / h * c * DENSE_ELEM_BYTES
            }
            Family::TopK | Family::RandomK => self.sparsifier_k(n, h) * SPARSE_ELEM_BYTES,
            Family::Quantization => n * self.quant_bits() as usize / 8 + 8,
        }
    }

    /// Builds the configured compressor for activations of `n` elements
    /// with hidden width `h`. The RNG seeds the auto-encoder's matrices
    /// and Random-K's sampling stream.
    pub fn build(&self, rng: &mut impl Rng, n: usize, h: usize) -> Box<dyn Compressor> {
        match self.family() {
            Family::None => Box::new(Identity::new()),
            Family::AutoEncoder => Box::new(AutoEncoder::new(rng, h, self.code_dim(h))),
            Family::TopK => Box::new(TopK::new(self.sparsifier_k(n, h))),
            Family::RandomK => Box::new(RandomK::new(self.sparsifier_k(n, h), rng.gen())),
            Family::Quantization => Box::new(Quantizer::new(self.quant_bits())),
        }
    }
}

impl std::fmt::Display for CompressorSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use CompressorSpec::*;

    #[test]
    fn paper_scale_code_dims() {
        assert_eq!(A1.code_dim(1024), 50);
        assert_eq!(A2.code_dim(1024), 100);
        // Tiny model keeps the ratio (~20x / ~10x).
        assert_eq!(A1.code_dim(64), 3);
        assert_eq!(A2.code_dim(64), 6);
    }

    #[test]
    fn comm_cost_matched_specs_send_ae_bytes() {
        // T1 at paper scale must cost (approximately) what A1 costs.
        let n = 32 * 512 * 1024; // b·s·h
        let a1 = A1.wire_bytes(n, 1024);
        let t1 = T1.wire_bytes(n, 1024);
        let rel = (a1 as f64 - t1 as f64).abs() / a1 as f64;
        assert!(rel < 0.05, "A1 {a1} vs T1 {t1}");
    }

    #[test]
    fn ratio_matched_specs_keep_ae_ratio() {
        // T3's element ratio equals A1's compression ratio (~20.5x).
        let n = 1024 * 1024;
        let k = T3.sparsifier_k(n, 1024);
        let ratio = n as f64 / k as f64;
        assert!((ratio - 20.48).abs() < 0.5, "ratio {ratio}");
        // ...which makes T3's *bytes* 3x A1's.
        let bytes_ratio = T3.wire_bytes(n, 1024) as f64 / A1.wire_bytes(n, 1024) as f64;
        assert!((bytes_ratio - 3.0).abs() < 0.1, "byte ratio {bytes_ratio}");
    }

    #[test]
    fn quant_bits_and_bytes() {
        assert_eq!(Q1.quant_bits(), 2);
        assert_eq!(Q2.quant_bits(), 4);
        assert_eq!(Q3.quant_bits(), 8);
        let n = 4096;
        assert!(Q1.wire_bytes(n, 1024) < Q2.wire_bytes(n, 1024));
        assert!(Q2.wire_bytes(n, 1024) < Q3.wire_bytes(n, 1024));
        // 2-bit quant is 8x smaller than fp16.
        assert!(
            (Baseline.wire_bytes(n, 1024) as f64 / Q1.wire_bytes(n, 1024) as f64 - 8.0).abs() < 0.2
        );
    }

    #[test]
    fn build_produces_right_family() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let n = 8 * 1024;
        assert_eq!(Baseline.build(&mut rng, n, 1024).name(), "identity");
        assert_eq!(A1.build(&mut rng, n, 1024).name(), "ae");
        assert_eq!(T2.build(&mut rng, n, 1024).name(), "topk");
        assert_eq!(R3.build(&mut rng, n, 1024).name(), "randk");
        assert_eq!(Q2.build(&mut rng, n, 1024).name(), "quant");
    }

    #[test]
    fn all_contains_unique_labels() {
        let labels: std::collections::HashSet<_> =
            CompressorSpec::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 14);
    }

    #[test]
    fn only_ae_and_baseline_are_summable() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for spec in CompressorSpec::all() {
            let c = spec.build(&mut rng, 4096, 1024);
            let expect = matches!(spec.family(), Family::None | Family::AutoEncoder);
            assert_eq!(c.summable(), expect, "{spec}");
        }
    }
}
