//! Which layers get compressed, and with what.

use crate::spec::CompressorSpec;
use serde::{Deserialize, Serialize};

/// A placement that cannot exist on the model it targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanError {
    /// Asked to compress more layers than the model has.
    WindowExceedsModel {
        /// Layers requested.
        n: usize,
        /// Layers available.
        total_layers: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::WindowExceedsModel { n, total_layers } => {
                write!(f, "cannot compress {n} of {total_layers} layers")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A compression placement: apply `spec` to the activations of layers
/// `[start_layer, start_layer + num_layers)`.
///
/// The paper's default compresses the **last 12 of 24 layers** (§4.1);
/// §4.5 sweeps both the count and the location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CompressionPlan {
    /// The algorithm/setting applied.
    pub spec: CompressorSpec,
    /// First (0-based) compressed layer.
    pub start_layer: usize,
    /// Number of consecutive compressed layers.
    pub num_layers: usize,
}

impl CompressionPlan {
    /// No compression anywhere.
    pub fn none() -> Self {
        CompressionPlan {
            spec: CompressorSpec::Baseline,
            start_layer: 0,
            num_layers: 0,
        }
    }

    /// Typed variant of [`CompressionPlan::last_layers`]: [`PlanError`]
    /// when `n > total_layers`.
    pub fn try_last_layers(
        spec: CompressorSpec,
        total_layers: usize,
        n: usize,
    ) -> Result<Self, PlanError> {
        if n > total_layers {
            return Err(PlanError::WindowExceedsModel { n, total_layers });
        }
        Ok(CompressionPlan {
            spec,
            start_layer: total_layers - n,
            num_layers: n,
        })
    }

    /// Compress the last `n` of `total_layers` layers (the paper's default
    /// placement with `n = total_layers / 2`).
    ///
    /// # Panics
    ///
    /// Panics if `n > total_layers`.
    pub fn last_layers(spec: CompressorSpec, total_layers: usize, n: usize) -> Self {
        Self::try_last_layers(spec, total_layers, n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Compress `n` layers starting at `start` (the §4.5 location sweep).
    pub fn window(spec: CompressorSpec, start: usize, n: usize) -> Self {
        CompressionPlan {
            spec,
            start_layer: start,
            num_layers: n,
        }
    }

    /// Whether `layer` is compressed under this plan.
    pub fn covers(&self, layer: usize) -> bool {
        self.spec != CompressorSpec::Baseline
            && layer >= self.start_layer
            && layer < self.start_layer + self.num_layers
    }

    /// Whether the plan compresses anything at all.
    pub fn is_active(&self) -> bool {
        self.spec != CompressorSpec::Baseline && self.num_layers > 0
    }

    /// One past the last compressed layer.
    pub fn end_layer(&self) -> usize {
        self.start_layer + self.num_layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_paper_placement() {
        let p = CompressionPlan::last_layers(CompressorSpec::A2, 24, 12);
        assert!(!p.covers(11));
        assert!(p.covers(12));
        assert!(p.covers(23));
        assert!(!p.covers(24));
        assert!(p.is_active());
    }

    #[test]
    fn none_covers_nothing() {
        let p = CompressionPlan::none();
        assert!(!p.is_active());
        assert!((0..24).all(|l| !p.covers(l)));
    }

    #[test]
    fn baseline_spec_never_covers() {
        let p = CompressionPlan::window(CompressorSpec::Baseline, 0, 24);
        assert!(!p.covers(0));
    }

    #[test]
    fn window_placement() {
        let p = CompressionPlan::window(CompressorSpec::Q2, 4, 8);
        assert!(!p.covers(3));
        assert!(p.covers(4));
        assert!(p.covers(11));
        assert!(!p.covers(12));
        assert_eq!(p.end_layer(), 12);
    }
}
