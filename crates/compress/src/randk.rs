//! Random-K sparsification.

use crate::message::scatter_sparse;
use crate::{Compressed, Compressor, Payload};
use actcomp_tensor::{pool, Tensor};
use rand::seq::index::sample;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Keeps `k` uniformly random entries, zeroing the rest (the paper's
/// `random.sample` baseline, §3.2).
///
/// Kept values are rescaled by `n/k` so the reconstruction is an unbiased
/// estimator of the input, as in sparsified-SGD (Stich et al., 2018).
/// Gradients flow only through the kept positions (with the same scaling).
///
/// # Examples
///
/// ```
/// use actcomp_compress::{Compressor, RandomK};
/// use actcomp_tensor::Tensor;
///
/// let mut c = RandomK::new(2, 42);
/// let y = c.round_trip(&Tensor::ones([8]));
/// // 2 of 8 elements survive, each scaled by 4.
/// assert_eq!(y.as_slice().iter().filter(|v| **v != 0.0).count(), 2);
/// assert!((y.sum() - 8.0).abs() < 1e-5);
/// ```
#[derive(Debug, Clone)]
pub struct RandomK {
    k: usize,
    rng: ChaCha8Rng,
    /// LIFO stack of kept-index sets, one per unconsumed `compress`.
    cache_masks: Vec<Vec<u32>>,
}

impl RandomK {
    /// Keeps `k` random elements per tensor, drawn from a stream seeded
    /// with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "RandomK requires k > 0");
        RandomK {
            k,
            rng: ChaCha8Rng::seed_from_u64(seed),
            cache_masks: Vec::new(),
        }
    }

    /// The configured number of kept elements.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Compressor for RandomK {
    fn name(&self) -> &'static str {
        "randk"
    }

    fn compress(&mut self, x: &Tensor) -> Compressed {
        let n = x.len();
        let k = self.k.min(n);
        let mut indices: Vec<u32> = sample(&mut self.rng, n, k)
            .into_iter()
            .map(|i| i as u32)
            .collect();
        indices.sort_unstable();
        // Index *sampling* stays serial — the rng stream order is the
        // seeded-determinism contract — but the value gather+scale is a
        // pure per-position map, so it chunks over the pool.
        let scale = n as f32 / k as f32;
        let data = x.as_slice();
        let mut values = vec![0.0f32; k];
        let plan = pool::plan_unit_chunks(k, pool::configured_threads(), 2048);
        pool::run_on_chunks(&mut values, &plan, |v0, chunk| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = data[indices[v0 + j] as usize] * scale;
            }
        });
        self.cache_masks.push(indices.clone());
        Compressed::new(Payload::Sparse { values, indices }, x.shape().clone())
    }

    fn decompress(&self, msg: &Compressed) -> Tensor {
        match msg.payload() {
            Payload::Sparse { values, indices } => scatter_sparse(values, indices, msg.shape()),
            _ => panic!("RandomK received a non-sparse message"),
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mask = self
            .cache_masks
            .pop()
            .expect("RandomK::backward called without compress");
        let scale = dy.len() as f32 / mask.len() as f32;
        let mut dx = Tensor::zeros_like(dy);
        for &i in &mask {
            dx[i as usize] = dy[i as usize] * scale;
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_tensor::init;

    #[test]
    fn keeps_exactly_k() {
        let x = Tensor::ones([100]);
        let mut c = RandomK::new(10, 0);
        let y = c.round_trip(&x);
        assert_eq!(y.as_slice().iter().filter(|v| **v != 0.0).count(), 10);
    }

    #[test]
    fn reconstruction_is_unbiased() {
        // Average many independent reconstructions; should approach x.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = init::randn(&mut rng, [64], 1.0);
        let mut acc = Tensor::zeros_like(&x);
        let trials = 2000;
        let mut c = RandomK::new(16, 7);
        for _ in 0..trials {
            acc.add_assign(&c.round_trip(&x));
        }
        acc.scale_assign(1.0 / trials as f32);
        assert!(
            acc.max_abs_diff(&x) < 0.25,
            "bias {} too large",
            acc.max_abs_diff(&x)
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let x = Tensor::ones([50]);
        let mut a = RandomK::new(5, 99);
        let mut b = RandomK::new(5, 99);
        assert_eq!(a.round_trip(&x), b.round_trip(&x));
        let mut cdiff = RandomK::new(5, 100);
        // Different seed virtually always picks a different support.
        assert_ne!(a.round_trip(&x), cdiff.round_trip(&x));
    }

    #[test]
    fn backward_masks_and_scales() {
        let x = Tensor::ones([10]);
        let mut c = RandomK::new(5, 3);
        let _ = c.compress(&x);
        let dx = c.backward(&Tensor::ones([10]));
        let nz: Vec<f32> = dx
            .as_slice()
            .iter()
            .copied()
            .filter(|v| *v != 0.0)
            .collect();
        assert_eq!(nz.len(), 5);
        assert!(nz.iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }
}
