//! Uniform quantization (2/4/8 bits) with bit packing.

use crate::{Compressed, Compressor, Payload};
use actcomp_tensor::{pool, Tensor};
use bytes::Bytes;

/// Minimum code bytes per pack/unpack chunk (a byte covers 1–4 elements).
const MIN_CHUNK_BYTES: usize = 1024;

/// Bit-packs `x` into `bits`-wide codes, chunked over `threads` workers.
///
/// Byte-major: each worker owns a contiguous span of output bytes and
/// quantizes the `8 / bits` elements behind each byte, so there is no
/// per-element `i / per_byte` division, no read-modify-write across
/// chunk boundaries, and every byte's value is independent of the chunk
/// plan — bit-identical to the serial element-major loop.
pub(crate) fn pack_uniform(
    x: &[f32],
    lo: f32,
    scale: f32,
    levels: u32,
    bits: usize,
    threads: usize,
) -> Vec<u8> {
    let per_byte = 8 / bits;
    let n = x.len();
    let mut codes = vec![0u8; n.div_ceil(per_byte)];
    let plan = pool::plan_unit_chunks(codes.len(), threads, MIN_CHUNK_BYTES);
    // Monomorphize per width so the per-byte inner loop fully unrolls
    // with constant shifts (the quantized value is the same either way).
    match per_byte {
        4 => pack_spans::<4>(x, lo, scale, levels, &mut codes, &plan),
        2 => pack_spans::<2>(x, lo, scale, levels, &mut codes, &plan),
        _ => pack_spans::<1>(x, lo, scale, levels, &mut codes, &plan),
    }
    codes
}

/// Byte-major packing over a chunk plan with a compile-time `PER`
/// (elements per byte; `bits = 8 / PER`).
fn pack_spans<const PER: usize>(
    x: &[f32],
    lo: f32,
    scale: f32,
    levels: u32,
    codes: &mut [u8],
    plan: &[usize],
) {
    let bits = 8 / PER;
    let n = x.len();
    pool::run_on_chunks(codes, plan, |byte0, chunk| {
        let quantize = |v: f32| (((v - lo) / scale).round() as u32).min(levels) as u8;
        let src = &x[byte0 * PER..n.min((byte0 + chunk.len()) * PER)];
        let full = src.len() / PER;
        for (byte, grp) in chunk.iter_mut().zip(src.chunks_exact(PER)) {
            let mut b = 0u8;
            for (s, &v) in grp.iter().enumerate() {
                b |= quantize(v) << (s * bits);
            }
            *byte = b;
        }
        if full < chunk.len() {
            let mut b = 0u8;
            for (s, &v) in src[full * PER..].iter().enumerate() {
                b |= quantize(v) << (s * bits);
            }
            chunk[full] = b;
        }
    });
}

/// Unpacks `bits`-wide codes into `out`, chunked over `threads` workers.
///
/// Chunk boundaries are byte-aligned (each code byte is read by exactly
/// one worker). Decoding goes through a 256-row table holding every
/// byte's `per_byte` reconstructed values, each precomputed with the
/// serial loop's exact `zero + code * scale` expression — so a byte
/// decodes as a short copy instead of per-element shift/mask/float
/// math, and the output stays bit-identical and chunk-plan independent.
pub(crate) fn unpack_uniform(
    codes: &[u8],
    zero: f32,
    scale: f32,
    bits: usize,
    out: &mut [f32],
    threads: usize,
) {
    let per_byte = 8 / bits;
    let n = out.len();
    let nbytes = n.div_ceil(per_byte);
    let bplan = pool::plan_unit_chunks(nbytes, threads, MIN_CHUNK_BYTES);
    let mut eplan: Vec<usize> = bplan.iter().map(|&b| b * per_byte).collect();
    if let Some(last) = eplan.last_mut() {
        *last -= nbytes * per_byte - n;
    }
    match per_byte {
        4 => unpack_spans::<4>(codes, zero, scale, out, &eplan),
        2 => unpack_spans::<2>(codes, zero, scale, out, &eplan),
        _ => unpack_spans::<1>(codes, zero, scale, out, &eplan),
    }
}

/// Table-driven unpacking over a chunk plan with a compile-time `PER`
/// (elements per byte; `bits = 8 / PER`): row `b` of the table holds
/// byte `b`'s `PER` reconstructed values, so a full byte decodes as one
/// constant-size copy.
fn unpack_spans<const PER: usize>(
    codes: &[u8],
    zero: f32,
    scale: f32,
    out: &mut [f32],
    eplan: &[usize],
) {
    let bits = 8 / PER;
    let mask = ((1u16 << bits) - 1) as u8;
    let mut table = [[0.0f32; PER]; 256];
    for (b, row) in table.iter_mut().enumerate() {
        for (s, slot) in row.iter_mut().enumerate() {
            let code = ((b as u8) >> (s * bits)) & mask;
            *slot = zero + code as f32 * scale;
        }
    }
    pool::run_on_chunks(out, eplan, |e0, chunk| {
        let mut bi = e0 / PER;
        let full = chunk.len() / PER * PER;
        let (head, tail) = chunk.split_at_mut(full);
        for dst in head.chunks_exact_mut(PER) {
            dst.copy_from_slice(&table[codes[bi] as usize]);
            bi += 1;
        }
        if !tail.is_empty() {
            tail.copy_from_slice(&table[codes[bi] as usize][..tail.len()]);
        }
    });
}

/// Per-tensor uniform affine quantization to `bits` bits, following the
/// scheme of Wang et al. 2022 that the paper's `Q1`/`Q2`/`Q3` settings use.
///
/// `code = round((x − min) / scale)` with
/// `scale = (max − min) / (2^bits − 1)`; codes are bit-packed
/// little-endian within each byte. The backward rule is the
/// straight-through estimator.
///
/// # Examples
///
/// ```
/// use actcomp_compress::{Compressor, Quantizer};
/// use actcomp_tensor::Tensor;
///
/// let mut q = Quantizer::new(8);
/// let x = Tensor::from_vec(vec![-1.0, 0.0, 0.5, 1.0], [4]);
/// let y = q.round_trip(&x);
/// assert!(x.max_abs_diff(&y) < 1.0 / 255.0 + 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Quantizer {
    bits: u8,
}

impl Quantizer {
    /// Creates a quantizer with the given code width.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is 2, 4, or 8 (the widths the paper sweeps).
    pub fn new(bits: u8) -> Self {
        assert!(
            matches!(bits, 2 | 4 | 8),
            "unsupported quantization width {bits} (expected 2, 4, or 8)"
        );
        Quantizer { bits }
    }

    /// Code width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    fn levels(&self) -> u32 {
        (1u32 << self.bits) - 1
    }
}

impl Compressor for Quantizer {
    fn name(&self) -> &'static str {
        "quant"
    }

    fn compress(&mut self, x: &Tensor) -> Compressed {
        let lo = x.min();
        let hi = x.max();
        let levels = self.levels();
        let scale = if hi > lo {
            (hi - lo) / levels as f32
        } else {
            1.0 // constant tensor: all codes zero
        };
        let codes = pack_uniform(
            x.as_slice(),
            lo,
            scale,
            levels,
            self.bits as usize,
            pool::configured_threads(),
        );
        Compressed::new(
            Payload::Quantized {
                codes: Bytes::from(codes),
                bits: self.bits,
                scale,
                zero: lo,
            },
            x.shape().clone(),
        )
    }

    fn decompress(&self, msg: &Compressed) -> Tensor {
        match msg.payload() {
            Payload::Quantized {
                codes,
                bits,
                scale,
                zero,
            } => {
                let mut out = vec![0.0f32; msg.dense_len()];
                unpack_uniform(
                    codes,
                    *zero,
                    *scale,
                    *bits as usize,
                    &mut out,
                    pool::configured_threads(),
                );
                Tensor::from_vec(out, msg.shape().clone())
            }
            _ => panic!("Quantizer received a non-quantized message"),
        }
    }

    // Straight-through backward inherited from the trait default.
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn round_trip_error_within_half_step() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = init::randn(&mut rng, [32, 32], 2.0);
        for bits in [2u8, 4, 8] {
            let mut q = Quantizer::new(bits);
            let y = q.round_trip(&x);
            let step = (x.max() - x.min()) / ((1u32 << bits) - 1) as f32;
            assert!(
                x.max_abs_diff(&y) <= step / 2.0 + 1e-5,
                "{bits}-bit error {} > step/2 {}",
                x.max_abs_diff(&y),
                step / 2.0
            );
        }
    }

    #[test]
    fn extremes_are_exact() {
        let x = Tensor::from_vec(vec![-3.0, 0.1, 0.2, 5.0], [4]);
        let mut q = Quantizer::new(4);
        let y = q.round_trip(&x);
        assert!((y[0] + 3.0).abs() < 1e-6);
        assert!((y[3] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn constant_tensor_round_trips() {
        let x = Tensor::full(2.5, [7]);
        let mut q = Quantizer::new(2);
        assert!(q.round_trip(&x).max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn wire_size_matches_bit_width() {
        let x = Tensor::ones([64]);
        // 64 elements at 2 bits = 16 bytes + 8 metadata.
        assert_eq!(Quantizer::new(2).compress(&x).wire_bytes(2), 24);
        assert_eq!(Quantizer::new(4).compress(&x).wire_bytes(2), 40);
        assert_eq!(Quantizer::new(8).compress(&x).wire_bytes(2), 72);
    }

    #[test]
    fn odd_length_packs_correctly() {
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0], [5]);
        let mut q = Quantizer::new(4);
        let y = q.round_trip(&x);
        assert!(x.max_abs_diff(&y) < 0.2);
    }

    #[test]
    fn straight_through_backward() {
        let mut q = Quantizer::new(8);
        let dy = Tensor::from_vec(vec![1.0, -2.0], [2]);
        assert_eq!(q.backward(&dy), dy);
    }

    #[test]
    #[should_panic(expected = "unsupported quantization width")]
    fn rejects_bad_width() {
        Quantizer::new(3);
    }

    proptest::proptest! {
        /// Chunked pack/unpack is bit-identical for pools {1, 2, 8} — on
        /// lengths below and above the chunking threshold, including
        /// lengths that don't fill the last code byte.
        #[test]
        fn pack_unpack_is_pool_size_invariant(
            n in 1usize..20_000,
            bits_ix in 0usize..3,
            seed in 0u64..1000,
        ) {
            let bits = [2usize, 4, 8][bits_ix];
            let levels = (1u32 << bits) - 1;
            let data: Vec<f32> = (0..n)
                .map(|i| {
                    let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(seed);
                    ((h >> 33) % 41) as f32 * 0.17 - 3.5
                })
                .collect();
            let lo = data.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = data.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let scale = if hi > lo { (hi - lo) / levels as f32 } else { 1.0 };
            let serial = pack_uniform(&data, lo, scale, levels, bits, 1);
            let mut out_serial = vec![0.0f32; n];
            unpack_uniform(&serial, lo, scale, bits, &mut out_serial, 1);
            for threads in [2usize, 8] {
                let pooled = pack_uniform(&data, lo, scale, levels, bits, threads);
                proptest::prop_assert_eq!(&pooled, &serial, "pack threads={}", threads);
                let mut out = vec![0.0f32; n];
                unpack_uniform(&pooled, lo, scale, bits, &mut out, threads);
                let same = out.iter().zip(&out_serial).all(|(a, b)| a.to_bits() == b.to_bits());
                proptest::prop_assert!(same, "unpack threads={}", threads);
            }
        }
    }

    #[test]
    fn quantization_error_shrinks_with_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = init::randn(&mut rng, [64], 1.0);
        let e2 = Quantizer::new(2).round_trip(&x).sub(&x).norm();
        let e4 = Quantizer::new(4).round_trip(&x).sub(&x).norm();
        let e8 = Quantizer::new(8).round_trip(&x).sub(&x).norm();
        assert!(e2 > e4 && e4 > e8);
    }
}
