//! Uniform quantization (2/4/8 bits) with bit packing.

use crate::{Compressed, Compressor, Payload};
use actcomp_tensor::Tensor;
use bytes::Bytes;

/// Per-tensor uniform affine quantization to `bits` bits, following the
/// scheme of Wang et al. 2022 that the paper's `Q1`/`Q2`/`Q3` settings use.
///
/// `code = round((x − min) / scale)` with
/// `scale = (max − min) / (2^bits − 1)`; codes are bit-packed
/// little-endian within each byte. The backward rule is the
/// straight-through estimator.
///
/// # Examples
///
/// ```
/// use actcomp_compress::{Compressor, Quantizer};
/// use actcomp_tensor::Tensor;
///
/// let mut q = Quantizer::new(8);
/// let x = Tensor::from_vec(vec![-1.0, 0.0, 0.5, 1.0], [4]);
/// let y = q.round_trip(&x);
/// assert!(x.max_abs_diff(&y) < 1.0 / 255.0 + 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Quantizer {
    bits: u8,
}

impl Quantizer {
    /// Creates a quantizer with the given code width.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is 2, 4, or 8 (the widths the paper sweeps).
    pub fn new(bits: u8) -> Self {
        assert!(
            matches!(bits, 2 | 4 | 8),
            "unsupported quantization width {bits} (expected 2, 4, or 8)"
        );
        Quantizer { bits }
    }

    /// Code width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    fn levels(&self) -> u32 {
        (1u32 << self.bits) - 1
    }
}

impl Compressor for Quantizer {
    fn name(&self) -> &'static str {
        "quant"
    }

    fn compress(&mut self, x: &Tensor) -> Compressed {
        let lo = x.min();
        let hi = x.max();
        let levels = self.levels();
        let scale = if hi > lo {
            (hi - lo) / levels as f32
        } else {
            1.0 // constant tensor: all codes zero
        };
        let per_byte = 8 / self.bits as usize;
        let mut codes = vec![0u8; x.len().div_ceil(per_byte)];
        for (i, &v) in x.as_slice().iter().enumerate() {
            let q = (((v - lo) / scale).round() as u32).min(levels) as u8;
            codes[i / per_byte] |= q << ((i % per_byte) * self.bits as usize);
        }
        Compressed::new(
            Payload::Quantized {
                codes: Bytes::from(codes),
                bits: self.bits,
                scale,
                zero: lo,
            },
            x.shape().clone(),
        )
    }

    fn decompress(&self, msg: &Compressed) -> Tensor {
        match msg.payload() {
            Payload::Quantized {
                codes,
                bits,
                scale,
                zero,
            } => {
                let bits = *bits as usize;
                let per_byte = 8 / bits;
                let mask = ((1u16 << bits) - 1) as u8;
                let n = msg.dense_len();
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let byte = codes[i / per_byte];
                    let code = (byte >> ((i % per_byte) * bits)) & mask;
                    out.push(zero + code as f32 * scale);
                }
                Tensor::from_vec(out, msg.shape().clone())
            }
            _ => panic!("Quantizer received a non-quantized message"),
        }
    }

    // Straight-through backward inherited from the trait default.
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn round_trip_error_within_half_step() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = init::randn(&mut rng, [32, 32], 2.0);
        for bits in [2u8, 4, 8] {
            let mut q = Quantizer::new(bits);
            let y = q.round_trip(&x);
            let step = (x.max() - x.min()) / ((1u32 << bits) - 1) as f32;
            assert!(
                x.max_abs_diff(&y) <= step / 2.0 + 1e-5,
                "{bits}-bit error {} > step/2 {}",
                x.max_abs_diff(&y),
                step / 2.0
            );
        }
    }

    #[test]
    fn extremes_are_exact() {
        let x = Tensor::from_vec(vec![-3.0, 0.1, 0.2, 5.0], [4]);
        let mut q = Quantizer::new(4);
        let y = q.round_trip(&x);
        assert!((y[0] + 3.0).abs() < 1e-6);
        assert!((y[3] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn constant_tensor_round_trips() {
        let x = Tensor::full(2.5, [7]);
        let mut q = Quantizer::new(2);
        assert!(q.round_trip(&x).max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn wire_size_matches_bit_width() {
        let x = Tensor::ones([64]);
        // 64 elements at 2 bits = 16 bytes + 8 metadata.
        assert_eq!(Quantizer::new(2).compress(&x).wire_bytes(2), 24);
        assert_eq!(Quantizer::new(4).compress(&x).wire_bytes(2), 40);
        assert_eq!(Quantizer::new(8).compress(&x).wire_bytes(2), 72);
    }

    #[test]
    fn odd_length_packs_correctly() {
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0], [5]);
        let mut q = Quantizer::new(4);
        let y = q.round_trip(&x);
        assert!(x.max_abs_diff(&y) < 0.2);
    }

    #[test]
    fn straight_through_backward() {
        let mut q = Quantizer::new(8);
        let dy = Tensor::from_vec(vec![1.0, -2.0], [2]);
        assert_eq!(q.backward(&dy), dy);
    }

    #[test]
    #[should_panic(expected = "unsupported quantization width")]
    fn rejects_bad_width() {
        Quantizer::new(3);
    }

    #[test]
    fn quantization_error_shrinks_with_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = init::randn(&mut rng, [64], 1.0);
        let e2 = Quantizer::new(2).round_trip(&x).sub(&x).norm();
        let e4 = Quantizer::new(4).round_trip(&x).sub(&x).norm();
        let e8 = Quantizer::new(8).round_trip(&x).sub(&x).norm();
        assert!(e2 > e4 && e4 > e8);
    }
}
