//! Encode/decode latency models for each compression family.
//!
//! The paper measures the GPU-side cost of each codec (its Tables 4 and 7
//! break an iteration into tensor-encode / tensor-decode / communication
//! time). Those costs — not the arithmetic — decide the throughput verdict:
//! `random.sample` is catastrophically slow, `torch.topk` scans the whole
//! tensor, quantization makes two passes, and the auto-encoder is one slim
//! matmul. This module models each per-operation latency with a small
//! closed form whose coefficients are **fit to the paper's Table 4**
//! (fine-tuning, V100, `n = 32·512·1024` elements per op, 24 ops/iter).
//!
//! `actcomp-distsim` composes these per-op costs with collective and
//! pipeline models to regenerate the throughput tables.

use crate::spec::{CompressorSpec, Family};

/// Encode/decode latency of one compression operation, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CodecCost {
    /// Time to encode (compress) once.
    pub encode_s: f64,
    /// Time to decode (decompress) once.
    pub decode_s: f64,
}

impl CodecCost {
    /// Encode + decode.
    pub fn total_s(&self) -> f64 {
        self.encode_s + self.decode_s
    }

    /// The zero cost of the uncompressed baseline.
    pub fn zero() -> Self {
        CodecCost {
            encode_s: 0.0,
            decode_s: 0.0,
        }
    }
}

/// Latency model for compression kernels on a V100-class GPU.
///
/// All coefficients are per-operation; `n` is the dense element count of
/// the activation being compressed, `k` the kept element count for
/// sparsifiers, `c` the auto-encoder code dimension.
///
/// Functional forms and the Table 4 measurements they were fit to
/// (per-op = table value / 24 ops):
///
/// | family | form | fit anchors (per-op) |
/// |---|---|---|
/// | AE enc | `o + a·n·c` | A1 0.090 ms, A2 0.130 ms |
/// | AE dec | `o + a·n·c` | A1 0.130 ms, A2 0.190 ms |
/// | Top-K enc | `o + a·n + b·k` | T1 2.92 ms, T4 3.12 ms |
/// | Top-K dec | `o + b·k` | T1 0.57 ms, T4 1.89 ms |
/// | Random-K enc | `a·k + b·k²` | R1 85.0 ms, R4 1835 ms |
/// | Random-K dec | `o + b·k` | R1 0.66 ms, R4 1.98 ms |
/// | Quant enc | `o + a·n` | Q1 0.86 ms |
/// | Quant dec | `o + a·n` | Q1 1.34 ms |
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostModel {
    /// AE encode: fixed launch overhead (s).
    pub ae_enc_overhead: f64,
    /// AE encode: seconds per (element × code-dim unit).
    pub ae_enc_per_nc: f64,
    /// AE decode overhead (s).
    pub ae_dec_overhead: f64,
    /// AE decode per (element × code-dim unit).
    pub ae_dec_per_nc: f64,
    /// Top-K encode overhead (s).
    pub topk_enc_overhead: f64,
    /// Top-K encode per input element (the full-tensor scan).
    pub topk_enc_per_n: f64,
    /// Top-K encode per kept element.
    pub topk_enc_per_k: f64,
    /// Top-K decode overhead (s).
    pub topk_dec_overhead: f64,
    /// Top-K decode per kept element (scatter).
    pub topk_dec_per_k: f64,
    /// Random-K encode linear term per kept element.
    pub randk_enc_per_k: f64,
    /// Random-K encode quadratic term per kept element squared
    /// (`random.sample`'s rejection behaviour degrades superlinearly).
    pub randk_enc_per_k2: f64,
    /// Random-K decode overhead (s).
    pub randk_dec_overhead: f64,
    /// Random-K decode per kept element.
    pub randk_dec_per_k: f64,
    /// Quantization encode overhead (s).
    pub quant_enc_overhead: f64,
    /// Quantization encode per element (min/max pass + pack pass).
    pub quant_enc_per_n: f64,
    /// Quantization decode overhead (s).
    pub quant_dec_overhead: f64,
    /// Quantization decode per element (unpack).
    pub quant_dec_per_n: f64,
}

impl CostModel {
    /// Coefficients for the AWS p3.8xlarge machines (fine-tuning regime).
    ///
    /// Identical to [`CostModel::v100`] except that `torch.topk` runs
    /// ~2× faster than on the paper's local machine (Table 2's T1 deltas
    /// versus Table 4's measured encode times imply different kernel
    /// selection across the two software stacks).
    pub fn v100_aws() -> Self {
        CostModel {
            topk_enc_per_n: 0.8e-10,
            ..Self::v100()
        }
    }

    /// Coefficients for the pre-training regime (b=128, s=128, AWS
    /// cluster).
    ///
    /// The paper's Table 7 measures `torch.topk` at ~0.77 ms/op on the
    /// pre-training activation shape versus ~2.9 ms/op on the fine-tuning
    /// shape with the *same element count* (Table 4) — the kernel's
    /// selection strategy depends on the tensor's row geometry. Every
    /// other codec cost transfers across regimes within measurement noise.
    pub fn v100_pretrain() -> Self {
        CostModel {
            topk_enc_per_n: 4.0e-11,
            ..Self::v100()
        }
    }

    /// Total cost of decoding `peers` gathered messages (the all-gather
    /// path non-summable compressors take, §3.2).
    ///
    /// Sparsifier decoding is one fused scatter over the union of the
    /// gathered supports (launch overhead paid once, per-element cost paid
    /// `peers` times); quantized messages must each be unpacked in full.
    pub fn decode_gathered(&self, spec: CompressorSpec, n: usize, h: usize, peers: usize) -> f64 {
        let peers = peers.max(1) as f64;
        match spec.family() {
            Family::None | Family::AutoEncoder => self.codec_cost(spec, n, h).decode_s,
            Family::TopK => {
                let k = spec.sparsifier_k(n, h) as f64;
                self.topk_dec_overhead + self.topk_dec_per_k * k * peers
            }
            Family::RandomK => {
                let k = spec.sparsifier_k(n, h) as f64;
                self.randk_dec_overhead + self.randk_dec_per_k * k * peers
            }
            Family::Quantization => {
                (self.quant_dec_overhead + self.quant_dec_per_n * n as f64) * peers
            }
        }
    }

    /// Coefficients calibrated to the paper's Table 4 (V100, fp16).
    pub fn v100() -> Self {
        CostModel {
            ae_enc_overhead: 5.0e-5,
            ae_enc_per_nc: 4.77e-14,
            ae_dec_overhead: 7.0e-5,
            ae_dec_per_nc: 7.15e-14,
            topk_enc_overhead: 1.0e-4,
            topk_enc_per_n: 1.66e-10,
            topk_enc_per_k: 1.47e-10,
            topk_dec_overhead: 3.0e-4,
            topk_dec_per_k: 9.7e-10,
            randk_enc_per_k: 1.5e-7,
            randk_enc_per_k2: 5.9e-13,
            randk_dec_overhead: 3.9e-4,
            randk_dec_per_k: 9.7e-10,
            quant_enc_overhead: 6.0e-5,
            quant_enc_per_n: 4.7e-11,
            quant_dec_overhead: 8.0e-5,
            quant_dec_per_n: 7.5e-11,
        }
    }

    /// Per-operation encode/decode cost of `spec` on an activation of `n`
    /// elements with hidden width `h`.
    pub fn codec_cost(&self, spec: CompressorSpec, n: usize, h: usize) -> CodecCost {
        let n_f = n as f64;
        match spec.family() {
            Family::None => CodecCost::zero(),
            Family::AutoEncoder => {
                // Cost is the encoder matmul: n·c multiply-adds.
                let c = spec.code_dim(h) as f64;
                CodecCost {
                    encode_s: self.ae_enc_overhead + self.ae_enc_per_nc * n_f * c,
                    decode_s: self.ae_dec_overhead + self.ae_dec_per_nc * n_f * c,
                }
            }
            Family::TopK => {
                let k = spec.sparsifier_k(n, h) as f64;
                CodecCost {
                    encode_s: self.topk_enc_overhead
                        + self.topk_enc_per_n * n_f
                        + self.topk_enc_per_k * k,
                    decode_s: self.topk_dec_overhead + self.topk_dec_per_k * k,
                }
            }
            Family::RandomK => {
                let k = spec.sparsifier_k(n, h) as f64;
                CodecCost {
                    encode_s: self.randk_enc_per_k * k + self.randk_enc_per_k2 * k * k,
                    decode_s: self.randk_dec_overhead + self.randk_dec_per_k * k,
                }
            }
            Family::Quantization => CodecCost {
                encode_s: self.quant_enc_overhead + self.quant_enc_per_n * n_f,
                decode_s: self.quant_dec_overhead + self.quant_dec_per_n * n_f,
            },
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use CompressorSpec::*;

    /// The fine-tuning activation geometry of Table 4.
    const N: usize = 32 * 512 * 1024;
    const H: usize = 1024;
    /// 12 compressed layers × 2 all-reduces per layer.
    const OPS: f64 = 24.0;

    fn table4_ms(spec: CompressorSpec) -> (f64, f64) {
        let c = CostModel::v100().codec_cost(spec, N, H);
        (c.encode_s * OPS * 1e3, c.decode_s * OPS * 1e3)
    }

    #[test]
    fn reproduces_table4_ae() {
        let (enc, dec) = table4_ms(A1);
        assert!((enc - 2.16).abs() / 2.16 < 0.15, "A1 enc {enc}");
        assert!((dec - 3.12).abs() / 3.12 < 0.15, "A1 dec {dec}");
        let (enc, dec) = table4_ms(A2);
        assert!((enc - 3.12).abs() / 3.12 < 0.15, "A2 enc {enc}");
        assert!((dec - 4.56).abs() / 4.56 < 0.15, "A2 dec {dec}");
    }

    #[test]
    fn reproduces_table4_topk() {
        let (enc, dec) = table4_ms(T1);
        assert!((enc - 70.08).abs() / 70.08 < 0.15, "T1 enc {enc}");
        assert!((dec - 13.68).abs() / 13.68 < 0.30, "T1 dec {dec}");
        let (enc, dec) = table4_ms(T4);
        assert!((enc - 74.88).abs() / 74.88 < 0.15, "T4 enc {enc}");
        assert!((dec - 45.36).abs() / 45.36 < 0.15, "T4 dec {dec}");
    }

    #[test]
    fn reproduces_table4_randk_shape() {
        // Random-K is the catastrophic case; require order-of-magnitude
        // agreement and strict superlinearity.
        let (r1, _) = table4_ms(R1);
        let (r2, _) = table4_ms(R2);
        let (r4, _) = table4_ms(R4);
        assert!((r1 / 2040.0 - 1.0).abs() < 0.5, "R1 enc {r1}");
        assert!((r4 / 44038.0 - 1.0).abs() < 0.5, "R4 enc {r4}");
        assert!(r2 / r1 > 1.5, "superlinear growth violated");
        assert!(r4 / r2 > 2.0, "superlinear growth violated");
    }

    #[test]
    fn reproduces_table4_quant() {
        let (enc, dec) = table4_ms(Q1);
        assert!((enc - 20.64).abs() / 20.64 < 0.15, "Q1 enc {enc}");
        assert!((dec - 32.16).abs() / 32.16 < 0.15, "Q1 dec {dec}");
    }

    #[test]
    fn ordering_matches_paper() {
        // Per-op cost ordering: AE < quant < topk << randk.
        let m = CostModel::v100();
        let ae = m.codec_cost(A1, N, H).total_s();
        let q = m.codec_cost(Q2, N, H).total_s();
        let t = m.codec_cost(T1, N, H).total_s();
        let r = m.codec_cost(R1, N, H).total_s();
        assert!(ae < q && q < t && t < r, "ae {ae} q {q} t {t} r {r}");
    }

    #[test]
    fn baseline_costs_nothing() {
        let c = CostModel::v100().codec_cost(Baseline, N, H);
        assert_eq!(c.total_s(), 0.0);
    }

    #[test]
    fn costs_scale_with_n() {
        let m = CostModel::v100();
        for spec in [A1, T1, R1, Q1] {
            let small = m.codec_cost(spec, N / 4, H).total_s();
            let large = m.codec_cost(spec, N, H).total_s();
            assert!(large > small, "{spec}: {large} <= {small}");
        }
    }
}
