//! Learning-based compression: a linear auto-encoder (§3.2).

use crate::{Compressed, Compressor, Payload};
use actcomp_nn::Parameter;
use actcomp_tensor::{init, Tensor};
use rand::Rng;

/// The paper's auto-encoder compressor: a learnable matrix
/// `w ∈ R^{h×c}` encodes activations `X ∈ R^{(b·s)×h}` as `Xw ∈ R^{(b·s)×c}`,
/// and a decoder matrix `d ∈ R^{c×h}` reconstructs them.
///
/// Both matrices are trainable parameters (visited via
/// [`Compressor::visit_params`]) and receive exact gradients — this is the
/// "learning-based" method that only model parallelism enables, because it
/// needs gradient flow through the compressor.
///
/// Since the code `Xw` is linear in `X`, codes from different tensor-parallel
/// workers can be **summed on the wire**, so the auto-encoder is the one
/// compressor that composes with all-reduce ([`Compressor::summable`] is
/// true).
///
/// # Examples
///
/// ```
/// use actcomp_compress::{AutoEncoder, Compressor};
/// use actcomp_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mut ae = AutoEncoder::new(&mut rng, 16, 4);
/// let msg = ae.compress(&Tensor::ones([8, 16]));
/// assert_eq!(msg.wire_bytes(2), 8 * 4 * 2); // code is [8, 4]
/// ```
#[derive(Debug, Clone)]
pub struct AutoEncoder {
    /// Encoder matrix `[h, c]`.
    pub encoder: Parameter,
    /// Decoder matrix `[c, h]`.
    pub decoder: Parameter,
    /// LIFO stack of (input, code) pairs, one per unconsumed `compress`.
    caches: Vec<AeCache>,
}

#[derive(Debug, Clone)]
struct AeCache {
    x: Tensor,
    code: Tensor,
}

impl AutoEncoder {
    /// Creates an auto-encoder compressing `hidden` features to `code_dim`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < code_dim < hidden`.
    pub fn new(rng: &mut impl Rng, hidden: usize, code_dim: usize) -> Self {
        assert!(
            code_dim > 0 && code_dim < hidden,
            "code dim {code_dim} must be in (0, {hidden})"
        );
        AutoEncoder {
            encoder: Parameter::new(init::xavier_uniform(rng, hidden, code_dim)),
            decoder: Parameter::new(init::xavier_uniform(rng, code_dim, hidden)),
            caches: Vec::new(),
        }
    }

    /// Width of the compressed code.
    pub fn code_dim(&self) -> usize {
        self.encoder.value.dims()[1]
    }

    /// Feature width of the activations this auto-encoder compresses.
    pub fn hidden(&self) -> usize {
        self.encoder.value.dims()[0]
    }
}

impl Compressor for AutoEncoder {
    fn name(&self) -> &'static str {
        "ae"
    }

    fn compress(&mut self, x: &Tensor) -> Compressed {
        assert_eq!(
            x.rank(),
            2,
            "AutoEncoder input must be rank 2, got {}",
            x.shape()
        );
        assert_eq!(
            x.dims()[1],
            self.hidden(),
            "AutoEncoder width {} != input width {}",
            self.hidden(),
            x.dims()[1]
        );
        let code = x.matmul(&self.encoder.value);
        self.caches.push(AeCache {
            x: x.clone(),
            code: code.clone(),
        });
        Compressed::new(Payload::Dense(code), x.shape().clone())
    }

    fn decompress(&self, msg: &Compressed) -> Tensor {
        match msg.payload() {
            Payload::Dense(code) => code.matmul(&self.decoder.value),
            _ => panic!("AutoEncoder received a non-dense message"),
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let AeCache { x, code } = self
            .caches
            .pop()
            .expect("AutoEncoder::backward called without compress");
        // y = (x E) D
        // dD = codeᵀ dy ; dcode = dy Dᵀ ; dE = xᵀ dcode ; dx = dcode Eᵀ
        // Parameter grads accumulate in place — no product temporary.
        self.decoder.grad.add_matmul_tn(&code, dy);
        let dcode = dy.matmul_nt(&self.decoder.value);
        self.encoder.grad.add_matmul_tn(&x, &dcode);
        dcode.matmul_nt(&self.encoder.value)
    }

    fn summable(&self) -> bool {
        true
    }

    fn chunkable(&self) -> bool {
        // Row `r` of the code is `x[r] @ E` and row `r` of the
        // reconstruction is `code[r] @ D` — no cross-row coupling, so
        // encoding/decoding row chunks independently is bitwise identical
        // to the whole-tensor matmul (the GEMM k-loop order per output
        // element is fixed by the kernel contract).
        true
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.encoder);
        f(&mut self.decoder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_nn::testutil::assert_close;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn code_shape_and_wire_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut ae = AutoEncoder::new(&mut rng, 32, 8);
        let x = init::randn(&mut rng, [4, 32], 1.0);
        let msg = ae.compress(&x);
        assert_eq!(msg.wire_bytes(2), 4 * 8 * 2);
        assert!((msg.ratio(2) - 4.0).abs() < 1e-9);
        let y = ae.decompress(&msg);
        assert_eq!(y.dims(), &[4, 32]);
    }

    #[test]
    fn codes_are_summable() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ae = AutoEncoder::new(&mut rng, 16, 4);
        assert!(ae.summable());
        let a = init::randn(&mut rng, [2, 16], 1.0);
        let b = init::randn(&mut rng, [2, 16], 1.0);
        // Encoding is linear: enc(a) + enc(b) == enc(a + b).
        let m1 = ae.compress(&a);
        let m2 = ae.compress(&b);
        let summed = m1.sum(&m2);
        let direct = ae.compress(&a.add(&b));
        match (summed.payload(), direct.payload()) {
            (Payload::Dense(s), Payload::Dense(d)) => {
                assert!(s.max_abs_diff(d) < 1e-4);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ae = AutoEncoder::new(&mut rng, 6, 3);
        let x = init::randn(&mut rng, [4, 6], 1.0);
        let dy = init::randn(&mut rng, [4, 6], 1.0);

        ae.visit_params(&mut |p| p.zero_grad());
        let _ = ae.round_trip(&x);
        // round_trip consumed no cache; rerun compress to set it.
        let msg = ae.compress(&x);
        let _ = ae.decompress(&msg);
        let dx = ae.backward(&dy);

        let eps = 1e-2;
        // Input gradient.
        for j in 0..x.len() {
            let mut xp = x.clone();
            xp[j] += eps;
            let mut xm = x.clone();
            xm[j] -= eps;
            let lp = ae.round_trip(&xp).mul(&dy).sum();
            let lm = ae.round_trip(&xm).mul(&dy).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert_close(dx[j], fd, 2e-2, &format!("ae dx[{j}]"));
        }

        // Encoder gradient (sampled).
        let genc = ae.encoder.grad.clone();
        for j in (0..genc.len()).step_by(5) {
            ae.encoder.value[j] += eps;
            let lp = ae.round_trip(&x).mul(&dy).sum();
            ae.encoder.value[j] -= 2.0 * eps;
            let lm = ae.round_trip(&x).mul(&dy).sum();
            ae.encoder.value[j] += eps;
            let fd = (lp - lm) / (2.0 * eps);
            assert_close(genc[j], fd, 2e-2, &format!("ae dE[{j}]"));
        }

        // Decoder gradient (sampled).
        let gdec = ae.decoder.grad.clone();
        for j in (0..gdec.len()).step_by(5) {
            ae.decoder.value[j] += eps;
            let lp = ae.round_trip(&x).mul(&dy).sum();
            ae.decoder.value[j] -= 2.0 * eps;
            let lm = ae.round_trip(&x).mul(&dy).sum();
            ae.decoder.value[j] += eps;
            let fd = (lp - lm) / (2.0 * eps);
            assert_close(gdec[j], fd, 2e-2, &format!("ae dD[{j}]"));
        }
    }

    #[test]
    fn cache_stack_supports_microbatched_backward() {
        // Two compresses then two backwards (reverse order) must produce
        // the same dx per micro-batch as paired compress/backward calls.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = init::randn(&mut rng, [2, 8], 1.0);
        let b = init::randn(&mut rng, [2, 8], 1.0);
        let dy = init::randn(&mut rng, [2, 8], 1.0);

        let mut rng1 = ChaCha8Rng::seed_from_u64(6);
        let mut stacked = AutoEncoder::new(&mut rng1, 8, 3);
        let _ = stacked.compress(&a);
        let _ = stacked.compress(&b);
        let dxb = stacked.backward(&dy);
        let dxa = stacked.backward(&dy);

        let mut rng2 = ChaCha8Rng::seed_from_u64(6);
        let mut paired = AutoEncoder::new(&mut rng2, 8, 3);
        let _ = paired.compress(&b);
        let want_b = paired.backward(&dy);
        let _ = paired.compress(&a);
        let want_a = paired.backward(&dy);

        assert_eq!(dxb, want_b);
        assert_eq!(dxa, want_a);
    }

    #[test]
    fn trains_toward_reconstruction() {
        // A linear AE trained with SGD should reduce reconstruction error on
        // a low-rank input distribution.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut ae = AutoEncoder::new(&mut rng, 16, 4);
        let basis = init::randn(&mut rng, [4, 16], 1.0);
        let sample = |rng: &mut ChaCha8Rng| {
            let coeff = init::randn(rng, [8, 4], 1.0);
            coeff.matmul(&basis)
        };
        let x0 = sample(&mut rng);
        let e0 = ae.round_trip(&x0).sub(&x0).norm();
        for _ in 0..800 {
            let x = sample(&mut rng);
            ae.visit_params(&mut |p| p.zero_grad());
            let y = {
                let msg = ae.compress(&x);
                ae.decompress(&msg)
            };
            let dy = y.sub(&x).scale(2.0 / x.len() as f32);
            let _ = ae.backward(&dy);
            ae.visit_params(&mut |p| {
                let g = p.grad.clone();
                p.value.axpy(-0.02, &g);
            });
        }
        let e1 = ae.round_trip(&x0).sub(&x0).norm();
        assert!(e1 < e0 * 0.5, "reconstruction error {e0} -> {e1}");
    }

    #[test]
    #[should_panic(expected = "code dim")]
    fn rejects_expanding_code() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        AutoEncoder::new(&mut rng, 8, 8);
    }
}
