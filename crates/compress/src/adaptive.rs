//! Adaptive (per-row) sparsification — a follow-up the paper's analysis
//! invites.
//!
//! Per-tensor Top-K lets rows with large dynamic range monopolize the
//! budget: a few high-magnitude tokens can consume every slot while other
//! tokens lose *all* their activation mass (one suspected mechanism behind
//! the paper's CoLA/RTE collapses). [`RowTopK`] gives every row (token)
//! its own `k`, guaranteeing per-token signal survives.

use crate::message::scatter_sparse;
use crate::{Compressed, Compressor, Payload};
use actcomp_tensor::Tensor;

/// Keeps the `k_per_row` largest-magnitude entries of *each row* of a
/// `[tokens, features]` activation.
///
/// Wire format matches [`crate::TopK`] (values + flat indices), so the
/// cost model and byte accounting carry over; gradients flow through kept
/// positions only.
///
/// # Examples
///
/// ```
/// use actcomp_compress::{Compressor, RowTopK};
/// use actcomp_tensor::Tensor;
///
/// let mut c = RowTopK::new(1);
/// let x = Tensor::from_vec(vec![9.0, 1.0, 1.0, 8.0], [2, 2]);
/// let y = c.round_trip(&x);
/// // Each row keeps its own maximum — no row is starved.
/// assert_eq!(y.as_slice(), &[9.0, 0.0, 0.0, 8.0]);
/// ```
#[derive(Debug, Clone)]
pub struct RowTopK {
    k_per_row: usize,
    /// LIFO stack of kept-index sets, one per unconsumed `compress`.
    cache_masks: Vec<Vec<u32>>,
}

impl RowTopK {
    /// Keeps `k_per_row` elements per row.
    ///
    /// # Panics
    ///
    /// Panics if `k_per_row == 0`.
    pub fn new(k_per_row: usize) -> Self {
        assert!(k_per_row > 0, "RowTopK requires k > 0");
        RowTopK {
            k_per_row,
            cache_masks: Vec::new(),
        }
    }

    /// Elements kept per row.
    pub fn k_per_row(&self) -> usize {
        self.k_per_row
    }
}

impl Compressor for RowTopK {
    fn name(&self) -> &'static str {
        "rowtopk"
    }

    fn compress(&mut self, x: &Tensor) -> Compressed {
        assert_eq!(
            x.rank(),
            2,
            "RowTopK input must be rank 2, got {}",
            x.shape()
        );
        let (m, n) = (x.dims()[0], x.dims()[1]);
        let k = self.k_per_row.min(n);
        let data = x.as_slice();
        let mut indices: Vec<u32> = Vec::with_capacity(m * k);
        for i in 0..m {
            let mut order: Vec<u32> = (0..n as u32).collect();
            if k < n {
                order.select_nth_unstable_by(k - 1, |&a, &b| {
                    data[i * n + b as usize]
                        .abs()
                        .partial_cmp(&data[i * n + a as usize].abs())
                        .expect("activations are finite")
                });
                order.truncate(k);
            }
            order.sort_unstable();
            indices.extend(order.iter().map(|&j| (i * n) as u32 + j));
        }
        let values: Vec<f32> = indices.iter().map(|&i| data[i as usize]).collect();
        self.cache_masks.push(indices.clone());
        Compressed::new(Payload::Sparse { values, indices }, x.shape().clone())
    }

    fn decompress(&self, msg: &Compressed) -> Tensor {
        match msg.payload() {
            Payload::Sparse { values, indices } => scatter_sparse(values, indices, msg.shape()),
            _ => panic!("RowTopK received a non-sparse message"),
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mask = self
            .cache_masks
            .pop()
            .expect("RowTopK::backward called without compress");
        let mut dx = Tensor::zeros_like(dy);
        for &i in &mask {
            dx[i as usize] = dy[i as usize];
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopK;
    use actcomp_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn every_row_keeps_exactly_k() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = init::randn(&mut rng, [8, 16], 1.0);
        let mut c = RowTopK::new(3);
        let y = c.round_trip(&x);
        for i in 0..8 {
            let kept = y
                .slice_rows(i, i + 1)
                .as_slice()
                .iter()
                .filter(|v| **v != 0.0)
                .count();
            assert_eq!(kept, 3, "row {i}");
        }
    }

    #[test]
    fn no_row_starvation_under_skewed_magnitudes() {
        // One row 100x larger than the rest: per-tensor Top-K starves the
        // small rows; per-row Top-K does not.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut x = init::randn(&mut rng, [4, 16], 0.01);
        for j in 0..16 {
            x.set(&[0, j], 5.0 + j as f32);
        }
        let budget = 4 * 4; // same total elements
        let y_tensor = TopK::new(budget).round_trip(&x);
        let y_row = RowTopK::new(4).round_trip(&x);
        let starved_tensor = (1..4)
            .filter(|&i| y_tensor.slice_rows(i, i + 1).norm() == 0.0)
            .count();
        let starved_row = (1..4)
            .filter(|&i| y_row.slice_rows(i, i + 1).norm() == 0.0)
            .count();
        assert!(starved_tensor >= 3, "per-tensor should starve small rows");
        assert_eq!(starved_row, 0, "per-row must preserve every token");
    }

    #[test]
    fn same_wire_cost_as_tensor_topk_at_equal_budget() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let x = init::randn(&mut rng, [8, 32], 1.0);
        let row = RowTopK::new(4).compress(&x).wire_bytes(2);
        let tensor = TopK::new(32).compress(&x).wire_bytes(2);
        assert_eq!(row, tensor);
    }

    #[test]
    fn backward_masks_per_row() {
        let x = Tensor::from_vec(vec![5.0, 0.1, 0.2, 7.0], [2, 2]);
        let mut c = RowTopK::new(1);
        let _ = c.compress(&x);
        let dx = c.backward(&Tensor::ones([2, 2]));
        assert_eq!(dx.as_slice(), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn k_clamped_to_width() {
        let x = Tensor::ones([2, 3]);
        let mut c = RowTopK::new(10);
        assert_eq!(c.round_trip(&x), x);
    }
}
