//! Wire representation of compressed activations.

use actcomp_tensor::{Shape, Tensor};
use bytes::Bytes;

/// The encoded payload of a [`Compressed`] message.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A dense float tensor (identity, or the auto-encoder's code).
    Dense(Tensor),
    /// Sparse values plus their flat indices (Top-K / Random-K).
    Sparse {
        /// Kept values.
        values: Vec<f32>,
        /// Flat row-major indices of the kept values.
        indices: Vec<u32>,
    },
    /// Bit-packed uniform-quantized codes.
    Quantized {
        /// Packed codes, `bits` per element, little-endian within bytes.
        codes: Bytes,
        /// Bits per element (2, 4, or 8).
        bits: u8,
        /// Dequantization scale.
        scale: f32,
        /// Dequantization zero point (minimum value).
        zero: f32,
    },
}

/// A compressed activation message: payload plus the original dense shape.
#[derive(Debug, Clone)]
pub struct Compressed {
    payload: Payload,
    shape: Shape,
}

impl Compressed {
    /// Wraps a payload with the shape of the tensor it encodes.
    pub fn new(payload: Payload, shape: Shape) -> Self {
        Compressed { payload, shape }
    }

    /// The encoded payload.
    pub fn payload(&self) -> &Payload {
        &self.payload
    }

    /// Shape of the original dense activation.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements in the original dense activation.
    pub fn dense_len(&self) -> usize {
        self.shape.len()
    }

    /// Bytes this message occupies on the wire.
    ///
    /// `dense_elem_bytes` is the width of one dense float on the wire
    /// (2 for the fp16 training the paper uses, 4 for fp32). Sparse
    /// indices are 4 bytes; quantized metadata is 8 bytes.
    pub fn wire_bytes(&self, dense_elem_bytes: usize) -> usize {
        match &self.payload {
            Payload::Dense(t) => t.len() * dense_elem_bytes,
            Payload::Sparse { values, indices } => {
                values.len() * dense_elem_bytes + indices.len() * 4
            }
            Payload::Quantized { codes, .. } => codes.len() + 8,
        }
    }

    /// Compression ratio relative to sending the dense tensor at the same
    /// float width.
    pub fn ratio(&self, dense_elem_bytes: usize) -> f64 {
        let dense = (self.dense_len() * dense_elem_bytes) as f64;
        dense / self.wire_bytes(dense_elem_bytes).max(1) as f64
    }

    /// Elementwise sum of two *summable* messages (dense payloads only).
    ///
    /// This is the on-the-wire reduction an all-reduce performs on
    /// auto-encoder codes.
    ///
    /// # Panics
    ///
    /// Panics if either payload is not dense or shapes differ.
    pub fn sum(&self, other: &Compressed) -> Compressed {
        match (&self.payload, &other.payload) {
            (Payload::Dense(a), Payload::Dense(b)) => Compressed {
                payload: Payload::Dense(a.add(b)),
                shape: self.shape.clone(),
            },
            _ => panic!("sum requires dense (summable) payloads"),
        }
    }
}

/// Reconstructs a dense tensor from a sparse payload.
///
/// When the index list is sorted (Top-K and Random-K both sort before
/// shipping) the scatter chunks over the kernel pool: each worker owns a
/// contiguous span of the *output* and binary-searches the index list for
/// its span's entries, so writes stay disjoint and the result is
/// chunk-plan independent. Unsorted indices fall back to the serial loop
/// (last write wins, as before).
pub(crate) fn scatter_sparse(values: &[f32], indices: &[u32], shape: &Shape) -> Tensor {
    let mut out = Tensor::zeros(shape.clone());
    let buf = out.as_mut_slice();
    let threads = actcomp_tensor::pool::configured_threads();
    if threads <= 1 || buf.len() < 4096 || !indices.windows(2).all(|w| w[0] <= w[1]) {
        for (&v, &i) in values.iter().zip(indices) {
            buf[i as usize] = v;
        }
        return out;
    }
    let plan = actcomp_tensor::pool::plan_unit_chunks(buf.len(), threads, 4096);
    actcomp_tensor::pool::run_on_chunks(buf, &plan, |start, chunk| {
        let end = start + chunk.len();
        let lo = indices.partition_point(|&i| (i as usize) < start);
        let hi = indices.partition_point(|&i| (i as usize) < end);
        for (&v, &i) in values[lo..hi].iter().zip(&indices[lo..hi]) {
            chunk[i as usize - start] = v;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_dense() {
        let t = Tensor::ones([4, 8]);
        let m = Compressed::new(Payload::Dense(t), Shape::new(vec![4, 8]));
        assert_eq!(m.wire_bytes(2), 64);
        assert_eq!(m.wire_bytes(4), 128);
        assert!((m.ratio(2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wire_bytes_sparse() {
        let m = Compressed::new(
            Payload::Sparse {
                values: vec![1.0, 2.0],
                indices: vec![3, 9],
            },
            Shape::new(vec![4, 8]),
        );
        assert_eq!(m.wire_bytes(2), 2 * 2 + 2 * 4);
        assert!(m.ratio(2) > 5.0);
    }

    #[test]
    fn wire_bytes_quantized() {
        let m = Compressed::new(
            Payload::Quantized {
                codes: Bytes::from(vec![0u8; 8]), // 32 elements at 2 bits
                bits: 2,
                scale: 0.1,
                zero: -1.0,
            },
            Shape::new(vec![32]),
        );
        assert_eq!(m.wire_bytes(2), 16);
        assert_eq!(m.ratio(2), 4.0);
    }

    #[test]
    fn sum_of_dense_messages() {
        let a = Compressed::new(Payload::Dense(Tensor::ones([2])), Shape::new(vec![4]));
        let b = Compressed::new(Payload::Dense(Tensor::ones([2])), Shape::new(vec![4]));
        match a.sum(&b).payload() {
            Payload::Dense(t) => assert_eq!(t.as_slice(), &[2.0, 2.0]),
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "summable")]
    fn sum_rejects_sparse() {
        let a = Compressed::new(
            Payload::Sparse {
                values: vec![],
                indices: vec![],
            },
            Shape::new(vec![4]),
        );
        let b = a.clone();
        a.sum(&b);
    }

    #[test]
    fn scatter_reconstructs() {
        let t = scatter_sparse(&[5.0, -2.0], &[1, 3], &Shape::new(vec![5]));
        assert_eq!(t.as_slice(), &[0.0, 5.0, 0.0, -2.0, 0.0]);
    }
}
