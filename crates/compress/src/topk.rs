//! Top-K sparsification.

use crate::message::scatter_sparse;
use crate::{Compressed, Compressor, Payload};
use actcomp_tensor::Tensor;

/// Keeps the `k` entries of largest absolute value, zeroing the rest
/// (the paper's `torch.topk` baseline, §3.2).
///
/// Gradients flow only through the kept positions.
///
/// # Examples
///
/// ```
/// use actcomp_compress::{Compressor, TopK};
/// use actcomp_tensor::Tensor;
///
/// let mut c = TopK::new(1);
/// let y = c.round_trip(&Tensor::from_vec(vec![1.0, -9.0, 3.0], [1, 3]));
/// assert_eq!(y.as_slice(), &[0.0, -9.0, 0.0]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    /// LIFO stack of kept-index sets, one per unconsumed `compress`.
    cache_masks: Vec<Vec<u32>>,
    /// Reusable index buffer for the selection pass; keeps its capacity
    /// across `compress` calls so steady-state selection allocates nothing.
    scratch: Vec<u32>,
}

impl TopK {
    /// Keeps `k` elements per tensor.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "TopK requires k > 0");
        TopK {
            k,
            cache_masks: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Keeps a `ratio` fraction of elements (e.g. `0.05` keeps 5%).
    ///
    /// The element count is resolved per tensor at compression time, with a
    /// minimum of one element.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio <= 1`.
    pub fn with_ratio(ratio: f64, n: usize) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio {ratio} not in (0, 1]");
        Self::new(((n as f64 * ratio) as usize).max(1))
    }

    /// The configured number of kept elements.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Compressor for TopK {
    fn name(&self) -> &'static str {
        "topk"
    }

    fn compress(&mut self, x: &Tensor) -> Compressed {
        let k = self.k.min(x.len());
        // Select the k largest |values| in O(n) with select_nth, then sort
        // the selected indices for a deterministic message layout. The full
        // index permutation lives in `self.scratch` so the O(n) buffer is
        // reused across calls; only the k kept indices are copied out.
        self.scratch.clear();
        self.scratch.extend(0..x.len() as u32);
        let data = x.as_slice();
        if k < x.len() {
            self.scratch.select_nth_unstable_by(k - 1, |&a, &b| {
                data[b as usize]
                    .abs()
                    .partial_cmp(&data[a as usize].abs())
                    .expect("activations are finite")
            });
        }
        let mut order = self.scratch[..k].to_vec();
        order.sort_unstable();
        let values: Vec<f32> = order.iter().map(|&i| data[i as usize]).collect();
        self.cache_masks.push(order.clone());
        Compressed::new(
            Payload::Sparse {
                values,
                indices: order,
            },
            x.shape().clone(),
        )
    }

    fn decompress(&self, msg: &Compressed) -> Tensor {
        match msg.payload() {
            Payload::Sparse { values, indices } => scatter_sparse(values, indices, msg.shape()),
            _ => panic!("TopK received a non-sparse message"),
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mask = self
            .cache_masks
            .pop()
            .expect("TopK::backward called without compress");
        let mut dx = Tensor::zeros_like(dy);
        for &i in &mask {
            dx[i as usize] = dy[i as usize];
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn keeps_true_top_k() {
        let x = Tensor::from_vec(vec![0.5, -3.0, 2.0, -0.1, 1.0], [5]);
        let mut c = TopK::new(2);
        let y = c.round_trip(&x);
        assert_eq!(y.as_slice(), &[0.0, -3.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn k_larger_than_tensor_is_identity() {
        let x = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let mut c = TopK::new(10);
        assert_eq!(c.round_trip(&x), x);
    }

    #[test]
    fn error_bounded_by_dropped_mass() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = init::randn(&mut rng, [16, 16], 1.0);
        let mut c = TopK::new(64);
        let y = c.round_trip(&x);
        // Reconstruction keeps the largest entries, so the residual's max
        // must not exceed the smallest kept magnitude.
        let kept_min = y
            .as_slice()
            .iter()
            .filter(|v| **v != 0.0)
            .map(|v| v.abs())
            .fold(f32::INFINITY, f32::min);
        let resid_max = x.sub(&y).abs_max();
        assert!(resid_max <= kept_min + 1e-6);
    }

    #[test]
    fn backward_masks_gradient() {
        let x = Tensor::from_vec(vec![5.0, 0.1, -4.0, 0.2], [4]);
        let mut c = TopK::new(2);
        let _ = c.compress(&x);
        let dy = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]);
        let dx = c.backward(&dy);
        assert_eq!(dx.as_slice(), &[1.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn cache_stack_pops_in_reverse_order() {
        // Microbatched pipelines compress m times, then run backward in
        // reverse micro-batch order: each backward must see the matching
        // forward's mask (LIFO).
        let mut c = TopK::new(1);
        let _ = c.compress(&Tensor::from_vec(vec![9.0, 0.1], [2]));
        let _ = c.compress(&Tensor::from_vec(vec![0.1, 7.0], [2]));
        let dy = Tensor::ones([2]);
        assert_eq!(c.backward(&dy).as_slice(), &[0.0, 1.0]);
        assert_eq!(c.backward(&dy).as_slice(), &[1.0, 0.0]);
    }

    #[test]
    fn wire_size_counts_values_and_indices() {
        let x = Tensor::from_vec((0..100).map(|i| i as f32).collect(), [100]);
        let mut c = TopK::new(10);
        let msg = c.compress(&x);
        assert_eq!(msg.wire_bytes(2), 10 * 2 + 10 * 4);
    }

    #[test]
    fn with_ratio_resolves_k() {
        let c = TopK::with_ratio(0.05, 1000);
        assert_eq!(c.k(), 50);
        assert_eq!(TopK::with_ratio(0.0001, 10).k(), 1);
    }

    #[test]
    fn not_summable() {
        assert!(!TopK::new(1).summable());
    }
}
