//! Top-K sparsification.

use crate::message::scatter_sparse;
use crate::{Compressed, Compressor, Payload};
use actcomp_tensor::{pool, Tensor};

/// Minimum elements per selection chunk; below `threads *` this, the
/// fork-join overhead of extra chunks outweighs the parallel select.
const MIN_CHUNK: usize = 2048;

/// Decides whether the chunked parallel selection is expected to beat a
/// single serial select for an `n`-element input keeping `k`.
///
/// After the parallel per-chunk selects, the pooled path pays a *serial*
/// merge over up to `chunks * k` candidate keys; once that merge
/// approaches the input size the chunking is pure overhead (measured
/// 0.77x against the serial loop at 8 threads and the paper's 5% keep
/// rate on 2^21 elements — see `BENCH_codecs.json`). The quarter-input
/// bound the gate first shipped with still left marginal keep rates on
/// the pooled path for a ~1.2x return that a noisy or oversubscribed
/// pool erases, so the gate now falls back earlier: it admits the pooled
/// path only when the candidate set stays under an *eighth* of the input
/// and the planner actually produces more than one chunk. The codecs
/// bench pins the routed path per case in its `path` field.
///
/// Gating is a pure routing decision: the selection's total key order
/// makes both paths bit-identical (test-enforced), so this only ever
/// changes speed, never results.
pub fn pooled_select_beneficial(n: usize, k: usize, threads: usize) -> bool {
    if threads <= 1 || n < 2 * MIN_CHUNK {
        return false;
    }
    let chunks = pool::plan_unit_chunks(n, threads, MIN_CHUNK).len();
    chunks > 1 && chunks.saturating_mul(k.min(n)) <= n / 8
}

/// Selection key for element `i`: `(|v| bits, !i)` packed into a `u64`.
///
/// The IEEE bit pattern of `|v|` is monotone in `|v|` for non-negative
/// finite floats, so plain integer comparison orders by magnitude — no
/// `partial_cmp` Option plumbing in the hot comparator — and the inverted
/// index breaks magnitude ties toward the *smaller* index. Every key is
/// distinct, so "the k largest keys" is a unique set: the selection result
/// cannot depend on how the array was chunked or on `select_nth`'s
/// internal pivot choices.
#[inline]
fn sel_key(v: f32, i: usize) -> u64 {
    ((v.abs().to_bits() as u64) << 32) | u64::from(!(i as u32))
}

/// Returns the indices of the `k` largest-|value| elements of `data`
/// (ties toward the smaller index), sorted ascending, selecting over
/// `threads` row chunks. `keys` is a reusable scratch buffer.
///
/// Each chunk keeps its local top-`min(k, chunk_len)` as a candidate
/// prefix — any global top-k member that lives in a chunk is necessarily
/// in that chunk's local top-k — then one final select over the
/// concatenated candidates picks the global winners. Because the key
/// order is total, the result is bit-identical for every `threads`.
pub(crate) fn select_top_k(
    data: &[f32],
    k: usize,
    keys: &mut Vec<u64>,
    threads: usize,
) -> Vec<u32> {
    let n = data.len();
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    keys.clear();
    keys.resize(n, 0);
    // Route large-k selections to the single-chunk path: their candidate
    // merge would redo most of the work serially anyway.
    let threads = if pooled_select_beneficial(n, k, threads) {
        threads
    } else {
        1
    };
    let plan = pool::plan_unit_chunks(n, threads, MIN_CHUNK);
    pool::run_on_chunks(keys, &plan, |start, chunk| {
        for (j, slot) in chunk.iter_mut().enumerate() {
            let i = start + j;
            *slot = sel_key(data[i], i);
        }
        let kc = k.min(chunk.len());
        if kc < chunk.len() {
            chunk.select_nth_unstable_by(kc - 1, |a, b| b.cmp(a));
        }
    });
    let mut cands: Vec<u64> = Vec::with_capacity(plan.len() * k);
    let mut start = 0;
    for &len in &plan {
        cands.extend_from_slice(&keys[start..start + k.min(len)]);
        start += len;
    }
    if k < cands.len() {
        cands.select_nth_unstable_by(k - 1, |a, b| b.cmp(a));
    }
    let mut order: Vec<u32> = cands[..k].iter().map(|&key| !(key as u32)).collect();
    order.sort_unstable();
    order
}

/// Keeps the `k` entries of largest absolute value, zeroing the rest
/// (the paper's `torch.topk` baseline, §3.2).
///
/// Gradients flow only through the kept positions.
///
/// # Examples
///
/// ```
/// use actcomp_compress::{Compressor, TopK};
/// use actcomp_tensor::Tensor;
///
/// let mut c = TopK::new(1);
/// let y = c.round_trip(&Tensor::from_vec(vec![1.0, -9.0, 3.0], [1, 3]));
/// assert_eq!(y.as_slice(), &[0.0, -9.0, 0.0]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    /// LIFO stack of kept-index sets, one per unconsumed `compress`.
    cache_masks: Vec<Vec<u32>>,
    /// Reusable selection-key buffer; keeps its capacity across
    /// `compress` calls so steady-state selection allocates little.
    scratch: Vec<u64>,
}

impl TopK {
    /// Keeps `k` elements per tensor.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "TopK requires k > 0");
        TopK {
            k,
            cache_masks: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Keeps a `ratio` fraction of elements (e.g. `0.05` keeps 5%).
    ///
    /// The element count is resolved per tensor at compression time, with a
    /// minimum of one element.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio <= 1`.
    pub fn with_ratio(ratio: f64, n: usize) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio {ratio} not in (0, 1]");
        Self::new(((n as f64 * ratio) as usize).max(1))
    }

    /// The configured number of kept elements.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Compressor for TopK {
    fn name(&self) -> &'static str {
        "topk"
    }

    fn compress(&mut self, x: &Tensor) -> Compressed {
        // Chunked O(n) selection over the kernel pool; indices come back
        // sorted for a deterministic message layout. The O(n) key buffer
        // lives in `self.scratch` and is reused across calls.
        let data = x.as_slice();
        let order = select_top_k(data, self.k, &mut self.scratch, pool::configured_threads());
        let values: Vec<f32> = order.iter().map(|&i| data[i as usize]).collect();
        self.cache_masks.push(order.clone());
        Compressed::new(
            Payload::Sparse {
                values,
                indices: order,
            },
            x.shape().clone(),
        )
    }

    fn decompress(&self, msg: &Compressed) -> Tensor {
        match msg.payload() {
            Payload::Sparse { values, indices } => scatter_sparse(values, indices, msg.shape()),
            _ => panic!("TopK received a non-sparse message"),
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mask = self
            .cache_masks
            .pop()
            .expect("TopK::backward called without compress");
        let mut dx = Tensor::zeros_like(dy);
        for &i in &mask {
            dx[i as usize] = dy[i as usize];
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn keeps_true_top_k() {
        let x = Tensor::from_vec(vec![0.5, -3.0, 2.0, -0.1, 1.0], [5]);
        let mut c = TopK::new(2);
        let y = c.round_trip(&x);
        assert_eq!(y.as_slice(), &[0.0, -3.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn k_larger_than_tensor_is_identity() {
        let x = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let mut c = TopK::new(10);
        assert_eq!(c.round_trip(&x), x);
    }

    #[test]
    fn error_bounded_by_dropped_mass() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = init::randn(&mut rng, [16, 16], 1.0);
        let mut c = TopK::new(64);
        let y = c.round_trip(&x);
        // Reconstruction keeps the largest entries, so the residual's max
        // must not exceed the smallest kept magnitude.
        let kept_min = y
            .as_slice()
            .iter()
            .filter(|v| **v != 0.0)
            .map(|v| v.abs())
            .fold(f32::INFINITY, f32::min);
        let resid_max = x.sub(&y).abs_max();
        assert!(resid_max <= kept_min + 1e-6);
    }

    #[test]
    fn backward_masks_gradient() {
        let x = Tensor::from_vec(vec![5.0, 0.1, -4.0, 0.2], [4]);
        let mut c = TopK::new(2);
        let _ = c.compress(&x);
        let dy = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]);
        let dx = c.backward(&dy);
        assert_eq!(dx.as_slice(), &[1.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn cache_stack_pops_in_reverse_order() {
        // Microbatched pipelines compress m times, then run backward in
        // reverse micro-batch order: each backward must see the matching
        // forward's mask (LIFO).
        let mut c = TopK::new(1);
        let _ = c.compress(&Tensor::from_vec(vec![9.0, 0.1], [2]));
        let _ = c.compress(&Tensor::from_vec(vec![0.1, 7.0], [2]));
        let dy = Tensor::ones([2]);
        assert_eq!(c.backward(&dy).as_slice(), &[0.0, 1.0]);
        assert_eq!(c.backward(&dy).as_slice(), &[1.0, 0.0]);
    }

    #[test]
    fn wire_size_counts_values_and_indices() {
        let x = Tensor::from_vec((0..100).map(|i| i as f32).collect(), [100]);
        let mut c = TopK::new(10);
        let msg = c.compress(&x);
        assert_eq!(msg.wire_bytes(2), 10 * 2 + 10 * 4);
    }

    #[test]
    fn with_ratio_resolves_k() {
        let c = TopK::with_ratio(0.05, 1000);
        assert_eq!(c.k(), 50);
        assert_eq!(TopK::with_ratio(0.0001, 10).k(), 1);
    }

    #[test]
    fn not_summable() {
        assert!(!TopK::new(1).summable());
    }

    #[test]
    fn pooled_gate_admits_small_k_only() {
        // One thread or sub-threshold inputs: never pooled.
        assert!(!pooled_select_beneficial(1 << 21, 100, 1));
        assert!(!pooled_select_beneficial(1000, 10, 8));
        let n = 1 << 21;
        // The measured losing case: 8 threads at the paper's 5% keep
        // rate (candidate merge = 40% of the input).
        assert!(!pooled_select_beneficial(n, n / 20, 8));
        // Marginal keep rates now fall back too: 8 chunks at 2% keep
        // put the merge at 16% of the input, over the eighth bound.
        assert!(!pooled_select_beneficial(n, n / 50, 8));
        // A sparse keep rate leaves the merge small: pooled admitted.
        assert!(pooled_select_beneficial(n, n / 1000, 8));
    }

    #[test]
    fn ties_break_toward_smaller_index() {
        // Four equal magnitudes: the total selection order must keep the
        // two smallest indices, for every pool size.
        let x = [2.0f32, -2.0, 2.0, -2.0, 0.5];
        let mut keys = Vec::new();
        for threads in [1, 2, 8] {
            assert_eq!(select_top_k(&x, 2, &mut keys, threads), vec![0, 1]);
        }
    }

    proptest::proptest! {
        /// The chunked selection is bit-identical for pools {1, 2, 8} and
        /// matches a brute-force sort under the same total order — on
        /// inputs both above and below the parallel chunking threshold,
        /// with tie-heavy value distributions.
        #[test]
        fn selection_is_pool_size_invariant(
            n in 1usize..6000,
            k in 1usize..600,
            seed in 0u64..1000,
        ) {
            let data: Vec<f32> = (0..n)
                .map(|i| {
                    let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(seed);
                    ((h >> 33) % 23) as f32 - 11.0
                })
                .collect();
            let mut keys = Vec::new();
            let serial = select_top_k(&data, k, &mut keys, 1);
            for threads in [2usize, 8] {
                let pooled = select_top_k(&data, k, &mut keys, threads);
                proptest::prop_assert_eq!(&pooled, &serial, "threads={}", threads);
            }
            let mut idx: Vec<u32> = (0..n as u32).collect();
            idx.sort_by_key(|&i| std::cmp::Reverse(sel_key(data[i as usize], i as usize)));
            let mut want = idx[..k.min(n)].to_vec();
            want.sort_unstable();
            proptest::prop_assert_eq!(serial, want);
        }
    }
}
