//! Error-feedback wrapper (§3.3: "our implementation also allows the
//! integration of error-feedback compression algorithms by retaining the
//! error information from the previous compression step").

use crate::{Compressed, Compressor};
use actcomp_nn::Parameter;
use actcomp_tensor::Tensor;

/// Wraps any compressor with error feedback: the residual of each
/// compression step is added to the next step's input, so quantization /
/// sparsification error telescopes instead of accumulating.
///
/// # Examples
///
/// ```
/// use actcomp_compress::{Compressor, ErrorFeedback, TopK};
/// use actcomp_tensor::Tensor;
///
/// let mut ef = ErrorFeedback::new(TopK::new(1));
/// let x = Tensor::from_vec(vec![3.0, 2.0], [2]);
/// // Step 1 keeps 3.0 and remembers the dropped 2.0 ...
/// let _ = ef.round_trip(&x);
/// // ... step 2 sees 3.0 and 2.0+2.0=4.0, so the *small* coordinate wins.
/// let y2 = ef.round_trip(&x);
/// assert_eq!(y2.as_slice(), &[0.0, 4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct ErrorFeedback<C> {
    inner: C,
    residual: Option<Tensor>,
}

impl<C: Compressor> ErrorFeedback<C> {
    /// Wraps `inner` with a zero-initialized residual.
    pub fn new(inner: C) -> Self {
        ErrorFeedback {
            inner,
            residual: None,
        }
    }

    /// The accumulated residual, if any compression has happened yet.
    pub fn residual(&self) -> Option<&Tensor> {
        self.residual.as_ref()
    }

    /// Consumes the wrapper and returns the inner compressor.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: Compressor> Compressor for ErrorFeedback<C> {
    fn name(&self) -> &'static str {
        "error-feedback"
    }

    fn compress(&mut self, x: &Tensor) -> Compressed {
        let corrected = match &self.residual {
            Some(r) if r.shape().same_as(x.shape()) => x.add(r),
            _ => x.clone(),
        };
        let msg = self.inner.compress(&corrected);
        let reconstructed = self.inner.decompress(&msg);
        self.residual = Some(corrected.sub(&reconstructed));
        msg
    }

    fn decompress(&self, msg: &Compressed) -> Tensor {
        self.inner.decompress(msg)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        // The residual path is treated as constant (standard EF practice):
        // gradients flow through the inner compressor only.
        self.inner.backward(dy)
    }

    fn summable(&self) -> bool {
        self.inner.summable()
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.inner.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Quantizer, TopK};
    use actcomp_tensor::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn residual_tracks_compression_error() {
        let mut ef = ErrorFeedback::new(TopK::new(1));
        let x = Tensor::from_vec(vec![5.0, 1.0], [2]);
        let y = ef.round_trip(&x);
        assert_eq!(y.as_slice(), &[5.0, 0.0]);
        assert_eq!(ef.residual().unwrap().as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn feedback_reduces_time_averaged_error() {
        // Repeatedly compressing the same tensor: with EF the *running sum*
        // of reconstructions converges to the running sum of inputs.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = init::randn(&mut rng, [32], 1.0);
        let steps = 50;

        let mut with_ef = ErrorFeedback::new(Quantizer::new(2));
        let mut without = Quantizer::new(2);
        let mut sum_ef = Tensor::zeros_like(&x);
        let mut sum_plain = Tensor::zeros_like(&x);
        for _ in 0..steps {
            sum_ef.add_assign(&with_ef.round_trip(&x));
            sum_plain.add_assign(&without.round_trip(&x));
        }
        let target = x.scale(steps as f32);
        let err_ef = sum_ef.sub(&target).norm() / steps as f32;
        let err_plain = sum_plain.sub(&target).norm() / steps as f32;
        assert!(
            err_ef < err_plain * 0.2,
            "EF mean error {err_ef} not much below plain {err_plain}"
        );
    }

    #[test]
    fn residual_telescopes_boundedly() {
        // EF residual must stay bounded over many steps (no blow-up).
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ef = ErrorFeedback::new(TopK::new(8));
        let mut max_resid = 0.0f32;
        for _ in 0..100 {
            let x = init::randn(&mut rng, [64], 1.0);
            let _ = ef.round_trip(&x);
            max_resid = max_resid.max(ef.residual().unwrap().norm());
        }
        assert!(max_resid < 50.0, "residual norm {max_resid} exploded");
    }

    #[test]
    fn shape_change_resets_residual() {
        let mut ef = ErrorFeedback::new(TopK::new(1));
        let _ = ef.round_trip(&Tensor::from_vec(vec![5.0, 1.0], [2]));
        // A different shape must not panic; residual restarts.
        let y = ef.round_trip(&Tensor::from_vec(vec![2.0, 1.0, 0.5], [3]));
        assert_eq!(y.as_slice(), &[2.0, 0.0, 0.0]);
    }
}
