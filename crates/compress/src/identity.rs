//! The no-compression baseline.

use crate::{Compressed, Compressor, Payload};
use actcomp_tensor::Tensor;

/// Identity "compressor": sends the dense activation unchanged. This is the
/// paper's `w/o` baseline column.
///
/// # Examples
///
/// ```
/// use actcomp_compress::{Compressor, Identity};
/// use actcomp_tensor::Tensor;
///
/// let x = Tensor::ones([2, 3]);
/// assert_eq!(Identity::new().round_trip(&x), x);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Identity {
    /// Creates the identity compressor.
    pub fn new() -> Self {
        Identity
    }
}

impl Compressor for Identity {
    fn name(&self) -> &'static str {
        "identity"
    }

    fn compress(&mut self, x: &Tensor) -> Compressed {
        Compressed::new(Payload::Dense(x.clone()), x.shape().clone())
    }

    fn decompress(&self, msg: &Compressed) -> Tensor {
        match msg.payload() {
            Payload::Dense(t) => t.clone(),
            _ => panic!("Identity received a non-dense message"),
        }
    }

    fn summable(&self) -> bool {
        true
    }

    fn chunkable(&self) -> bool {
        // Per-element passthrough: any row chunking reproduces the whole-
        // tensor message bit for bit.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_lossless_and_summable() {
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.5], [3]);
        let mut id = Identity::new();
        assert_eq!(id.round_trip(&x), x);
        assert!(id.summable());
        assert_eq!(id.compress(&x).ratio(2), 1.0);
        assert_eq!(id.backward(&x), x);
    }
}
