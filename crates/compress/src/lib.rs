//! # actcomp-compress
//!
//! The four activation-compression families the paper evaluates —
//! sparsification (Top-K / Random-K), quantization, and learning-based
//! auto-encoders — plus identity (no compression) and an error-feedback
//! wrapper (§3.3).
//!
//! A [`Compressor`] turns an activation tensor into a [`Compressed`]
//! message with an accountable wire size, and back. Because compression
//! sits *inside* the training graph (unlike gradient compression), every
//! compressor also defines a backward rule:
//!
//! - Top-K / Random-K: gradients flow only through kept elements (mask),
//! - quantization: straight-through estimator,
//! - auto-encoder: exact gradients through the encoder/decoder matrices,
//!   which are trainable parameters visited alongside the model's.
//!
//! [`spec`] maps the paper's Table 1 notation (`A1`, `T3`, `Q2`, …) to
//! configured compressors, and [`cost`] models the encode/decode latency
//! each algorithm costs on a V100, calibrated to the paper's breakdown
//! tables.
//!
//! # Example
//!
//! ```
//! use actcomp_compress::{Compressor, TopK};
//! use actcomp_tensor::Tensor;
//!
//! let mut c = TopK::new(2);
//! let x = Tensor::from_vec(vec![0.1, -5.0, 0.2, 4.0], [2, 2]);
//! let msg = c.compress(&x);
//! let xhat = c.decompress(&msg);
//! assert_eq!(xhat.as_slice(), &[0.0, -5.0, 0.0, 4.0]);
//! // Two fp16 values + two u32 indices on the wire.
//! assert_eq!(msg.wire_bytes(2), 2 * 2 + 2 * 4);
//! ```

#![warn(missing_docs)]

mod adaptive;
mod autoencoder;
mod error_feedback;
mod identity;
mod lowrank;
mod message;
mod quant;
mod quant_ext;
mod randk;
mod topk;

pub mod cost;
pub mod plan;
pub mod spec;

pub use adaptive::RowTopK;
pub use autoencoder::AutoEncoder;
pub use error_feedback::ErrorFeedback;
pub use identity::Identity;
pub use lowrank::LowRank;
pub use message::{Compressed, Payload};
pub use plan::{CompressionPlan, PlanError};
pub use quant::Quantizer;
pub use quant_ext::{RowQuantizer, StochasticQuantizer};
pub use randk::RandomK;
pub use spec::SpecError;
pub use topk::{pooled_select_beneficial, TopK};

use actcomp_nn::Parameter;
use actcomp_tensor::Tensor;

/// An activation compressor: the `C`/`DC` pair of the paper's Figure 3.
///
/// Implementations cache whatever they need during [`Compressor::compress`]
/// so that [`Compressor::backward`] can route gradients through the
/// (de)compression, because activation compression lives inside the
/// training graph. Caches are LIFO stacks: a microbatched pipeline calls
/// `compress` once per micro-batch during the fill and `backward` in
/// reverse micro-batch order during the drain, and each `backward` pops
/// the cache of the most recent unconsumed `compress`.
///
/// The `Send` bound lets compressor instances move into per-rank worker
/// threads (`actcomp-runtime` gives every model-parallel rank its own
/// instance).
pub trait Compressor: Send {
    /// Human-readable algorithm name (e.g. `"topk"`).
    fn name(&self) -> &'static str;

    /// Encodes an activation tensor into a wire message, caching state for
    /// [`Compressor::backward`].
    fn compress(&mut self, x: &Tensor) -> Compressed;

    /// Decodes a wire message back into a dense activation.
    fn decompress(&self, msg: &Compressed) -> Tensor;

    /// Routes the upstream gradient `dy` through `decompress ∘ compress`,
    /// accumulating gradients into any learnable compressor parameters,
    /// and returns the gradient with respect to the original activation.
    ///
    /// The default is the straight-through estimator (gradient passes
    /// unchanged).
    fn backward(&mut self, dy: &Tensor) -> Tensor {
        dy.clone()
    }

    /// Whether two compressed messages can be summed elementwise on the
    /// wire (required to participate in an all-reduce). True for linear
    /// codes (auto-encoder, identity); false for sparse and quantized
    /// messages, which must travel via all-gather instead (§3.2).
    fn summable(&self) -> bool {
        false
    }

    /// Whether this codec may be applied independently to contiguous row
    /// chunks of a rank-2 activation with results bitwise identical to
    /// compressing the whole tensor at once. True only for codecs whose
    /// per-row output depends on nothing outside the row: identity (per
    /// element) and the auto-encoder (the code's row `r` is `x[r] @ E`).
    /// False for anything with whole-tensor semantics — Top-K's global
    /// selection, per-tensor quantization ranges, error-feedback
    /// residuals — which `actcomp-runtime` therefore ships as a single
    /// chunk. Chunked callers must also run [`Compressor::backward`] once
    /// per chunk in reverse chunk order (the caches are LIFO).
    fn chunkable(&self) -> bool {
        false
    }

    /// Visits learnable compressor parameters (the auto-encoder's encoder
    /// and decoder matrices). Default: none.
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Parameter)) {}

    /// Convenience: compress-then-decompress (what the downstream layer
    /// actually receives).
    fn round_trip(&mut self, x: &Tensor) -> Tensor {
        let msg = self.compress(x);
        self.decompress(&msg)
    }
}

impl Compressor for Box<dyn Compressor> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn compress(&mut self, x: &Tensor) -> Compressed {
        (**self).compress(x)
    }

    fn decompress(&self, msg: &Compressed) -> Tensor {
        (**self).decompress(msg)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        (**self).backward(dy)
    }

    fn summable(&self) -> bool {
        (**self).summable()
    }

    fn chunkable(&self) -> bool {
        (**self).chunkable()
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        (**self).visit_params(f)
    }
}
