//! Quantization extensions beyond the paper's per-tensor scheme:
//! stochastic rounding and per-row (per-token) scaling.
//!
//! The paper evaluates the deterministic per-tensor quantizer of Wang et
//! al. 2022 (`Q1`–`Q3`). These variants are the natural follow-ups its
//! conclusion invites ("insights for future development of model
//! parallelism compression algorithms"): stochastic rounding makes the
//! quantizer *unbiased* (so errors average out across steps), and per-row
//! scales adapt to each token's dynamic range — both standard tools from
//! the gradient-compression literature applied to activations.

use crate::{Compressed, Compressor, Payload};
use actcomp_tensor::{pool, Tensor};
use bytes::Bytes;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Minimum rows per chunk when parallelizing the per-row quantizer.
const MIN_CHUNK_ROWS: usize = 8;

/// Packs an `[m, n]` tensor into the per-row wire layout
/// (`[scale f32][zero f32][codes]` per row), chunked over `threads`.
///
/// Rows are fully independent — range, metadata, and codes all live
/// inside the row's own stride — so the pool splits the buffer on row
/// boundaries and every byte's value is chunk-plan independent; within a
/// row everything runs in the serial order.
fn pack_rows(xs: &[f32], m: usize, n: usize, bits: usize, levels: u32, threads: usize) -> Vec<u8> {
    let per_byte = 8 / bits;
    let stride = 8 + n.div_ceil(per_byte);
    let mut buf = vec![0u8; m * stride];
    let rplan = pool::plan_unit_chunks(m, threads, MIN_CHUNK_ROWS);
    let blens: Vec<usize> = rplan.iter().map(|&r| r * stride).collect();
    pool::run_on_chunks(&mut buf, &blens, |b0, chunk| {
        let row0 = b0 / stride;
        for (r, rowbuf) in chunk.chunks_mut(stride).enumerate() {
            let row = &xs[(row0 + r) * n..(row0 + r + 1) * n];
            let lo = row.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let scale = if hi > lo {
                (hi - lo) / levels as f32
            } else {
                1.0
            };
            rowbuf[0..4].copy_from_slice(&scale.to_le_bytes());
            rowbuf[4..8].copy_from_slice(&lo.to_le_bytes());
            for (bi, byte) in rowbuf[8..].iter_mut().enumerate() {
                let e0 = bi * per_byte;
                let e1 = (e0 + per_byte).min(n);
                let mut b = 0u8;
                for (s, &v) in row[e0..e1].iter().enumerate() {
                    let q = (((v - lo) / scale).round() as u32).min(levels) as u8;
                    b |= q << (s * bits);
                }
                *byte = b;
            }
        }
    });
    buf
}

/// Inverse of [`pack_rows`]: reconstructs the `[m, n]` dense values from
/// the per-row wire layout, chunked over `threads` on row boundaries.
fn unpack_rows(codes: &[u8], m: usize, n: usize, bits: usize, threads: usize) -> Vec<f32> {
    let per_byte = 8 / bits;
    let stride = 8 + n.div_ceil(per_byte);
    let mask = ((1u16 << bits) - 1) as u8;
    let mut out = vec![0.0f32; m * n];
    if n == 0 {
        return out;
    }
    let rplan = pool::plan_unit_chunks(m, threads, MIN_CHUNK_ROWS);
    let elens: Vec<usize> = rplan.iter().map(|&r| r * n).collect();
    pool::run_on_chunks(&mut out, &elens, |e0, chunk| {
        let row0 = e0 / n;
        for (r, orow) in chunk.chunks_mut(n).enumerate() {
            let row = &codes[(row0 + r) * stride..(row0 + r + 1) * stride];
            let scale = f32::from_le_bytes(row[0..4].try_into().expect("scale bytes"));
            let zero = f32::from_le_bytes(row[4..8].try_into().expect("zero bytes"));
            for (bi, &byte) in row[8..].iter().enumerate() {
                let e0 = bi * per_byte;
                let e1 = (e0 + per_byte).min(n);
                for (s, slot) in orow[e0..e1].iter_mut().enumerate() {
                    let code = (byte >> (s * bits)) & mask;
                    *slot = zero + code as f32 * scale;
                }
            }
        }
    });
    out
}

/// Uniform quantizer with *stochastic rounding*: each value rounds up with
/// probability equal to its fractional position between levels, making the
/// reconstruction an unbiased estimator of the input.
///
/// # Examples
///
/// ```
/// use actcomp_compress::{Compressor, StochasticQuantizer};
/// use actcomp_tensor::Tensor;
///
/// let mut q = StochasticQuantizer::new(4, 7);
/// let y = q.round_trip(&Tensor::from_vec(vec![0.0, 0.5, 1.0], [3]));
/// assert!((y[0] - 0.0).abs() < 1e-6 && (y[2] - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct StochasticQuantizer {
    bits: u8,
    rng: ChaCha8Rng,
}

impl StochasticQuantizer {
    /// Creates a stochastic quantizer with the given code width.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is 2, 4, or 8.
    pub fn new(bits: u8, seed: u64) -> Self {
        assert!(
            matches!(bits, 2 | 4 | 8),
            "unsupported quantization width {bits} (expected 2, 4, or 8)"
        );
        StochasticQuantizer {
            bits,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Code width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }
}

impl Compressor for StochasticQuantizer {
    fn name(&self) -> &'static str {
        "squant"
    }

    fn compress(&mut self, x: &Tensor) -> Compressed {
        let lo = x.min();
        let hi = x.max();
        let levels = (1u32 << self.bits) - 1;
        let scale = if hi > lo {
            (hi - lo) / levels as f32
        } else {
            1.0
        };
        let per_byte = 8 / self.bits as usize;
        let mut codes = vec![0u8; x.len().div_ceil(per_byte)];
        // Deliberately serial, unlike the deterministic quantizer's pooled
        // pack: the ChaCha8 stream advances once per element in index
        // order, and that draw order *is* the seeded-determinism contract.
        // (Decompression shares the pooled unpack path below.)
        for (i, &v) in x.as_slice().iter().enumerate() {
            let t = (v - lo) / scale;
            let floor = t.floor();
            let frac = t - floor;
            let up = self.rng.gen::<f32>() < frac;
            let q = ((floor as u32 + u32::from(up)).min(levels)) as u8;
            codes[i / per_byte] |= q << ((i % per_byte) * self.bits as usize);
        }
        Compressed::new(
            Payload::Quantized {
                codes: Bytes::from(codes),
                bits: self.bits,
                scale,
                zero: lo,
            },
            x.shape().clone(),
        )
    }

    fn decompress(&self, msg: &Compressed) -> Tensor {
        // Shares the dequantization path with the deterministic quantizer.
        crate::Quantizer::new(self.bits).decompress(msg)
    }

    // Straight-through backward inherited.
}

/// Per-row (per-token) uniform quantization: each row of the
/// `[tokens, features]` activation gets its own `(scale, zero)`, adapting
/// to per-token dynamic range. Wire cost adds 8 bytes of metadata per row.
#[derive(Debug, Clone)]
pub struct RowQuantizer {
    bits: u8,
    cache_rows: Option<usize>,
}

impl RowQuantizer {
    /// Creates a per-row quantizer.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is 2, 4, or 8.
    pub fn new(bits: u8) -> Self {
        assert!(
            matches!(bits, 2 | 4 | 8),
            "unsupported quantization width {bits} (expected 2, 4, or 8)"
        );
        RowQuantizer {
            bits,
            cache_rows: None,
        }
    }

    /// Code width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }
}

impl Compressor for RowQuantizer {
    fn name(&self) -> &'static str {
        "rowquant"
    }

    fn compress(&mut self, x: &Tensor) -> Compressed {
        assert_eq!(
            x.rank(),
            2,
            "RowQuantizer input must be rank 2, got {}",
            x.shape()
        );
        let (m, n) = (x.dims()[0], x.dims()[1]);
        self.cache_rows = Some(m);
        let levels = (1u32 << self.bits) - 1;
        // Layout: per row, [scale f32][zero f32][packed codes].
        let buf = pack_rows(
            x.as_slice(),
            m,
            n,
            self.bits as usize,
            levels,
            pool::configured_threads(),
        );
        Compressed::new(
            Payload::Quantized {
                codes: Bytes::from(buf),
                bits: self.bits,
                scale: 0.0, // per-row metadata lives in the byte stream
                zero: 0.0,
            },
            x.shape().clone(),
        )
    }

    fn decompress(&self, msg: &Compressed) -> Tensor {
        let (m, n) = (msg.shape().dim(0), msg.shape().dim(1));
        match msg.payload() {
            Payload::Quantized { codes, bits, .. } => {
                let out = unpack_rows(codes, m, n, *bits as usize, pool::configured_threads());
                Tensor::from_vec(out, [m, n])
            }
            _ => panic!("RowQuantizer received a non-quantized message"),
        }
    }

    // Straight-through backward inherited.
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_tensor::init;

    #[test]
    fn stochastic_rounding_is_unbiased() {
        let x = Tensor::full(0.3, [256]);
        let mut q = StochasticQuantizer::new(2, 0);
        // Scale forces x between two levels; the mean must approach 0.3.
        let mut acc = 0.0f32;
        let trials = 400;
        let spread = {
            let mut t = x.clone();
            t[0] = 0.0;
            t[255] = 1.0;
            t
        };
        for _ in 0..trials {
            acc += q.round_trip(&spread).mean();
        }
        let mean = acc / trials as f32;
        let target = spread.mean();
        assert!((mean - target).abs() < 0.01, "mean {mean} vs {target}");
    }

    #[test]
    fn stochastic_error_never_exceeds_one_step() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = init::randn(&mut rng, [64], 1.0);
        let mut q = StochasticQuantizer::new(4, 2);
        let y = q.round_trip(&x);
        let step = (x.max() - x.min()) / 15.0;
        assert!(x.max_abs_diff(&y) <= step + 1e-5);
    }

    #[test]
    fn row_quant_beats_tensor_quant_on_heterogeneous_rows() {
        // One row with tiny range, one with huge range: a per-tensor scale
        // destroys the small row; per-row scales preserve it.
        let mut data = vec![0.0f32; 64];
        for (j, slot) in data.iter_mut().enumerate().take(32) {
            *slot = 0.001 * (j % 7) as f32;
        }
        for (j, slot) in data.iter_mut().enumerate().skip(32) {
            *slot = 100.0 * ((j % 5) as f32 - 2.0);
        }
        let x = Tensor::from_vec(data, [2, 32]);
        let per_tensor = crate::Quantizer::new(4).round_trip(&x);
        let per_row = RowQuantizer::new(4).round_trip(&x);
        let small_row_err_tensor = x
            .slice_rows(0, 1)
            .max_abs_diff(&per_tensor.slice_rows(0, 1));
        let small_row_err_row = x.slice_rows(0, 1).max_abs_diff(&per_row.slice_rows(0, 1));
        assert!(
            small_row_err_row < small_row_err_tensor / 100.0,
            "{small_row_err_row} vs {small_row_err_tensor}"
        );
    }

    #[test]
    fn row_quant_round_trip_error_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x = init::randn(&mut rng, [8, 32], 2.0);
        for bits in [2u8, 4, 8] {
            let y = RowQuantizer::new(bits).round_trip(&x);
            for i in 0..8 {
                let xr = x.slice_rows(i, i + 1);
                let yr = y.slice_rows(i, i + 1);
                let step = (xr.max() - xr.min()) / ((1u32 << bits) - 1) as f32;
                assert!(
                    xr.max_abs_diff(&yr) <= step / 2.0 + 1e-5,
                    "row {i} bits {bits}"
                );
            }
        }
    }

    proptest::proptest! {
        /// Per-row pack/unpack is bit-identical for pools {1, 2, 8} on
        /// arbitrary row/column counts (including ragged last code bytes).
        #[test]
        fn row_pack_unpack_is_pool_size_invariant(
            m in 1usize..64,
            n in 1usize..70,
            bits_ix in 0usize..3,
            seed in 0u64..1000,
        ) {
            let bits = [2usize, 4, 8][bits_ix];
            let levels = (1u32 << bits) - 1;
            let data: Vec<f32> = (0..m * n)
                .map(|i| {
                    let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(seed);
                    ((h >> 33) % 37) as f32 * 0.21 - 4.0
                })
                .collect();
            let serial = pack_rows(&data, m, n, bits, levels, 1);
            let out_serial = unpack_rows(&serial, m, n, bits, 1);
            for threads in [2usize, 8] {
                let pooled = pack_rows(&data, m, n, bits, levels, threads);
                proptest::prop_assert_eq!(&pooled, &serial, "pack threads={}", threads);
                let out = unpack_rows(&pooled, m, n, bits, threads);
                let same = out
                    .iter()
                    .zip(&out_serial)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                proptest::prop_assert!(same, "unpack threads={}", threads);
            }
        }
    }

    #[test]
    fn row_quant_wire_size_includes_per_row_metadata() {
        let x = Tensor::ones([4, 64]);
        let msg = RowQuantizer::new(8).compress(&x);
        // 4 rows × (8 metadata + 64 codes) + 8 global metadata.
        assert_eq!(msg.wire_bytes(2), 4 * (8 + 64) + 8);
    }
}
