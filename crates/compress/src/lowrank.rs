//! Low-rank compression (PowerSGD-style), included as the paper's
//! *negative control*.
//!
//! The paper excludes low-rank compressors from the activation study
//! because Figure 2 shows activations are not low-rank: "applying gradient
//! compression techniques to activations is likely to result in a
//! significant loss of accuracy". This module makes that argument
//! executable — [`LowRank`] implements the subspace-iteration rank-`r`
//! factorization PowerSGD uses (Vogels et al. 2019), and the
//! `ablation_lowrank` bench shows it reconstructs *gradients* well and
//! *activations* poorly at equal rank.

use crate::{Compressed, Compressor, Payload};
use actcomp_tensor::{init, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Rank-`r` compressor: `X ≈ P Qᵀ` with `P = X Q_prev` orthonormalized and
/// `Q = Xᵀ P`, one subspace ("power") iteration per message, with the
/// previous `Q` reused across steps exactly as PowerSGD's warm start.
///
/// The wire message is the pair `(P [m×r], Q [n×r])` — `r(m+n)` floats
/// instead of `m·n`. Gradients flow straight-through (the factorization is
/// not differentiated; PowerSGD pairs it with error feedback instead —
/// wrap in [`crate::ErrorFeedback`] for that).
///
/// # Examples
///
/// ```
/// use actcomp_compress::{Compressor, LowRank};
/// use actcomp_tensor::Tensor;
///
/// let mut c = LowRank::new(1, 0);
/// // A rank-1 matrix round-trips (after a couple of warm-start steps).
/// let x = Tensor::from_vec(vec![1.0, 2.0, 2.0, 4.0], [2, 2]);
/// let mut y = c.round_trip(&x);
/// for _ in 0..3 {
///     y = c.round_trip(&x);
/// }
/// assert!(x.max_abs_diff(&y) < 1e-2);
/// ```
#[derive(Debug, Clone)]
pub struct LowRank {
    rank: usize,
    rng: ChaCha8Rng,
    /// Warm-started right factor from the previous compression.
    q_prev: Option<Tensor>,
}

impl LowRank {
    /// Creates a rank-`r` compressor.
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0`.
    pub fn new(rank: usize, seed: u64) -> Self {
        assert!(rank > 0, "LowRank requires rank > 0");
        LowRank {
            rank,
            rng: ChaCha8Rng::seed_from_u64(seed),
            q_prev: None,
        }
    }

    /// The configured rank.
    pub fn rank(&self) -> usize {
        self.rank
    }
}

impl Compressor for LowRank {
    fn name(&self) -> &'static str {
        "lowrank"
    }

    fn compress(&mut self, x: &Tensor) -> Compressed {
        assert_eq!(
            x.rank(),
            2,
            "LowRank input must be rank 2, got {}",
            x.shape()
        );
        let (m, n) = (x.dims()[0], x.dims()[1]);
        let r = self.rank.min(m).min(n);

        // Right factor: warm start or fresh Gaussian.
        let q = match &self.q_prev {
            Some(q) if q.dims() == [n, r] => q.clone(),
            _ => init::randn(&mut self.rng, [n, r], 1.0),
        };
        // One subspace iteration: P = orth(X Q); Q = Xᵀ P.
        let p = orthonormalize(&x.matmul(&q));
        let q = x.matmul_tn(&p); // [n, r]
        self.q_prev = Some(q.clone());

        // Pack (P, Q) into one dense payload; shape metadata disambiguates.
        let mut payload = Vec::with_capacity(m * r + n * r);
        payload.extend_from_slice(p.as_slice());
        payload.extend_from_slice(q.as_slice());
        Compressed::new(
            Payload::Dense(Tensor::from_vec(payload, [(m + n) * r])),
            x.shape().clone(),
        )
    }

    fn decompress(&self, msg: &Compressed) -> Tensor {
        let (m, n) = (msg.shape().dim(0), msg.shape().dim(1));
        match msg.payload() {
            Payload::Dense(flat) => {
                let r = flat.len() / (m + n);
                let p = Tensor::from_vec(flat.as_slice()[..m * r].to_vec(), [m, r]);
                let q = Tensor::from_vec(flat.as_slice()[m * r..].to_vec(), [n, r]);
                p.matmul_nt(&q)
            }
            _ => panic!("LowRank received a non-dense message"),
        }
    }

    // Straight-through backward (PowerSGD treats compression error via EF,
    // not differentiation) — inherited default.
}

/// Gram–Schmidt orthonormalization of the columns of `a` (in f64 for
/// stability; degenerate columns become zero).
fn orthonormalize(a: &Tensor) -> Tensor {
    let (m, r) = (a.dims()[0], a.dims()[1]);
    let mut cols: Vec<Vec<f64>> = (0..r)
        .map(|j| (0..m).map(|i| a.as_slice()[i * r + j] as f64).collect())
        .collect();
    for j in 0..r {
        for k in 0..j {
            let dot: f64 = (0..m).map(|i| cols[j][i] * cols[k][i]).sum();
            let (head, tail) = cols.split_at_mut(j);
            for (cj, ck) in tail[0].iter_mut().zip(head[k].iter()) {
                *cj -= dot * ck;
            }
        }
        let norm: f64 = cols[j].iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for v in &mut cols[j] {
                *v /= norm;
            }
        } else {
            cols[j].iter_mut().for_each(|v| *v = 0.0);
        }
    }
    let mut out = vec![0.0f32; m * r];
    for j in 0..r {
        for i in 0..m {
            out[i * r + j] = cols[j][i] as f32;
        }
    }
    Tensor::from_vec(out, [m, r])
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_tensor::linalg;

    fn low_rank_matrix(seed: u64, m: usize, n: usize, true_rank: usize) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let u = init::randn(&mut rng, [m, true_rank], 1.0);
        let v = init::randn(&mut rng, [true_rank, n], 1.0);
        u.matmul(&v)
    }

    #[test]
    fn orthonormalize_produces_orthonormal_columns() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let a = init::randn(&mut rng, [10, 3], 1.0);
        let q = orthonormalize(&a);
        let gram = q.matmul_tn(&q);
        assert!(gram.max_abs_diff(&Tensor::eye(3)) < 1e-4);
    }

    #[test]
    fn reconstructs_low_rank_matrices_well() {
        let x = low_rank_matrix(1, 16, 24, 2);
        let mut c = LowRank::new(2, 0);
        // Warm-started subspace iterations converge quickly.
        let mut y = c.round_trip(&x);
        for _ in 0..4 {
            y = c.round_trip(&x);
        }
        let rel = x.sub(&y).norm() / x.norm();
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn fails_on_full_rank_matrices() {
        // The paper's Figure 2 argument: full-rank inputs (activations)
        // cannot be captured at low rank.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let x = init::randn(&mut rng, [24, 24], 1.0);
        let mut c = LowRank::new(2, 0);
        let mut y = c.round_trip(&x);
        for _ in 0..4 {
            y = c.round_trip(&x);
        }
        let rel = x.sub(&y).norm() / x.norm();
        assert!(rel > 0.5, "a dense Gaussian should not compress: {rel}");
    }

    #[test]
    fn wire_size_is_rank_linear() {
        let x = low_rank_matrix(3, 32, 64, 4);
        let mut c2 = LowRank::new(2, 0);
        let mut c8 = LowRank::new(8, 0);
        let b2 = c2.compress(&x).wire_bytes(2);
        let b8 = c8.compress(&x).wire_bytes(2);
        assert_eq!(b2, (32 + 64) * 2 * 2);
        assert_eq!(b8, (32 + 64) * 8 * 2);
        assert!(b8 < x.len() * 2, "rank 8 still compresses a 32x64 matrix");
    }

    #[test]
    fn rank_capped_by_matrix_dims() {
        let x = low_rank_matrix(4, 4, 6, 2);
        let mut c = LowRank::new(100, 0);
        let y = c.round_trip(&x); // must not panic; r clamps to 4
        assert_eq!(y.dims(), x.dims());
        assert!(x.sub(&y).norm() / x.norm() < 1e-3);
    }

    #[test]
    fn captures_energy_matching_svd_prefix() {
        // Reconstruction quality ≈ the top-r singular-value mass.
        let x = low_rank_matrix(5, 20, 20, 6);
        let sv = linalg::singular_values(&x);
        let captured: f32 = sv[..3].iter().map(|s| s * s).sum();
        let total: f32 = sv.iter().map(|s| s * s).sum();
        let mut c = LowRank::new(3, 0);
        let mut y = c.round_trip(&x);
        for _ in 0..6 {
            y = c.round_trip(&x);
        }
        let explained = 1.0 - x.sub(&y).sq_norm() / x.sq_norm();
        assert!(
            (explained - captured / total).abs() < 0.05,
            "explained {explained} vs svd prefix {}",
            captured / total
        );
    }
}
