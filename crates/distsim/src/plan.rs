//! Re-export of the compression placement plan (defined in
//! `actcomp-compress`, shared with the numerically-real `actcomp-mp`).

pub use actcomp_compress::plan::CompressionPlan;
