//! Calibrated compute profiles, with provenance.
//!
//! The simulator predicts iteration times from first principles (FLOPs,
//! bytes, schedules), but the *achieved* FLOP rate of a V100 differs
//! between the paper's two regimes, so each gets its own profile:
//!
//! - **Fine-tuning** (b=32, s=512, classification head): the paper's
//!   `TP=1, PP=4` baseline runs 24 layers × `96Bsh² + 16Bs²h` = 4.29e13
//!   FLOPs in 592 ms (Table 2) → 1.38e-14 s/FLOP (~72 TFLOP/s achieved).
//!   Backward/forward compute ratio 1.62 from Table 4 after subtracting
//!   the measured communication (`(354−151)/(276−151)`).
//!
//! - **Pre-training** (b=128, s=128, MLM + NSP heads): Table 7's forward
//!   time implies ~3× more wall time per layer-FLOP, because the per-layer
//!   formula excludes the embedding and MLM-head work (a `h × 30522`
//!   projection) and the shorter sequences utilize the GPU worse →
//!   3.35e-14 s/FLOP, backward/forward 0.87 (Table 7: 419/467 after
//!   communication).
//!
//! Optimizer rates come from dividing the measured optimizer column by the
//! per-GPU parameter count.

use crate::hardware::GpuSpec;

/// V100 profile for the fine-tuning regime (b=32, s=512).
pub fn v100_finetune() -> GpuSpec {
    GpuSpec {
        sec_per_flop: 1.38e-14,
        bwd_over_fwd: 1.62,
        // Table 4: 5.8 ms for 345M/4 params ≈ 6.7e-11 s/param.
        sec_per_param_update: 6.7e-11,
    }
}

/// V100 profile for the pre-training regime (b=128, s=128, MLM head).
pub fn v100_pretrain() -> GpuSpec {
    GpuSpec {
        sec_per_flop: 3.35e-14,
        bwd_over_fwd: 0.87,
        // Table 7: 7.4 ms for 345M/16 params ≈ 3.4e-10 s/param.
        sec_per_param_update: 3.4e-10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_plausible_v100_rates() {
        // Achieved rates must sit below the 125 TFLOP/s fp16 peak.
        for p in [v100_finetune(), v100_pretrain()] {
            let tflops = 1.0 / p.sec_per_flop / 1e12;
            assert!(tflops > 5.0 && tflops < 125.0, "{tflops} TFLOP/s");
        }
    }

    #[test]
    fn finetune_baseline_iteration_time() {
        // TP=1, PP=4 fine-tuning baseline: paper measures 591.96 ms.
        use crate::iteration::{simulate_iteration, TrainSetup};
        use crate::plan::CompressionPlan;
        use crate::topology::Parallelism;
        use crate::workload::ModelShape;
        use crate::ClusterSpec;
        use actcomp_compress::cost::CostModel;

        let setup = TrainSetup {
            model: ModelShape::bert_large(),
            seq: 512,
            micro_batch: 32,
            num_micro_batches: 1,
            parallelism: Parallelism::new(1, 4),
            cluster: ClusterSpec::p3_8xlarge(),
            gpu: v100_finetune(),
            plan: CompressionPlan::none(),
            cost: CostModel::v100(),
        };
        let b = simulate_iteration(&setup);
        assert!(
            (b.total_ms - 591.96).abs() / 591.96 < 0.10,
            "TP=1 PP=4 baseline {} vs paper 591.96",
            b.total_ms
        );
    }
}
