//! Calibrated compute profiles, with provenance.
//!
//! The simulator predicts iteration times from first principles (FLOPs,
//! bytes, schedules), but the *achieved* FLOP rate of a V100 differs
//! between the paper's two regimes, so each gets its own profile:
//!
//! - **Fine-tuning** (b=32, s=512, classification head): the paper's
//!   `TP=1, PP=4` baseline runs 24 layers × `96Bsh² + 16Bs²h` = 4.29e13
//!   FLOPs in 592 ms (Table 2) → 1.38e-14 s/FLOP (~72 TFLOP/s achieved).
//!   Backward/forward compute ratio 1.62 from Table 4 after subtracting
//!   the measured communication (`(354−151)/(276−151)`).
//!
//! - **Pre-training** (b=128, s=128, MLM + NSP heads): Table 7's forward
//!   time implies ~3× more wall time per layer-FLOP, because the per-layer
//!   formula excludes the embedding and MLM-head work (a `h × 30522`
//!   projection) and the shorter sequences utilize the GPU worse →
//!   3.35e-14 s/FLOP, backward/forward 0.87 (Table 7: 419/467 after
//!   communication).
//!
//! Optimizer rates come from dividing the measured optimizer column by the
//! per-GPU parameter count.

use crate::hardware::{GpuSpec, LinkSpec};

/// Effective per-round link latency implied by a measured tiny-payload
/// all-reduce.
///
/// A ring all-reduce over `p` ranks pays `2(p−1)` latency-bound rounds;
/// when the payload is small enough that the bandwidth term vanishes,
/// the measured per-op time *is* the per-message constant times the
/// round count. Mapping the measurement back through the model's round
/// count folds every real-world overhead a loopback socket hop carries
/// (syscalls, frame headers, token-bucket pacing, scheduler wakeups)
/// into an effective α the analytic prediction can reuse — replacing
/// the hand-guessed `LOOPBACK_LATENCY_S` constant the transport
/// cross-check originally shipped with (BENCH_net rel_error 0.32–0.54).
///
/// Returns zero for `p <= 1`, where no rounds occur.
pub fn round_latency_from_allreduce(p: usize, measured_s: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    measured_s / (2.0 * (p as f64 - 1.0))
}

/// A copy of `link` with its latency replaced by a measured per-round
/// constant (see [`round_latency_from_allreduce`]).
pub fn calibrate_link_latency(link: &LinkSpec, measured_round_latency_s: f64) -> LinkSpec {
    LinkSpec {
        latency: measured_round_latency_s,
        ..*link
    }
}

/// Host-side effective bandwidth implied by an *unthrottled* loopback
/// all-reduce of `payload_bytes`.
///
/// On loopback there is no wire: the whole per-byte cost is the socket
/// stack (syscalls, kernel copies, framing) time-shared across the rank
/// threads. Subtracting the α term leaves the byte-proportional part;
/// dividing the ring model's moved bytes (`2(p−1)/p · payload`) by it
/// gives a bandwidth the analytic model can treat like any other link
/// rate. Returns `INFINITY` when the measurement is latency-dominated
/// (nothing byte-proportional to calibrate) or `p <= 1`.
pub fn host_bandwidth_from_allreduce(
    p: usize,
    payload_bytes: f64,
    measured_s: f64,
    round_latency_s: f64,
) -> f64 {
    if p <= 1 {
        return f64::INFINITY;
    }
    let byte_time = measured_s - 2.0 * (p as f64 - 1.0) * round_latency_s;
    if byte_time <= 0.0 {
        return f64::INFINITY;
    }
    2.0 * (p as f64 - 1.0) / p as f64 * payload_bytes / byte_time
}

/// Calibrated loopback link: measured per-round latency, and bandwidth
/// capped by the measured host copy rate.
///
/// A token-bucket throttle paces sends with sleeps, during which the
/// other rank threads keep copying — the two byte costs overlap rather
/// than add, so the slower of the nominal cap and the host rate governs
/// (min of bandwidths = max of times).
pub fn calibrate_loopback_link(
    link: &LinkSpec,
    round_latency_s: f64,
    host_bandwidth: f64,
) -> LinkSpec {
    LinkSpec {
        latency: round_latency_s,
        pair_bandwidth: link.pair_bandwidth.min(host_bandwidth),
        ..*link
    }
}

/// V100 profile for the fine-tuning regime (b=32, s=512).
pub fn v100_finetune() -> GpuSpec {
    GpuSpec {
        sec_per_flop: 1.38e-14,
        bwd_over_fwd: 1.62,
        // Table 4: 5.8 ms for 345M/4 params ≈ 6.7e-11 s/param.
        sec_per_param_update: 6.7e-11,
    }
}

/// V100 profile for the pre-training regime (b=128, s=128, MLM head).
pub fn v100_pretrain() -> GpuSpec {
    GpuSpec {
        sec_per_flop: 3.35e-14,
        bwd_over_fwd: 0.87,
        // Table 7: 7.4 ms for 345M/16 params ≈ 3.4e-10 s/param.
        sec_per_param_update: 3.4e-10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_latency_inverts_the_allreduce_alpha_term() {
        // With a negligible payload, allreduce_time(link, p, ~0) is pure
        // latency · 2(p−1); the calibration must recover that latency.
        let base = crate::hardware::LinkSpec {
            kind: crate::hardware::LinkKind::Ethernet,
            pair_bandwidth: 125e6,
            latency: 50e-6,
            scales_with_peers: false,
            compressed_collective_overhead: 0.0,
        };
        for p in [2usize, 4, 8] {
            let measured = crate::collective::allreduce_time(&base, p, 0);
            let alpha = round_latency_from_allreduce(p, measured);
            assert!((alpha - base.latency).abs() < 1e-12, "p={p}: {alpha}");
            let cal = calibrate_link_latency(&base, alpha);
            assert_eq!(cal.pair_bandwidth, base.pair_bandwidth);
            assert!((cal.latency - base.latency).abs() < 1e-12);
        }
        assert_eq!(round_latency_from_allreduce(1, 1.0), 0.0);
    }

    #[test]
    fn host_bandwidth_inverts_the_allreduce_beta_term() {
        let base = crate::hardware::LinkSpec {
            kind: crate::hardware::LinkKind::Ethernet,
            pair_bandwidth: 2e9,
            latency: 10e-6,
            scales_with_peers: false,
            compressed_collective_overhead: 0.0,
        };
        let (p, payload) = (4usize, 1e6);
        let measured = crate::collective::allreduce_time(&base, p, payload as usize);
        let bw = host_bandwidth_from_allreduce(p, payload, measured, base.latency);
        assert!(
            (bw - base.pair_bandwidth).abs() / base.pair_bandwidth < 1e-9,
            "{bw}"
        );
        // Latency-dominated measurements have nothing to calibrate.
        assert_eq!(
            host_bandwidth_from_allreduce(p, payload, 1e-6, base.latency),
            f64::INFINITY
        );
        // The calibrated link takes the slower of cap and host rate.
        let cal = calibrate_loopback_link(&base, 20e-6, 1e9);
        assert_eq!(cal.pair_bandwidth, 1e9);
        assert_eq!(cal.latency, 20e-6);
        let cal2 = calibrate_loopback_link(&base, 20e-6, 5e9);
        assert_eq!(cal2.pair_bandwidth, base.pair_bandwidth);
    }

    #[test]
    fn profiles_are_plausible_v100_rates() {
        // Achieved rates must sit below the 125 TFLOP/s fp16 peak.
        for p in [v100_finetune(), v100_pretrain()] {
            let tflops = 1.0 / p.sec_per_flop / 1e12;
            assert!(tflops > 5.0 && tflops < 125.0, "{tflops} TFLOP/s");
        }
    }

    #[test]
    fn finetune_baseline_iteration_time() {
        // TP=1, PP=4 fine-tuning baseline: paper measures 591.96 ms.
        use crate::iteration::{simulate_iteration, TrainSetup};
        use crate::plan::CompressionPlan;
        use crate::topology::Parallelism;
        use crate::workload::ModelShape;
        use crate::ClusterSpec;
        use actcomp_compress::cost::CostModel;

        let setup = TrainSetup {
            model: ModelShape::bert_large(),
            seq: 512,
            micro_batch: 32,
            num_micro_batches: 1,
            parallelism: Parallelism::new(1, 4),
            cluster: ClusterSpec::p3_8xlarge(),
            gpu: v100_finetune(),
            plan: CompressionPlan::none(),
            cost: CostModel::v100(),
        };
        let b = simulate_iteration(&setup);
        assert!(
            (b.total_ms - 591.96).abs() / 591.96 < 0.10,
            "TP=1 PP=4 baseline {} vs paper 591.96",
            b.total_ms
        );
    }
}
