//! # actcomp-distsim
//!
//! A simulated GPU cluster for the throughput side of the `actcomp`
//! reproduction of *"Does Compressing Activations Help Model Parallel
//! Training?"* (MLSys 2024).
//!
//! The paper measures BERT-Large iteration times on 4–16 V100s across
//! NVLink, PCIe and 10 Gbps fabrics. This crate substitutes that hardware
//! with calibrated analytical models composed by an exact pipeline-schedule
//! simulation:
//!
//! - [`hardware`]: GPU and link specs with effective (measured-equivalent)
//!   rates; presets for the paper's two machines and its 4-node cluster,
//! - [`topology`]: placing `(TP, PP)` onto nodes, per-boundary links,
//! - [`collective`]: ring all-reduce / all-gather / p2p cost models,
//! - [`pipeline`]: dependency-exact GPipe schedule simulation,
//! - [`iteration`]: the full per-iteration breakdown (forward / backward /
//!   optimizer / waiting / tensor enc / dec / comm) that regenerates the
//!   paper's Tables 2–4, 6, 7, 9 and 11–14,
//! - [`calibration`]: compute profiles with documented provenance.
//!
//! # Example
//!
//! ```
//! use actcomp_distsim::{
//!     calibration, iteration::{simulate_iteration, TrainSetup},
//!     plan::CompressionPlan, topology::Parallelism, workload::ModelShape,
//!     ClusterSpec,
//! };
//! use actcomp_compress::{cost::CostModel, spec::CompressorSpec};
//!
//! let setup = TrainSetup {
//!     model: ModelShape::bert_large(),
//!     seq: 512,
//!     micro_batch: 32,
//!     num_micro_batches: 1,
//!     parallelism: Parallelism::new(2, 2),
//!     cluster: ClusterSpec::local_no_nvlink(),
//!     gpu: calibration::v100_finetune(),
//!     plan: CompressionPlan::last_layers(CompressorSpec::A1, 24, 12),
//!     cost: CostModel::v100(),
//! };
//! let breakdown = simulate_iteration(&setup);
//! assert!(breakdown.total_ms > 0.0);
//! ```

#![warn(missing_docs)]

pub mod calibration;
pub mod collective;
pub mod dp;
pub mod hardware;
pub mod iteration;
pub mod memory;
pub mod pipeline;
pub mod plan;
pub mod schedule;
pub mod sweep;
pub mod topology;
pub mod workload;

pub use hardware::{ClusterSpec, GpuSpec, LinkKind, LinkSpec, MachineSpec};
pub use iteration::{simulate_iteration, IterationBreakdown, TrainSetup};
pub use pipeline::{simulate_gpipe, PipelineResult};
pub use plan::CompressionPlan;
pub use schedule::simulate_1f1b;
pub use sweep::{par_grid, par_map};
pub use topology::{Parallelism, TopologyError};
