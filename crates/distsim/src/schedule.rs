//! General pipeline-schedule simulation via dependency graphs, including
//! Megatron's 1F1B (PipeDream-flush) schedule.
//!
//! [`crate::pipeline::simulate_gpipe`] computes the GPipe flush schedule
//! with closed-form dynamic programming. This module generalizes: a
//! schedule is a per-stage *order* of forward/backward micro-batch
//! operations; makespan is the longest path through the DAG of
//! (intra-stage sequencing) ∪ (inter-stage activation/gradient transfer)
//! edges. That lets us simulate 1F1B — which Megatron-LM actually runs —
//! and verify the textbook result that its *makespan* equals GPipe's
//! (the schedules differ in peak memory, which a time simulator doesn't
//! see).

use crate::pipeline::{BoundaryTiming, PipelineResult, StageTiming};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One pipeline operation: the forward or backward of one micro-batch on
/// one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Op {
    /// Micro-batch index.
    pub mb: usize,
    /// Pipeline stage.
    pub stage: usize,
    /// Backward (true) or forward (false).
    pub backward: bool,
}

/// Builds each stage's 1F1B operation order: `min(p − s, m)` warmup
/// forwards, then alternating backward/forward in steady state, then the
/// backward drain.
pub fn one_f_one_b_order(p: usize, m: usize, stage: usize) -> Vec<Op> {
    let warmup = (p - stage).min(m);
    let mut ops = Vec::with_capacity(2 * m);
    for mb in 0..warmup {
        ops.push(Op {
            mb,
            stage,
            backward: false,
        });
    }
    let mut next_fwd = warmup;
    let mut next_bwd = 0;
    while next_bwd < m {
        ops.push(Op {
            mb: next_bwd,
            stage,
            backward: true,
        });
        next_bwd += 1;
        if next_fwd < m {
            ops.push(Op {
                mb: next_fwd,
                stage,
                backward: false,
            });
            next_fwd += 1;
        }
    }
    ops
}

/// Builds each stage's GPipe (fill/drain) operation order: all `m`
/// forwards in micro-batch order, then all `m` backwards in reverse.
///
/// The reverse backward order makes the schedule LIFO per stage, which is
/// what lets executors keep activation caches as plain stacks — both the
/// `actcomp-check` schedule pass and the threaded `actcomp-runtime`
/// engine consume this order.
pub fn gpipe_order(_p: usize, m: usize, stage: usize) -> Vec<Op> {
    let mut ops = Vec::with_capacity(2 * m);
    for mb in 0..m {
        ops.push(Op {
            mb,
            stage,
            backward: false,
        });
    }
    for mb in (0..m).rev() {
        ops.push(Op {
            mb,
            stage,
            backward: true,
        });
    }
    ops
}

/// Simulates an arbitrary per-stage operation order, returning the same
/// result shape as the GPipe simulator.
///
/// # Panics
///
/// Panics on malformed input (wrong boundary count, stages missing ops,
/// or a cyclic schedule).
pub fn simulate_schedule(
    stages: &[StageTiming],
    boundaries: &[BoundaryTiming],
    orders: &[Vec<Op>],
    m: usize,
) -> PipelineResult {
    let p = stages.len();
    assert!(p > 0 && m > 0, "empty pipeline");
    assert_eq!(boundaries.len() + 1, p, "boundary count mismatch");
    assert_eq!(orders.len(), p, "one order per stage required");
    for (s, order) in orders.iter().enumerate() {
        assert_eq!(order.len(), 2 * m, "stage {s} must run 2m ops");
    }

    // Longest-path over the DAG via iterative relaxation (op count is
    // small: 2·m·p). finish[op] = start + duration.
    let mut finish: HashMap<Op, f64> = HashMap::new();
    let duration = |op: &Op| {
        if op.backward {
            stages[op.stage].bwd_s
        } else {
            stages[op.stage].fwd_s
        }
    };

    let mut changed = true;
    let mut rounds = 0;
    while changed {
        changed = false;
        rounds += 1;
        assert!(rounds <= 2 * m * p + 2, "cyclic schedule");
        for order in orders {
            let mut prev_finish = 0.0f64;
            for op in order {
                // Cross-stage dependency.
                let dep = if op.backward {
                    (op.stage + 1 < p).then(|| {
                        let up = Op {
                            mb: op.mb,
                            stage: op.stage + 1,
                            backward: true,
                        };
                        finish.get(&up).copied().unwrap_or(f64::INFINITY)
                            + boundaries[op.stage].bwd_s
                    })
                } else {
                    (op.stage > 0).then(|| {
                        let up = Op {
                            mb: op.mb,
                            stage: op.stage - 1,
                            backward: false,
                        };
                        finish.get(&up).copied().unwrap_or(f64::INFINITY)
                            + boundaries[op.stage - 1].fwd_s
                    })
                };
                let start = prev_finish.max(dep.unwrap_or(0.0));
                let f = start + duration(op);
                if f.is_finite() {
                    let entry = finish.entry(*op).or_insert(f64::INFINITY);
                    if (*entry - f).abs() > 1e-12 {
                        *entry = f;
                        changed = true;
                    }
                    prev_finish = f;
                } else {
                    // Dependency not resolved yet this round.
                    prev_finish = f64::INFINITY;
                    changed = true;
                }
            }
        }
    }

    let makespan = finish.values().copied().fold(0.0f64, f64::max);
    assert!(makespan.is_finite(), "schedule did not resolve");
    let busy: Vec<f64> = stages
        .iter()
        .map(|st| m as f64 * (st.fwd_s + st.bwd_s))
        .collect();
    let idle = busy.iter().map(|b| makespan - b).collect();
    let boundary_total = boundaries
        .iter()
        .map(|b| m as f64 * (b.fwd_s + b.bwd_s))
        .collect();
    PipelineResult {
        makespan_s: makespan,
        busy_s: busy,
        idle_s: idle,
        boundary_total_s: boundary_total,
    }
}

/// Simulates the 1F1B (PipeDream-flush) schedule Megatron-LM uses.
pub fn simulate_1f1b(
    stages: &[StageTiming],
    boundaries: &[BoundaryTiming],
    m: usize,
) -> PipelineResult {
    let orders: Vec<Vec<Op>> = (0..stages.len())
        .map(|s| one_f_one_b_order(stages.len(), m, s))
        .collect();
    simulate_schedule(stages, boundaries, &orders, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::simulate_gpipe;

    fn uniform(p: usize, fwd: f64, bwd: f64, comm: f64) -> (Vec<StageTiming>, Vec<BoundaryTiming>) {
        (
            vec![
                StageTiming {
                    fwd_s: fwd,
                    bwd_s: bwd
                };
                p
            ],
            vec![
                BoundaryTiming {
                    fwd_s: comm,
                    bwd_s: comm
                };
                p - 1
            ],
        )
    }

    #[test]
    fn order_structure_is_1f1b() {
        let order = one_f_one_b_order(4, 8, 0);
        assert_eq!(order.len(), 16);
        // Stage 0 warms up with p = 4 forwards.
        assert!(order[..4].iter().all(|o| !o.backward));
        // Then strictly alternates B, F.
        assert!(order[4].backward && !order[5].backward);
        // Last stage warms up with exactly 1 forward.
        let last = one_f_one_b_order(4, 8, 3);
        assert!(!last[0].backward && last[1].backward);
    }

    #[test]
    fn gpipe_order_is_fill_then_drain() {
        let order = gpipe_order(4, 3, 1);
        assert_eq!(order.len(), 6);
        let mbs: Vec<(usize, bool)> = order.iter().map(|o| (o.mb, o.backward)).collect();
        assert_eq!(
            mbs,
            vec![
                (0, false),
                (1, false),
                (2, false),
                (2, true),
                (1, true),
                (0, true)
            ]
        );
        assert!(order.iter().all(|o| o.stage == 1));
    }

    #[test]
    fn gpipe_order_makespan_matches_closed_form_gpipe() {
        for (p, m) in [(2usize, 4usize), (4, 8), (3, 5)] {
            let (s, b) = uniform(p, 1.0, 2.0, 0.0);
            let orders: Vec<Vec<Op>> = (0..p).map(|st| gpipe_order(p, m, st)).collect();
            let sim = simulate_schedule(&s, &b, &orders, m).makespan_s;
            let closed = simulate_gpipe(&s, &b, m).makespan_s;
            assert!(
                (sim - closed).abs() < 1e-9,
                "p={p} m={m}: schedule {sim} vs closed-form {closed}"
            );
        }
    }

    #[test]
    fn matches_gpipe_makespan_on_uniform_stages() {
        // The classic result: same bubble, same makespan — only memory
        // differs (which a timing simulator doesn't observe).
        for (p, m) in [(2usize, 4usize), (4, 8), (4, 16)] {
            let (s, b) = uniform(p, 1.0, 2.0, 0.0);
            let g = simulate_gpipe(&s, &b, m).makespan_s;
            let f = simulate_1f1b(&s, &b, m).makespan_s;
            assert!((g - f).abs() < 1e-9, "p={p} m={m}: gpipe {g} vs 1f1b {f}");
        }
    }

    #[test]
    fn single_stage_is_serial() {
        let (s, b) = uniform(1, 1.0, 2.0, 0.0);
        let r = simulate_1f1b(&s, &b, 4);
        assert!((r.makespan_s - 12.0).abs() < 1e-9);
    }

    #[test]
    fn respects_boundary_delays() {
        let (s, b_fast) = uniform(4, 1.0, 1.0, 0.0);
        let (_, b_slow) = uniform(4, 1.0, 1.0, 0.5);
        let fast = simulate_1f1b(&s, &b_fast, 8).makespan_s;
        let slow = simulate_1f1b(&s, &b_slow, 8).makespan_s;
        assert!(slow > fast + 1.0);
    }

    #[test]
    fn nonuniform_stages_bound_by_straggler() {
        let mut stages = vec![
            StageTiming {
                fwd_s: 1.0,
                bwd_s: 1.0
            };
            4
        ];
        stages[1] = StageTiming {
            fwd_s: 3.0,
            bwd_s: 3.0,
        };
        let b = vec![
            BoundaryTiming {
                fwd_s: 0.0,
                bwd_s: 0.0
            };
            3
        ];
        let m = 8;
        let r = simulate_1f1b(&stages, &b, m);
        assert!(r.makespan_s >= m as f64 * 6.0);
    }

    #[test]
    #[should_panic(expected = "one order per stage")]
    fn validates_orders() {
        let (s, b) = uniform(2, 1.0, 1.0, 0.0);
        simulate_schedule(&s, &b, &[], 2);
    }
}
