//! Data-parallel cost model — the contrast case of the paper's §2.1.
//!
//! In data parallelism each worker holds the full model and synchronizes
//! *gradients* once per iteration; in model parallelism workers exchange
//! *activations* many times per iteration. This module models the DP side
//! so the repository can exhibit the paper's framing quantitatively:
//! gradient synchronization is batch-size-independent and amortizes with
//! larger batches, while MP's activation traffic grows with the batch —
//! which is why the two regimes favour different compressors.

use crate::collective::allreduce_time;
use crate::hardware::{GpuSpec, LinkSpec};
use crate::workload::{layer_flops, ModelShape};
use serde::{Deserialize, Serialize};

/// Breakdown of one data-parallel iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpBreakdown {
    /// Per-worker compute time (forward + backward on the local shard of
    /// the batch).
    pub compute_ms: f64,
    /// Gradient all-reduce time.
    pub grad_sync_ms: f64,
    /// Total iteration time (no overlap modelled).
    pub total_ms: f64,
}

impl DpBreakdown {
    /// Fraction of the iteration spent synchronizing gradients.
    pub fn sync_fraction(&self) -> f64 {
        self.grad_sync_ms / self.total_ms
    }
}

/// Simulates one data-parallel iteration of `model` over `workers`
/// replicas, each computing `per_worker_batch` sequences of length `seq`,
/// with gradients compressed by `grad_compression` (1.0 = none; PowerSGD
/// rank-r style ratios are ~50–200×, which Figure 2 justifies for
/// gradients and forbids for activations).
///
/// # Panics
///
/// Panics if `workers == 0` or `grad_compression < 1`.
pub fn simulate_dp_iteration(
    model: &ModelShape,
    gpu: &GpuSpec,
    link: &LinkSpec,
    workers: usize,
    per_worker_batch: usize,
    seq: usize,
    grad_compression: f64,
) -> DpBreakdown {
    assert!(workers > 0, "need at least one worker");
    assert!(grad_compression >= 1.0, "compression ratio must be >= 1");
    let flops = model.layers as f64 * layer_flops(per_worker_batch, seq, model.hidden);
    let compute_s = flops * gpu.sec_per_flop;
    // Gradients are fp16 on the wire, one per parameter.
    let grad_bytes = (model.num_params() * 2) as f64 / grad_compression;
    let sync_s = allreduce_time(link, workers, grad_bytes as usize);
    DpBreakdown {
        compute_ms: compute_s * 1e3,
        grad_sync_ms: sync_s * 1e3,
        total_ms: (compute_s + sync_s) * 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration;

    fn base(batch: usize, ratio: f64) -> DpBreakdown {
        simulate_dp_iteration(
            &ModelShape::bert_large(),
            &calibration::v100_finetune(),
            &LinkSpec::pcie_shared(),
            4,
            batch,
            128,
            ratio,
        )
    }

    #[test]
    fn gradient_sync_is_batch_independent() {
        let small = base(4, 1.0);
        let large = base(32, 1.0);
        assert!((small.grad_sync_ms - large.grad_sync_ms).abs() < 1e-9);
        assert!(large.compute_ms > small.compute_ms);
    }

    #[test]
    fn sync_dominates_at_small_batch() {
        // The classic DP bottleneck: 345M fp16 gradients vs little compute.
        let b = base(2, 1.0);
        assert!(
            b.sync_fraction() > 0.4,
            "sync fraction {} too small",
            b.sync_fraction()
        );
    }

    #[test]
    fn gradient_compression_pays_off_in_dp() {
        // The contrast with the paper's MP findings: a 100x low-rank
        // gradient compressor (justified by Figure 2) nearly removes the
        // sync cost.
        let plain = base(4, 1.0);
        let compressed = base(4, 100.0);
        assert!(compressed.total_ms < plain.total_ms * 0.75);
        assert!(compressed.grad_sync_ms < plain.grad_sync_ms / 50.0);
    }

    #[test]
    fn larger_batches_amortize_sync() {
        let small = base(2, 1.0);
        let large = base(128, 1.0);
        assert!(
            large.sync_fraction() < small.sync_fraction() / 4.0,
            "{} vs {}",
            large.sync_fraction(),
            small.sync_fraction()
        );
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn rejects_expansion() {
        base(4, 0.5);
    }
}
