//! Per-GPU activation-memory model.
//!
//! Iteration *time* is what the paper tabulates, but the schedules and
//! compression choices it studies also move activation *memory* — the
//! resource that forces model parallelism in the first place (§2.1: "the
//! worker may not have enough memory"). This module models the per-GPU
//! activation footprint so the repository can quantify that second axis:
//! GPipe's flush holds all `m` micro-batches' stage activations at once,
//! 1F1B holds at most `p − s` per stage, and compressing the stashed
//! boundary activations shrinks both.

use crate::plan::CompressionPlan;
use crate::topology::{layers_per_stage, stage_layer_offsets, Parallelism};
use crate::workload::ModelShape;
use serde::{Deserialize, Serialize};

/// Which pipeline schedule's stash discipline to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Schedule {
    /// All-forward-then-all-backward: every stage stashes all `m`
    /// micro-batches until the flush.
    GPipe,
    /// One-forward-one-backward: stage `s` stashes at most
    /// `min(p − s, m)` micro-batches (its warmup depth).
    OneFOneB,
}

/// Per-GPU activation memory of one stage, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageMemory {
    /// Stage index.
    pub stage: usize,
    /// Micro-batches stashed simultaneously under the schedule.
    pub stashed_microbatches: usize,
    /// Bytes of stashed layer activations (fp16).
    pub activation_bytes: usize,
}

/// Activation memory per stage for a training configuration.
///
/// Each layer's backward needs its input activation (`b·s·h` elements,
/// fp16) per stashed micro-batch; tensor parallelism divides the
/// per-layer stash across the TP group (each rank keeps its shard of the
/// attention/MLP internals, modelled as `1/tp` of the layer stash, plus
/// the full layer-boundary activation). Compressed layers stash the
/// *compressed* boundary activation — recomputing the decompression on
/// the backward pass — which is the memory upside the paper leaves to
/// future work.
pub fn activation_memory(
    model: &ModelShape,
    par: Parallelism,
    micro_batch: usize,
    seq: usize,
    num_micro_batches: usize,
    schedule: Schedule,
    plan: &CompressionPlan,
) -> Vec<StageMemory> {
    let per_stage = layers_per_stage(model.layers, par.pp);
    let offsets = stage_layer_offsets(model.layers, par.pp);
    let boundary_elems = micro_batch * seq * model.hidden;

    (0..par.pp)
        .map(|s| {
            let stashed = match schedule {
                Schedule::GPipe => num_micro_batches,
                Schedule::OneFOneB => (par.pp - s).min(num_micro_batches),
            };
            let mut per_mb_bytes = 0usize;
            for l in offsets[s]..offsets[s] + per_stage[s] {
                // Layer-internal stash (Q/K/V, MLP hidden, softmax probs):
                // ≈ 8·b·s·h elements, sharded across the TP group.
                let internal = 8 * boundary_elems / par.tp;
                // Layer-boundary activation, replicated across TP ranks;
                // compressed layers keep the compressed form instead.
                let boundary = if plan.covers(l) {
                    plan.spec.wire_bytes(boundary_elems, model.hidden) / 2
                } else {
                    boundary_elems
                };
                per_mb_bytes += (internal + boundary) * 2; // fp16
            }
            StageMemory {
                stage: s,
                stashed_microbatches: stashed,
                activation_bytes: stashed * per_mb_bytes,
            }
        })
        .collect()
}

/// The peak per-GPU activation memory across stages, in bytes.
pub fn peak_activation_bytes(stages: &[StageMemory]) -> usize {
    stages.iter().map(|s| s.activation_bytes).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_compress::spec::CompressorSpec;

    fn base(
        schedule: Schedule,
        plan: &CompressionPlan,
        tp: usize,
        pp: usize,
        m: usize,
    ) -> Vec<StageMemory> {
        activation_memory(
            &ModelShape::bert_large(),
            Parallelism::new(tp, pp),
            128,
            128,
            m,
            schedule,
            plan,
        )
    }

    #[test]
    fn gpipe_stashes_all_microbatches() {
        let stages = base(Schedule::GPipe, &CompressionPlan::none(), 4, 4, 8);
        assert!(stages.iter().all(|s| s.stashed_microbatches == 8));
    }

    #[test]
    fn one_f_one_b_stash_decreases_along_pipeline() {
        let stages = base(Schedule::OneFOneB, &CompressionPlan::none(), 4, 4, 8);
        let depths: Vec<usize> = stages.iter().map(|s| s.stashed_microbatches).collect();
        assert_eq!(depths, vec![4, 3, 2, 1]);
        // 1F1B's peak is below GPipe's.
        let gpipe = base(Schedule::GPipe, &CompressionPlan::none(), 4, 4, 8);
        assert!(peak_activation_bytes(&stages) < peak_activation_bytes(&gpipe));
    }

    #[test]
    fn tensor_parallelism_divides_internal_stash() {
        let tp1 = base(Schedule::GPipe, &CompressionPlan::none(), 1, 4, 8);
        let tp4 = base(Schedule::GPipe, &CompressionPlan::none(), 4, 4, 8);
        let r = tp1[0].activation_bytes as f64 / tp4[0].activation_bytes as f64;
        assert!(r > 2.5 && r < 4.0, "TP=4 should cut ~the sharded part: {r}");
    }

    #[test]
    fn compression_shrinks_compressed_stages_only() {
        let plan = CompressionPlan::last_layers(CompressorSpec::A1, 24, 12);
        let plain = base(Schedule::GPipe, &CompressionPlan::none(), 4, 4, 8);
        let comp = base(Schedule::GPipe, &plan, 4, 4, 8);
        // Stages 0–1 (layers 0..12) unchanged; stages 2–3 smaller.
        assert_eq!(plain[0].activation_bytes, comp[0].activation_bytes);
        assert_eq!(plain[1].activation_bytes, comp[1].activation_bytes);
        assert!(comp[2].activation_bytes < plain[2].activation_bytes);
        assert!(comp[3].activation_bytes < plain[3].activation_bytes);
    }

    #[test]
    fn bert_large_scale_is_plausible() {
        // GPipe, TP=4/PP=4, mb=128, s=128, m=8: activation stash should be
        // in the single-digit GB per GPU — the regime that motivates
        // model parallelism on 16 GB V100s.
        let stages = base(Schedule::GPipe, &CompressionPlan::none(), 4, 4, 8);
        let peak = peak_activation_bytes(&stages) as f64 / 1e9;
        assert!((1.0..16.0).contains(&peak), "peak {peak} GB");
    }

    #[test]
    fn microbatch_count_caps_1f1b_stash() {
        let stages = base(Schedule::OneFOneB, &CompressionPlan::none(), 4, 4, 2);
        assert!(stages.iter().all(|s| s.stashed_microbatches <= 2));
    }
}
