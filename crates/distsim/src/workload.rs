//! Model shapes and FLOP accounting.

use serde::{Deserialize, Serialize};

/// Architectural shape of the Transformer being trained (compute/comm
/// geometry only — the real numerics live in `actcomp-nn`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelShape {
    /// Number of Transformer layers.
    pub layers: usize,
    /// Hidden width `h`.
    pub hidden: usize,
    /// Vocabulary size (embedding + MLM head geometry).
    pub vocab: usize,
    /// Maximum sequence length (position table).
    pub max_seq: usize,
}

impl ModelShape {
    /// BERT-Large: 24 layers, `h = 1024` (the paper's §4.1 model).
    pub fn bert_large() -> Self {
        ModelShape {
            layers: 24,
            hidden: 1024,
            vocab: 30_522,
            max_seq: 512,
        }
    }

    /// Total parameter count (≈345 M for BERT-Large).
    pub fn num_params(&self) -> usize {
        // 12 h² weights + ~13 h biases/norms per layer, plus embeddings.
        self.layers * (12 * self.hidden * self.hidden + 13 * self.hidden)
            + (self.vocab + self.max_seq) * self.hidden
    }
}

/// Forward+backward FLOPs of one Transformer layer for a `b`-sequence
/// micro-batch of length `s` at hidden width `h`:
/// `96·b·s·h² + 16·b·s²·h` (the paper's §4.7 formula, after
/// Narayanan et al. 2021).
pub fn layer_flops(b: usize, s: usize, h: usize) -> f64 {
    let (b, s, h) = (b as f64, s as f64, h as f64);
    96.0 * b * s * h * h + 16.0 * b * s * s * h
}

/// Elements in the activation tensor each tensor-parallel all-reduce moves:
/// `b·s·h` (paper §4.7).
pub fn activation_elems(b: usize, s: usize, h: usize) -> usize {
    b * s * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_large_is_345m() {
        let p = ModelShape::bert_large().num_params();
        assert!(
            (300_000_000..400_000_000).contains(&p),
            "BERT-Large params {p}"
        );
    }

    #[test]
    fn flops_match_paper_arithmetic() {
        // b=32, s=512, h=1024 → 96·b·s·h² = 1.649e12.
        let f = layer_flops(32, 512, 1024);
        assert!((f - 1.787e12).abs() / 1.787e12 < 0.01, "flops {f:.3e}");
    }

    #[test]
    fn quadratic_term_grows_with_seq() {
        // Doubling s more than doubles FLOPs (attention's s² term).
        let f1 = layer_flops(32, 512, 1024);
        let f2 = layer_flops(32, 1024, 1024);
        assert!(f2 / f1 > 2.0);
        assert!(f2 / f1 < 2.2);
    }

    #[test]
    fn activation_size() {
        assert_eq!(activation_elems(32, 512, 1024), 16_777_216);
    }
}
