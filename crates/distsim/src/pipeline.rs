//! Pipeline-schedule simulation (GPipe-style flush schedule).
//!
//! Given per-stage forward/backward times and per-boundary transfer times,
//! the simulator computes the exact start/finish time of every
//! (micro-batch, stage) cell by dependency-respecting dynamic programming,
//! yielding the iteration makespan, per-stage busy/idle split, and
//! per-boundary communication totals — the quantities behind the paper's
//! "Waiting & Pipeline Comm." column and Table 9.

use serde::{Deserialize, Serialize};

/// Per-micro-batch timing of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Forward time of one micro-batch through this stage (including its
    /// tensor-parallel communication and any encode/decode cost).
    pub fwd_s: f64,
    /// Backward time of one micro-batch.
    pub bwd_s: f64,
}

/// Per-micro-batch timing of one stage boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundaryTiming {
    /// Activation transfer time, stage `i → i+1`.
    pub fwd_s: f64,
    /// Activation-gradient transfer time, stage `i+1 → i`.
    pub bwd_s: f64,
}

/// Result of simulating one training iteration's pipeline schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineResult {
    /// Iteration makespan (first forward start to last backward finish).
    pub makespan_s: f64,
    /// Per-stage total busy time (forward + backward over all
    /// micro-batches).
    pub busy_s: Vec<f64>,
    /// Per-stage idle ("waiting") time: makespan − busy.
    pub idle_s: Vec<f64>,
    /// Per-boundary total transfer time over the iteration
    /// (`m · (fwd + bwd)` per boundary).
    pub boundary_total_s: Vec<f64>,
}

impl PipelineResult {
    /// Idle time of the busiest stage — a proxy for the paper's
    /// "Waiting & Pipeline Comm." attribution.
    pub fn min_idle_s(&self) -> f64 {
        self.idle_s.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Simulates a GPipe flush schedule: all `m` micro-batch forwards, then all
/// backwards, with stage-to-stage dependencies through the boundary
/// transfers.
///
/// # Panics
///
/// Panics if `stages` is empty, `m == 0`, or `boundaries.len() + 1 !=
/// stages.len()`.
pub fn simulate_gpipe(
    stages: &[StageTiming],
    boundaries: &[BoundaryTiming],
    m: usize,
) -> PipelineResult {
    let p = stages.len();
    assert!(p > 0, "pipeline needs at least one stage");
    assert!(m > 0, "pipeline needs at least one micro-batch");
    assert_eq!(
        boundaries.len() + 1,
        p,
        "{} boundaries for {p} stages",
        boundaries.len()
    );

    // Forward phase: fwd[i][s] = finish time of micro-batch i on stage s.
    let mut fwd = vec![vec![0.0f64; p]; m];
    for i in 0..m {
        for s in 0..p {
            let after_prev_stage = if s == 0 {
                0.0
            } else {
                fwd[i][s - 1] + boundaries[s - 1].fwd_s
            };
            let after_prev_mb = if i == 0 { 0.0 } else { fwd[i - 1][s] };
            fwd[i][s] = after_prev_stage.max(after_prev_mb) + stages[s].fwd_s;
        }
    }

    // Backward phase (flush: backward begins once the stage has finished
    // all its forwards; the last stage additionally waits for nothing else).
    let mut bwd = vec![vec![0.0f64; p]; m];
    let all_fwd_done: Vec<f64> = (0..p).map(|s| fwd[m - 1][s]).collect();
    for i in 0..m {
        for s in (0..p).rev() {
            let after_next_stage = if s == p - 1 {
                0.0
            } else {
                bwd[i][s + 1] + boundaries[s].bwd_s
            };
            let after_prev_mb = if i == 0 {
                all_fwd_done[s]
            } else {
                bwd[i - 1][s]
            };
            bwd[i][s] = after_next_stage.max(after_prev_mb) + stages[s].bwd_s;
        }
    }

    let makespan = bwd[m - 1][0].max((0..p).map(|s| bwd[m - 1][s]).fold(0.0f64, f64::max));
    let busy: Vec<f64> = stages
        .iter()
        .map(|st| m as f64 * (st.fwd_s + st.bwd_s))
        .collect();
    let idle: Vec<f64> = busy.iter().map(|b| makespan - b).collect();
    let boundary_total: Vec<f64> = boundaries
        .iter()
        .map(|b| m as f64 * (b.fwd_s + b.bwd_s))
        .collect();

    PipelineResult {
        makespan_s: makespan,
        busy_s: busy,
        idle_s: idle,
        boundary_total_s: boundary_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(p: usize, fwd: f64, bwd: f64, comm: f64) -> (Vec<StageTiming>, Vec<BoundaryTiming>) {
        (
            vec![
                StageTiming {
                    fwd_s: fwd,
                    bwd_s: bwd
                };
                p
            ],
            vec![
                BoundaryTiming {
                    fwd_s: comm,
                    bwd_s: comm
                };
                p - 1
            ],
        )
    }

    #[test]
    fn single_stage_single_microbatch() {
        let (s, b) = uniform(1, 2.0, 3.0, 0.0);
        let r = simulate_gpipe(&s, &b, 1);
        assert!((r.makespan_s - 5.0).abs() < 1e-12);
        assert!((r.idle_s[0]).abs() < 1e-12);
    }

    #[test]
    fn two_stages_one_microbatch_is_serial() {
        // m=1: stages execute strictly serially (the fine-tuning regime).
        let (s, b) = uniform(2, 1.0, 2.0, 0.5);
        let r = simulate_gpipe(&s, &b, 1);
        // fwd: 1 + 0.5 + 1 = 2.5 ; bwd: 2 + 0.5 + 2 = 4.5 → 7.0
        assert!((r.makespan_s - 7.0).abs() < 1e-12, "{}", r.makespan_s);
        // Each stage busy 3.0, idle 4.0.
        assert!((r.idle_s[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gpipe_bubble_formula_uniform_stages() {
        // Classic GPipe with zero comm: makespan = (m + p − 1)(tf + tb).
        let (s, b) = uniform(4, 1.0, 2.0, 0.0);
        let m = 8;
        let r = simulate_gpipe(&s, &b, m);
        let expected = (m + 4 - 1) as f64 * 3.0;
        assert!(
            (r.makespan_s - expected).abs() < 1e-9,
            "{} vs {expected}",
            r.makespan_s
        );
    }

    #[test]
    fn more_microbatches_amortize_the_bubble() {
        let (s, b) = uniform(4, 1.0, 2.0, 0.0);
        let t8 = simulate_gpipe(&s, &b, 8).makespan_s / 8.0;
        let t32 = simulate_gpipe(&s, &b, 32).makespan_s / 32.0;
        assert!(t32 < t8, "per-micro-batch time should drop: {t32} vs {t8}");
    }

    #[test]
    fn slow_boundary_slows_iteration() {
        let (s, b_fast) = uniform(4, 1.0, 2.0, 0.01);
        let (_, b_slow) = uniform(4, 1.0, 2.0, 1.0);
        let fast = simulate_gpipe(&s, &b_fast, 8).makespan_s;
        let slow = simulate_gpipe(&s, &b_slow, 8).makespan_s;
        assert!(slow > fast);
    }

    #[test]
    fn straggler_stage_dominates() {
        let mut stages = vec![
            StageTiming {
                fwd_s: 1.0,
                bwd_s: 1.0
            };
            4
        ];
        stages[2] = StageTiming {
            fwd_s: 5.0,
            bwd_s: 5.0,
        };
        let b = vec![
            BoundaryTiming {
                fwd_s: 0.0,
                bwd_s: 0.0
            };
            3
        ];
        let m = 16;
        let r = simulate_gpipe(&stages, &b, m);
        // The slow stage's throughput bound: >= m * (tf + tb) of straggler.
        assert!(r.makespan_s >= m as f64 * 10.0);
        // And its idle time is the smallest.
        let min_idx = r
            .idle_s
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(min_idx, 2);
    }

    #[test]
    fn causality_forward_order_respected() {
        // Finish times strictly increase along stages for a given mb.
        let (s, b) = uniform(4, 1.0, 1.0, 0.1);
        let r = simulate_gpipe(&s, &b, 2);
        assert!(r.makespan_s > 0.0);
        // Busy + idle == makespan per stage.
        for st in 0..4 {
            assert!((r.busy_s[st] + r.idle_s[st] - r.makespan_s).abs() < 1e-9);
        }
    }

    #[test]
    fn boundary_totals_scale_with_microbatches() {
        let (s, b) = uniform(3, 1.0, 1.0, 0.25);
        let r = simulate_gpipe(&s, &b, 4);
        for bt in &r.boundary_total_s {
            assert!((bt - 4.0 * 0.5).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "boundaries")]
    fn boundary_count_checked() {
        let (s, _) = uniform(3, 1.0, 1.0, 0.0);
        simulate_gpipe(&s, &[], 1);
    }
}
