//! End-to-end iteration simulation: composes FLOP costs, collectives,
//! codec latencies, and the pipeline schedule into the per-iteration
//! breakdown the paper's Tables 2–4, 6, 7, 9 and 11–14 report.

use crate::collective::{allgather_time, allreduce_time, p2p_time};
use crate::hardware::{ClusterSpec, GpuSpec};
use crate::pipeline::{simulate_gpipe, BoundaryTiming, StageTiming};
use crate::plan::CompressionPlan;
use crate::topology::{stage_layer_offsets, Parallelism};
use crate::workload::{activation_elems, layer_flops, ModelShape};
use actcomp_compress::cost::CostModel;
use actcomp_compress::spec::Family;
use serde::{Deserialize, Serialize};

/// Complete description of one training configuration to simulate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainSetup {
    /// Architecture being trained.
    pub model: ModelShape,
    /// Sequence length.
    pub seq: usize,
    /// Micro-batch size (sequences per pipeline micro-batch).
    pub micro_batch: usize,
    /// Micro-batches per iteration (`global_batch / micro_batch`).
    pub num_micro_batches: usize,
    /// (TP, PP) degrees.
    pub parallelism: Parallelism,
    /// Cluster the job runs on.
    pub cluster: ClusterSpec,
    /// Per-GPU compute profile (see `calibration`).
    pub gpu: GpuSpec,
    /// Compression placement.
    pub plan: CompressionPlan,
    /// Codec latency model.
    pub cost: CostModel,
}

/// Simulated per-iteration time breakdown, all in milliseconds, using the
/// paper's attribution: encode/decode/communication of tensor parallelism
/// count as part of the forward step; the pipeline bubble and stage
/// transfers appear under "waiting & pipeline comm".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationBreakdown {
    /// Total iteration time.
    pub total_ms: f64,
    /// Forward time on the critical path (incl. tensor enc/dec/comm).
    pub forward_ms: f64,
    /// Backward time on the critical path.
    pub backward_ms: f64,
    /// Optimizer step.
    pub optimizer_ms: f64,
    /// Waiting (pipeline bubble) + pipeline communication.
    pub wait_pp_ms: f64,
    /// Tensor-parallel message encode time (within forward).
    pub tensor_enc_ms: f64,
    /// Tensor-parallel message decode time (within forward).
    pub tensor_dec_ms: f64,
    /// Tensor-parallel communication time (within forward).
    pub tensor_comm_ms: f64,
    /// Per-boundary transfer time per micro-batch, forward + backward
    /// (the paper's Table 9 rows).
    pub boundary_per_mb_ms: Vec<f64>,
}

impl IterationBreakdown {
    /// Fraction of the iteration spent in model-parallel communication
    /// (tensor comm + pipeline transfers) — the paper's Figure 1 metric.
    pub fn comm_fraction(&self) -> f64 {
        let pp: f64 = self.boundary_per_mb_ms.iter().sum();
        // boundary_per_mb is per micro-batch; wait_pp_ms already captures
        // the critical-path share, so use tensor comm + measured transfers.
        (self.tensor_comm_ms + pp).min(self.total_ms) / self.total_ms
    }
}

/// Per-stage aggregation used while assembling the breakdown.
#[derive(Debug, Clone, Copy, Default)]
struct StageCosts {
    fwd_s: f64,
    bwd_s: f64,
    enc_s: f64,
    dec_s: f64,
    comm_s: f64,
}

/// Simulates one training iteration.
///
/// # Panics
///
/// Panics if the parallelism does not fit the cluster or the model has
/// fewer layers than pipeline stages.
pub fn simulate_iteration(setup: &TrainSetup) -> IterationBreakdown {
    let par = setup.parallelism;
    let placement = setup.cluster.place(par);
    let offsets = stage_layer_offsets(setup.model.layers, par.pp);
    let per_stage = crate::topology::layers_per_stage(setup.model.layers, par.pp);

    let h = setup.model.hidden;
    let n = activation_elems(setup.micro_batch, setup.seq, h);
    let dense_bytes = n * 2; // fp16 on the wire
    let flops_total = layer_flops(setup.micro_batch, setup.seq, h) / par.tp as f64;
    let r = setup.gpu.bwd_over_fwd;
    let fwd_comp = flops_total / (1.0 + r) * setup.gpu.sec_per_flop;
    let bwd_comp = fwd_comp * r;

    let spec = setup.plan.spec;
    let codec = setup.cost.codec_cost(spec, n, h);
    let compressed_bytes = if setup.plan.is_active() {
        spec.wire_bytes(n, h)
    } else {
        dense_bytes
    };
    // Extra per-op synchronization overhead the compressed *all-reduce*
    // (auto-encoder) path pays on fused-collective fabrics: it replaces
    // NCCL's captured dense all-reduce in place. The all-gather path the
    // sparsifiers/quantizers take is a different collective to begin with
    // and does not hit the fast path either way (see `LinkSpec` docs).
    let sync_overhead = if spec.family() == Family::AutoEncoder {
        placement.tp_link.compressed_collective_overhead * par.tp as f64 / 2.0
    } else {
        0.0
    };

    let dense_ar = allreduce_time(&placement.tp_link, par.tp, dense_bytes);

    // Per-stage forward/backward times per micro-batch.
    let mut costs: Vec<StageCosts> = Vec::with_capacity(par.pp);
    for s in 0..par.pp {
        let mut c = StageCosts::default();
        for l in offsets[s]..offsets[s] + per_stage[s] {
            // Forward: compute + 2 tensor-parallel collectives.
            c.fwd_s += fwd_comp;
            // Backward: compute + 2 dense all-reduces (activation grads are
            // dense floats; §3.3).
            c.bwd_s += bwd_comp;
            if par.tp > 1 {
                c.bwd_s += 2.0 * dense_ar;
                if setup.plan.covers(l) {
                    let comm = if spec.family() == Family::AutoEncoder {
                        allreduce_time(&placement.tp_link, par.tp, compressed_bytes)
                    } else {
                        allgather_time(&placement.tp_link, par.tp, compressed_bytes)
                    };
                    // Non-summable compressors decode the (p−1) gathered
                    // peer messages; the AE decodes the reduced code once.
                    let dec = setup.cost.decode_gathered(spec, n, h, par.tp - 1);
                    c.enc_s += 2.0 * codec.encode_s;
                    c.dec_s += 2.0 * dec;
                    c.comm_s += 2.0 * comm;
                    c.fwd_s += 2.0 * (codec.encode_s + dec + comm + sync_overhead);
                    if spec.family() == Family::AutoEncoder {
                        // The AE's encoder/decoder matmuls also run in the
                        // backward pass (Table 4: A1/A2 raise backward time).
                        c.bwd_s += 2.0 * (codec.encode_s + codec.decode_s);
                    }
                } else {
                    c.comm_s += 2.0 * dense_ar;
                    c.fwd_s += 2.0 * dense_ar;
                }
            }
        }
        costs.push(c);
    }

    // Pipeline boundaries. Boundary i carries the activation feeding stage
    // i+1; it is compressed iff that stage's first layer is compressed.
    let mut boundaries = Vec::with_capacity(par.pp.saturating_sub(1));
    let mut boundary_per_mb_ms = Vec::with_capacity(par.pp.saturating_sub(1));
    for b in 0..par.pp.saturating_sub(1) {
        let link = &placement.boundary_links[b];
        let receiving_first_layer = offsets[b + 1];
        let compressed = setup.plan.covers(receiving_first_layer);
        let (fwd_s, bwd_s) = if compressed {
            let fwd_bytes = compressed_bytes;
            // Sparse and AE gradients travel compressed; quantized
            // gradients cannot (PyTorch's backward engine only supports
            // float gradients — §3.3).
            let bwd_bytes = match spec.family() {
                Family::Quantization => dense_bytes,
                _ => compressed_bytes,
            };
            // Backward re-encoding is free for sparsifiers (the gradient
            // reuses the forward mask) and for the AE (the code-space
            // gradient is produced directly by the decoder's backward);
            // quantized gradients travel dense (no codec at all).
            let bwd_codec = match spec.family() {
                Family::Quantization => 0.0,
                _ => codec.decode_s,
            };
            (
                p2p_time(link, fwd_bytes) + codec.encode_s + codec.decode_s,
                p2p_time(link, bwd_bytes) + bwd_codec,
            )
        } else {
            (p2p_time(link, dense_bytes), p2p_time(link, dense_bytes))
        };
        boundaries.push(BoundaryTiming { fwd_s, bwd_s });
        boundary_per_mb_ms.push((fwd_s + bwd_s) * 1e3);
    }

    let stage_timings: Vec<StageTiming> = costs
        .iter()
        .map(|c| StageTiming {
            fwd_s: c.fwd_s,
            bwd_s: c.bwd_s,
        })
        .collect();
    let m = setup.num_micro_batches;
    let pipe = simulate_gpipe(&stage_timings, &boundaries, m);

    // Critical-path attribution: for m = 1 the stages run strictly
    // serially, so each component sums across stages (the paper's Table 4
    // convention); for deep pipelines the bottleneck stage executes m
    // micro-batches back to back and its components dominate (Table 7).
    let serial: f64 = costs.iter().map(|c| c.fwd_s + c.bwd_s).sum();
    let bottleneck = costs
        .iter()
        .enumerate()
        .max_by(|a, b| {
            (a.1.fwd_s + a.1.bwd_s)
                .partial_cmp(&(b.1.fwd_s + b.1.bwd_s))
                .expect("stage times are finite")
        })
        .map(|(i, _)| i)
        .expect("at least one stage");
    let bn = &costs[bottleneck];
    let use_serial = serial >= m as f64 * (bn.fwd_s + bn.bwd_s);
    let critical = |f: &dyn Fn(&StageCosts) -> f64| -> f64 {
        if use_serial {
            costs.iter().map(f).sum()
        } else {
            m as f64 * f(bn)
        }
    };
    let forward_s = critical(&|c: &StageCosts| c.fwd_s);
    let backward_s = critical(&|c: &StageCosts| c.bwd_s);
    let tensor_enc_s = critical(&|c: &StageCosts| c.enc_s);
    let tensor_dec_s = critical(&|c: &StageCosts| c.dec_s);
    let tensor_comm_s = critical(&|c: &StageCosts| c.comm_s);

    let params_per_gpu = setup.model.num_params() as f64 / par.gpus() as f64;
    let optimizer_s = params_per_gpu * setup.gpu.sec_per_param_update;

    let total_s = pipe.makespan_s + optimizer_s;
    let wait_pp_s = (pipe.makespan_s - forward_s - backward_s).max(0.0);

    IterationBreakdown {
        total_ms: total_s * 1e3,
        forward_ms: forward_s * 1e3,
        backward_ms: backward_s * 1e3,
        optimizer_ms: optimizer_s * 1e3,
        wait_pp_ms: wait_pp_s * 1e3,
        tensor_enc_ms: tensor_enc_s * 1e3,
        tensor_dec_ms: tensor_dec_s * 1e3,
        tensor_comm_ms: tensor_comm_s * 1e3,
        boundary_per_mb_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration;
    use actcomp_compress::spec::CompressorSpec;

    fn finetune_setup(tp: usize, pp: usize, plan: CompressionPlan) -> TrainSetup {
        TrainSetup {
            model: ModelShape::bert_large(),
            seq: 512,
            micro_batch: 32,
            num_micro_batches: 1,
            parallelism: Parallelism::new(tp, pp),
            cluster: ClusterSpec::local_no_nvlink(),
            gpu: calibration::v100_finetune(),
            plan,
            cost: CostModel::v100(),
        }
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let b = simulate_iteration(&finetune_setup(2, 2, CompressionPlan::none()));
        let parts = b.forward_ms + b.backward_ms + b.optimizer_ms + b.wait_pp_ms;
        assert!(
            (parts - b.total_ms).abs() / b.total_ms < 1e-6,
            "{parts} vs {b:?}"
        );
    }

    #[test]
    fn enc_dec_comm_within_forward() {
        let plan = CompressionPlan::last_layers(CompressorSpec::A1, 24, 12);
        let b = simulate_iteration(&finetune_setup(2, 2, plan));
        assert!(b.tensor_enc_ms + b.tensor_dec_ms + b.tensor_comm_ms <= b.forward_ms);
        assert!(b.tensor_enc_ms > 0.0 && b.tensor_dec_ms > 0.0);
    }

    #[test]
    fn tp1_has_no_tensor_comm() {
        let plan = CompressionPlan::last_layers(CompressorSpec::A1, 24, 12);
        let b = simulate_iteration(&finetune_setup(1, 4, plan));
        assert_eq!(b.tensor_comm_ms, 0.0);
        assert_eq!(b.tensor_enc_ms, 0.0);
    }

    #[test]
    fn ae_beats_baseline_without_nvlink() {
        // The paper's headline: up to ~18% end-to-end speedup from AE on
        // the PCIe machine (Table 3 / Takeaway 1).
        let base = simulate_iteration(&finetune_setup(2, 2, CompressionPlan::none()));
        let a1 = simulate_iteration(&finetune_setup(
            2,
            2,
            CompressionPlan::last_layers(CompressorSpec::A1, 24, 12),
        ));
        assert!(
            a1.total_ms < base.total_ms,
            "A1 {} >= baseline {}",
            a1.total_ms,
            base.total_ms
        );
        let speedup = base.total_ms / a1.total_ms;
        assert!(speedup > 1.05 && speedup < 1.30, "speedup {speedup}");
    }

    #[test]
    fn randk_is_catastrophic() {
        let base = simulate_iteration(&finetune_setup(2, 2, CompressionPlan::none()));
        let r4 = simulate_iteration(&finetune_setup(
            2,
            2,
            CompressionPlan::last_layers(CompressorSpec::R4, 24, 12),
        ));
        assert!(
            r4.total_ms > 10.0 * base.total_ms,
            "R4 {} not catastrophic vs {}",
            r4.total_ms,
            base.total_ms
        );
    }

    #[test]
    fn quantization_gains_nothing_on_nvlink() {
        // Table 2: Q1 is (slightly) slower than the baseline on the NVLink
        // machine; Table 4 shows it roughly break-even on PCIe.
        let nvlink = |plan| {
            let mut s = finetune_setup(2, 2, plan);
            s.cluster = ClusterSpec::p3_8xlarge();
            simulate_iteration(&s)
        };
        let base = nvlink(CompressionPlan::none());
        let q1 = nvlink(CompressionPlan::last_layers(CompressorSpec::Q1, 24, 12));
        assert!(
            q1.total_ms > base.total_ms,
            "Q1 {} should not beat baseline {} on NVLink",
            q1.total_ms,
            base.total_ms
        );

        // PCIe: within a few percent of the baseline either way.
        let base_pcie = simulate_iteration(&finetune_setup(2, 2, CompressionPlan::none()));
        let q1_pcie = simulate_iteration(&finetune_setup(
            2,
            2,
            CompressionPlan::last_layers(CompressorSpec::Q1, 24, 12),
        ));
        let rel = (q1_pcie.total_ms - base_pcie.total_ms).abs() / base_pcie.total_ms;
        assert!(rel < 0.05, "Q1 on PCIe deviates {rel}");
    }

    #[test]
    fn boundary_compression_shows_in_table9_shape() {
        // Pre-train setup: TP=4, PP=4 over 4 nodes, A2 on last 12 layers:
        // boundary 0 uncompressed, boundaries 1 and 2 compressed.
        let setup = TrainSetup {
            model: ModelShape::bert_large(),
            seq: 128,
            micro_batch: 128,
            num_micro_batches: 8,
            parallelism: Parallelism::new(4, 4),
            cluster: ClusterSpec::p3_cluster(4),
            gpu: calibration::v100_pretrain(),
            plan: CompressionPlan::last_layers(CompressorSpec::A2, 24, 12),
            cost: CostModel::v100(),
        };
        let b = simulate_iteration(&setup);
        assert_eq!(b.boundary_per_mb_ms.len(), 3);
        assert!(
            b.boundary_per_mb_ms[0] > 5.0 * b.boundary_per_mb_ms[1],
            "boundary 0 {} should dwarf compressed boundary 1 {}",
            b.boundary_per_mb_ms[0],
            b.boundary_per_mb_ms[1]
        );
        assert!((b.boundary_per_mb_ms[1] - b.boundary_per_mb_ms[2]).abs() < 1.0);
    }

    #[test]
    fn deeper_tp_reduces_compute_share() {
        let t2 = simulate_iteration(&finetune_setup(2, 2, CompressionPlan::none()));
        let t4 = simulate_iteration(&finetune_setup(4, 1, CompressionPlan::none()));
        // Forward compute shrinks with TP even if comm grows on PCIe.
        assert!(t4.forward_ms - t4.tensor_comm_ms < t2.forward_ms - t2.tensor_comm_ms);
    }
}
