//! Cost models for the collectives model parallelism issues.
//!
//! Tensor parallelism issues ring all-reduces (or, for non-summable
//! compressed messages, all-gathers); pipeline parallelism issues
//! point-to-point sends. All models are the standard α–β forms:
//! `latency·rounds + bytes_moved / effective_bandwidth`.

use crate::hardware::LinkSpec;

/// Time of a ring all-reduce over `p` ranks of a `bytes`-sized buffer.
///
/// A ring moves `2·(p−1)/p · bytes` per rank across `2(p−1)` latency-bound
/// steps. `p == 1` costs nothing.
pub fn allreduce_time(link: &LinkSpec, p: usize, bytes: usize) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let moved = 2.0 * (p as f64 - 1.0) / p as f64 * bytes as f64;
    2.0 * (p as f64 - 1.0) * link.latency + moved / link.effective_bandwidth(p)
}

/// Time of a ring all-gather over `p` ranks where each rank contributes
/// `bytes_per_rank`.
///
/// Every rank receives `(p−1)·bytes_per_rank` across `p−1` steps.
pub fn allgather_time(link: &LinkSpec, p: usize, bytes_per_rank: usize) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let moved = (p as f64 - 1.0) * bytes_per_rank as f64;
    (p as f64 - 1.0) * link.latency + moved / link.effective_bandwidth(p)
}

/// Time of a point-to-point transfer of `bytes`.
pub fn p2p_time(link: &LinkSpec, bytes: usize) -> f64 {
    link.latency + bytes as f64 / link.pair_bandwidth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::LinkSpec;

    const MB: usize = 1 << 20;

    #[test]
    fn single_rank_collectives_are_free() {
        let l = LinkSpec::nvlink();
        assert_eq!(allreduce_time(&l, 1, 100 * MB), 0.0);
        assert_eq!(allgather_time(&l, 1, 100 * MB), 0.0);
    }

    #[test]
    fn allreduce_monotone_in_bytes() {
        let l = LinkSpec::pcie_shared();
        let t1 = allreduce_time(&l, 4, MB);
        let t2 = allreduce_time(&l, 4, 2 * MB);
        let t4 = allreduce_time(&l, 4, 4 * MB);
        assert!(t1 < t2 && t2 < t4);
        // Asymptotically linear in bytes.
        assert!((t4 - t2) / (t2 - t1) > 1.9);
    }

    #[test]
    fn shared_bridge_allreduce_grows_with_ranks() {
        // On a shared PCIe bridge, more ranks move more data through the
        // same pipe: TP=4 must be slower than TP=2 (paper Tables 13/14).
        let l = LinkSpec::pcie_shared();
        assert!(allreduce_time(&l, 4, 32 * MB) > allreduce_time(&l, 2, 32 * MB));
    }

    #[test]
    fn nvlink_mesh_allreduce_gets_cheaper_with_ranks() {
        // On an NVLink mesh, aggregate bandwidth grows with p faster than
        // the data volume does (paper Table 2: TP=4 beats TP=2 per layer).
        let l = LinkSpec::nvlink();
        assert!(allreduce_time(&l, 4, 32 * MB) < allreduce_time(&l, 2, 32 * MB));
    }

    #[test]
    fn paper_scale_allreduce_times() {
        // The paper's fine-tune all-reduce: 33.5 MB (32·512·1024 fp16).
        let bytes = 32 * 512 * 1024 * 2;
        // No NVLink, TP=2: Table 4's 150.72 ms over 48 forward
        // all-reduces implies ~3.14 ms per op.
        let t = allreduce_time(&LinkSpec::pcie_shared(), 2, bytes);
        assert!((t - 3.14e-3).abs() / 3.14e-3 < 0.15, "PCIe ar {t}");
        // NVLink, TP=2: ~1.5 ms (Table 2 vs compute budget).
        let t = allreduce_time(&LinkSpec::nvlink(), 2, bytes);
        assert!((t - 1.5e-3).abs() / 1.5e-3 < 0.25, "NVLink ar {t}");
    }

    #[test]
    fn p2p_dominated_by_latency_for_tiny_messages() {
        let l = LinkSpec::ethernet_10g();
        let tiny = p2p_time(&l, 16);
        assert!((tiny - l.latency) / l.latency < 0.01);
    }

    #[test]
    fn inter_node_p2p_matches_table9() {
        // Table 9: ~44 ms to move one 33.5 MB micro-batch activation one
        // way between pipeline stages on 10 Gbps.
        let bytes = 128 * 128 * 1024 * 2;
        let t = p2p_time(&LinkSpec::ethernet_10g(), bytes);
        assert!((t - 44.0e-3).abs() / 44.0e-3 < 0.15, "p2p {t}");
    }
}
