//! Mapping (tensor, pipeline) parallelism onto a cluster.
//!
//! GPUs are numbered node-major. Tensor-parallel groups take consecutive
//! GPUs (so TP stays inside a node whenever `tp ≤ gpus/node`, the strategy
//! Narayanan et al. 2021 recommend and the paper follows); pipeline stages
//! are laid out across the remaining dimension.

use crate::hardware::{ClusterSpec, LinkSpec};
use serde::{Deserialize, Serialize};

/// A parallel layout that cannot be realized.
///
/// Typed counterpart of the panics in [`Parallelism::new`],
/// [`ClusterSpec::place`] and [`layers_per_stage`], for callers that
/// assemble layouts from external configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TopologyError {
    /// A parallel degree is zero.
    ZeroDegree,
    /// `tp · pp` exceeds the cluster's GPU count.
    TooFewGpus {
        /// The layout being placed.
        parallelism: Parallelism,
        /// GPUs the cluster provides.
        available: usize,
    },
    /// More pipeline stages than layers.
    TooManyStages {
        /// Layers to split.
        layers: usize,
        /// Stage count requested.
        pp: usize,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::ZeroDegree => f.write_str("parallel degrees must be positive"),
            TopologyError::TooFewGpus {
                parallelism,
                available,
            } => write!(
                f,
                "{parallelism} needs {} GPUs but cluster has {available}",
                parallelism.gpus()
            ),
            TopologyError::TooManyStages { layers, pp } => {
                write!(f, "cannot split {layers} layers into {pp} stages")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A (tensor-parallel, pipeline-parallel) degree pair — the paper's
/// `(TP, PP)` tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Parallelism {
    /// Tensor model-parallel degree.
    pub tp: usize,
    /// Pipeline model-parallel degree.
    pub pp: usize,
}

impl Parallelism {
    /// Typed variant of [`Parallelism::new`]: [`TopologyError::ZeroDegree`]
    /// when either degree is zero.
    pub fn try_new(tp: usize, pp: usize) -> Result<Self, TopologyError> {
        if tp == 0 || pp == 0 {
            return Err(TopologyError::ZeroDegree);
        }
        Ok(Parallelism { tp, pp })
    }

    /// Creates a degree pair.
    ///
    /// # Panics
    ///
    /// Panics if either degree is zero.
    pub fn new(tp: usize, pp: usize) -> Self {
        Self::try_new(tp, pp).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Total GPUs required.
    pub fn gpus(&self) -> usize {
        self.tp * self.pp
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TP={}, PP={}", self.tp, self.pp)
    }
}

/// The concrete links a parallelism layout communicates over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Degrees being placed.
    pub parallelism: Parallelism,
    /// Link carrying tensor-parallel all-reduce traffic.
    pub tp_link: LinkSpec,
    /// Link for each of the `pp − 1` pipeline-stage boundaries,
    /// boundary `i` sitting between stages `i` and `i+1`.
    pub boundary_links: Vec<LinkSpec>,
}

impl Placement {
    /// Whether the tensor-parallel group had to span nodes (the
    /// catastrophic `TP=8` rows of the paper's Table 6).
    pub fn tp_crosses_nodes(&self, cluster: &ClusterSpec) -> bool {
        self.parallelism.tp > cluster.machine.gpus
    }
}

impl ClusterSpec {
    /// Typed variant of [`ClusterSpec::place`]:
    /// [`TopologyError::TooFewGpus`] when the layout does not fit.
    pub fn try_place(&self, parallelism: Parallelism) -> Result<Placement, TopologyError> {
        if parallelism.gpus() > self.total_gpus() {
            return Err(TopologyError::TooFewGpus {
                parallelism,
                available: self.total_gpus(),
            });
        }
        Ok(self.place(parallelism))
    }

    /// Places a parallelism layout on this cluster.
    ///
    /// # Panics
    ///
    /// Panics if `tp · pp` exceeds the cluster's GPU count.
    pub fn place(&self, parallelism: Parallelism) -> Placement {
        assert!(
            parallelism.gpus() <= self.total_gpus(),
            "{}",
            TopologyError::TooFewGpus {
                parallelism,
                available: self.total_gpus()
            }
        );
        let gpn = self.machine.gpus;
        let tp_link = if parallelism.tp <= gpn {
            self.machine.intra
        } else {
            // TP group spans nodes: the slowest hop bounds the ring.
            self.inter
        };
        let boundary_links = (0..parallelism.pp.saturating_sub(1))
            .map(|s| {
                // Representative rank 0 of each stage.
                let from_gpu = s * parallelism.tp;
                let to_gpu = (s + 1) * parallelism.tp;
                if from_gpu / gpn == to_gpu / gpn {
                    self.machine.intra
                } else {
                    self.inter
                }
            })
            .collect();
        Placement {
            parallelism,
            tp_link,
            boundary_links,
        }
    }
}

/// Splits `layers` across `pp` stages as evenly as possible (Megatron's
/// default balanced assignment); earlier stages get the remainder.
///
/// # Panics
///
/// Panics if `pp == 0` or `pp > layers`.
pub fn layers_per_stage(layers: usize, pp: usize) -> Vec<usize> {
    try_layers_per_stage(layers, pp).unwrap_or_else(|e| panic!("{e}"))
}

/// Typed variant of [`layers_per_stage`]:
/// [`TopologyError::TooManyStages`] when `pp == 0` or `pp > layers`.
pub fn try_layers_per_stage(layers: usize, pp: usize) -> Result<Vec<usize>, TopologyError> {
    if pp == 0 || pp > layers {
        return Err(TopologyError::TooManyStages { layers, pp });
    }
    let base = layers / pp;
    let extra = layers % pp;
    Ok((0..pp).map(|s| base + usize::from(s < extra)).collect())
}

/// The first (global) layer index of each stage.
pub fn stage_layer_offsets(layers: usize, pp: usize) -> Vec<usize> {
    let per = layers_per_stage(layers, pp);
    let mut offsets = Vec::with_capacity(pp);
    let mut acc = 0;
    for l in per {
        offsets.push(acc);
        acc += l;
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::LinkKind;

    #[test]
    fn tp_within_node_uses_intra_link() {
        let c = ClusterSpec::p3_cluster(4);
        let p = c.place(Parallelism::new(4, 4));
        assert_eq!(p.tp_link.kind, LinkKind::NvLink);
        assert!(!p.tp_crosses_nodes(&c));
    }

    #[test]
    fn tp_spanning_nodes_uses_ethernet() {
        let c = ClusterSpec::p3_cluster(4);
        let p = c.place(Parallelism::new(8, 2));
        assert_eq!(p.tp_link.kind, LinkKind::Ethernet);
        assert!(p.tp_crosses_nodes(&c));
    }

    #[test]
    fn boundary_links_follow_node_boundaries() {
        // TP=4 on 4-GPU nodes: every stage fills one node, so every
        // pipeline boundary crosses nodes.
        let c = ClusterSpec::p3_cluster(4);
        let p = c.place(Parallelism::new(4, 4));
        assert_eq!(p.boundary_links.len(), 3);
        assert!(p
            .boundary_links
            .iter()
            .all(|l| l.kind == LinkKind::Ethernet));

        // TP=2, PP=2 on one node: boundary stays on NVLink.
        let c1 = ClusterSpec::p3_8xlarge();
        let p1 = c1.place(Parallelism::new(2, 2));
        assert_eq!(p1.boundary_links.len(), 1);
        assert_eq!(p1.boundary_links[0].kind, LinkKind::NvLink);

        // TP=2, PP=8 on 4 nodes: boundaries alternate intra/inter.
        let p2 = c.place(Parallelism::new(2, 8));
        let kinds: Vec<LinkKind> = p2.boundary_links.iter().map(|l| l.kind).collect();
        assert_eq!(
            kinds,
            vec![
                LinkKind::NvLink,
                LinkKind::Ethernet,
                LinkKind::NvLink,
                LinkKind::Ethernet,
                LinkKind::NvLink,
                LinkKind::Ethernet,
                LinkKind::NvLink
            ]
        );
    }

    #[test]
    #[should_panic(expected = "needs 32 GPUs")]
    fn rejects_oversubscription() {
        ClusterSpec::p3_8xlarge().place(Parallelism::new(8, 4));
    }

    #[test]
    fn layer_split_is_balanced() {
        assert_eq!(layers_per_stage(24, 4), vec![6, 6, 6, 6]);
        assert_eq!(layers_per_stage(24, 1), vec![24]);
        assert_eq!(layers_per_stage(25, 4), vec![7, 6, 6, 6]);
        assert_eq!(stage_layer_offsets(24, 4), vec![0, 6, 12, 18]);
    }
}
