//! Hardware specifications of the simulated cluster.
//!
//! Two machine presets mirror the paper's §4.1 setups: an AWS `p3.8xlarge`
//! (4×V100 fully connected by NVLink, 10 Gbps between instances) and a
//! local 4×V100 box whose GPUs share a single PCIe bridge. Link and compute
//! coefficients are *effective* values calibrated against the paper's
//! measured baselines (see `calibration`), not datasheet peaks — datasheet
//! peaks would overstate what NCCL ring collectives actually achieve.

use serde::{Deserialize, Serialize};

/// Interconnect technology of a [`LinkSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Point-to-point NVLink mesh inside a node.
    NvLink,
    /// A single shared PCIe bridge inside a node.
    Pcie,
    /// TCP/IP networking between nodes.
    Ethernet,
}

/// A communication link with an effective-bandwidth model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Link technology.
    pub kind: LinkKind,
    /// Effective bandwidth between one pair of endpoints, bytes/second.
    pub pair_bandwidth: f64,
    /// Per-message latency in seconds (launch + protocol overhead).
    pub latency: f64,
    /// Whether aggregate bandwidth grows with the number of participating
    /// peers (true for an NVLink mesh, false for a shared PCIe bridge or a
    /// node's single NIC).
    pub scales_with_peers: bool,
    /// Extra per-operation overhead paid when a *compressed* collective
    /// replaces the framework's fused dense collective, per pair of peers
    /// (scaled by `p/2` at use). On the NVLink machine the recurring dense
    /// all-reduces run in NCCL's fused/captured fast path; the compression
    /// integration breaks that and pays full launch + sync cost per op —
    /// which is why the paper sees no NVLink speedup (Takeaway 1) even
    /// though the bytes shrink 20×. Latency-bound fabrics (PCIe bridge,
    /// TCP) gain nothing from fusion, so their overhead is ~0.
    pub compressed_collective_overhead: f64,
}

impl LinkSpec {
    /// Effective bandwidth available to a collective over `p` peers.
    ///
    /// An NVLink mesh adds links as peers join (`bw · p/2`); a shared
    /// bridge or NIC does not.
    pub fn effective_bandwidth(&self, p: usize) -> f64 {
        if self.scales_with_peers && p >= 2 {
            self.pair_bandwidth * p as f64 / 2.0
        } else {
            self.pair_bandwidth
        }
    }

    /// NVLink as measured through NCCL all-reduce on a p3.8xlarge
    /// (effective ~23 GB/s per pair; the paper quotes 40 GB/s datasheet).
    pub fn nvlink() -> Self {
        LinkSpec {
            kind: LinkKind::NvLink,
            pair_bandwidth: 23.0e9,
            latency: 30.0e-6,
            scales_with_peers: true,
            compressed_collective_overhead: 4.0e-4,
        }
    }

    /// A single shared PCIe bridge (the paper's local machine):
    /// ~11 GB/s effective (bidirectional gen3 x16 ring traffic), shared —
    /// it does not grow as more GPUs contend. Calibrated from Table 4's
    /// 150.72 ms of tensor communication over 48 forward all-reduces of
    /// 33.5 MB (3.14 ms each).
    pub fn pcie_shared() -> Self {
        LinkSpec {
            kind: LinkKind::Pcie,
            pair_bandwidth: 11.0e9,
            latency: 50.0e-6,
            scales_with_peers: false,
            compressed_collective_overhead: 0.0,
        }
    }

    /// 10 Gbps instance networking (~0.75 GB/s effective after TCP
    /// overhead, matching the paper's measured inter-stage times).
    pub fn ethernet_10g() -> Self {
        LinkSpec {
            kind: LinkKind::Ethernet,
            pair_bandwidth: 0.75e9,
            latency: 200.0e-6,
            scales_with_peers: false,
            compressed_collective_overhead: 0.0,
        }
    }
}

/// Compute characteristics of one GPU for a given training regime.
///
/// `sec_per_flop` is an *effective* (achieved) rate: the paper's measured
/// iteration times imply different utilization in the fine-tuning
/// (large-sequence) and pre-training (MLM head, short-sequence) regimes, so
/// `calibration` provides one profile per regime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Seconds per floating-point operation actually achieved.
    pub sec_per_flop: f64,
    /// Ratio of backward to forward compute time.
    pub bwd_over_fwd: f64,
    /// Seconds per parameter for one optimizer (Adam) update.
    pub sec_per_param_update: f64,
}

/// One multi-GPU machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// GPUs in the node.
    pub gpus: usize,
    /// Intra-node link.
    pub intra: LinkSpec,
}

/// A cluster of identical machines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-node shape.
    pub machine: MachineSpec,
    /// Inter-node link.
    pub inter: LinkSpec,
}

impl ClusterSpec {
    /// One AWS p3.8xlarge: 4×V100 with NVLink (paper setup 1).
    pub fn p3_8xlarge() -> Self {
        ClusterSpec {
            nodes: 1,
            machine: MachineSpec {
                gpus: 4,
                intra: LinkSpec::nvlink(),
            },
            inter: LinkSpec::ethernet_10g(),
        }
    }

    /// The paper's local machine: 4×V100 on one shared PCIe bridge
    /// (paper setup 2, "without NVLink").
    pub fn local_no_nvlink() -> Self {
        ClusterSpec {
            nodes: 1,
            machine: MachineSpec {
                gpus: 4,
                intra: LinkSpec::pcie_shared(),
            },
            inter: LinkSpec::ethernet_10g(),
        }
    }

    /// `n` p3.8xlarge instances over 10 Gbps networking (the pre-training
    /// cluster uses `n = 4`).
    pub fn p3_cluster(n: usize) -> Self {
        ClusterSpec {
            nodes: n,
            ..Self::p3_8xlarge()
        }
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.machine.gpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvlink_bandwidth_scales_with_peers() {
        let l = LinkSpec::nvlink();
        assert!(l.effective_bandwidth(4) > l.effective_bandwidth(2));
        assert!((l.effective_bandwidth(4) / l.effective_bandwidth(2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shared_links_do_not_scale() {
        for l in [LinkSpec::pcie_shared(), LinkSpec::ethernet_10g()] {
            assert_eq!(l.effective_bandwidth(2), l.effective_bandwidth(8));
        }
    }

    #[test]
    fn link_speed_ordering() {
        // NVLink > PCIe > Ethernet, as the paper's three fabrics.
        assert!(LinkSpec::nvlink().pair_bandwidth > LinkSpec::pcie_shared().pair_bandwidth);
        assert!(LinkSpec::pcie_shared().pair_bandwidth > LinkSpec::ethernet_10g().pair_bandwidth);
    }

    #[test]
    fn cluster_presets() {
        assert_eq!(ClusterSpec::p3_8xlarge().total_gpus(), 4);
        assert_eq!(ClusterSpec::p3_cluster(4).total_gpus(), 16);
        assert_eq!(
            ClusterSpec::local_no_nvlink().machine.intra.kind,
            LinkKind::Pcie
        );
    }
}
