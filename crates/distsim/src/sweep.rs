//! Parallel evaluation of sweep grids on the kernel pool.
//!
//! Every sweep in this workspace — the paper-table regenerators, the
//! transport cross-check, the planner searches — walks a grid of
//! independent `(tp, pp, spec, …)` points and calls
//! [`simulate_iteration`](crate::simulate_iteration) (or a wrapper) on
//! each. The points share no state, so they can be fanned out across
//! the same scoped-thread kernel pool the tensor crate uses for GEMM
//! row-tiles.
//!
//! [`par_map`] is deliberately order-preserving and deterministic: the
//! grid is split into contiguous chunks with
//! [`plan_unit_chunks`](actcomp_tensor::pool::plan_unit_chunks) and the
//! results land in pre-assigned slots, so the output is bit-identical
//! to a serial `items.iter().map(f)` regardless of the pool size or
//! scheduling order. The sweep tests assert exactly that.

use actcomp_tensor::pool::{configured_threads, plan_unit_chunks, run_on_chunks};

/// Maps `f` over `items` on the kernel pool, preserving input order.
///
/// Equivalent to `items.iter().map(f).collect()` but with grid points
/// evaluated concurrently on up to
/// [`configured_threads`](actcomp_tensor::pool::configured_threads)
/// scoped threads. `f` must be pure with respect to ordering for the
/// serial/parallel equivalence to hold; every sweep closure in this
/// workspace is (the simulator is a pure function of its `TrainSetup`).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunks = plan_unit_chunks(n, configured_threads(), 1);
    run_on_chunks(&mut out, &chunks, |start, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = Some(f(&items[start + i]));
        }
    });
    out.into_iter()
        .map(|r| r.expect("pool covered every grid point"))
        .collect()
}

/// Builds the cross product of two axes in row-major order and maps
/// `f` over it on the kernel pool.
///
/// Returns `(a, b, f(a, b))` triples in the same order a nested
/// `for a { for b { … } }` loop would visit them, so callers can swap
/// a serial double loop for this without reordering their output.
pub fn par_grid<A, B, R, F>(xs: &[A], ys: &[B], f: F) -> Vec<(A, B, R)>
where
    A: Copy + Sync + Send,
    B: Copy + Sync + Send,
    R: Send,
    F: Fn(A, B) -> R + Sync,
{
    let points: Vec<(A, B)> = xs
        .iter()
        .flat_map(|&a| ys.iter().map(move |&b| (a, b)))
        .collect();
    par_map(&points, |&(a, b)| f(a, b))
        .into_iter()
        .zip(points)
        .map(|(r, (a, b))| (a, b, r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_and_values() {
        let items: Vec<usize> = (0..37).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * x + 1).collect();
        assert_eq!(par_map(&items, |&x| x * x + 1), serial);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map::<usize, usize, _>(&[], |&x| x), Vec::<usize>::new());
        assert_eq!(par_map(&[7usize], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_grid_matches_nested_loop_order() {
        let xs = [1usize, 2, 3];
        let ys = [10usize, 20];
        let got = par_grid(&xs, &ys, |a, b| a * b);
        let mut want = Vec::new();
        for &a in &xs {
            for &b in &ys {
                want.push((a, b, a * b));
            }
        }
        assert_eq!(got, want);
    }
}
