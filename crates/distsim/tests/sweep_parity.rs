//! The parallel sweep must be indistinguishable from the serial one.
//!
//! Grid points are independent pure functions of their `TrainSetup`, so
//! fanning them across the kernel pool may change wall-clock time but
//! never a single bit of the output. This pins the ROADMAP's
//! "parallelize the sweeps" step to an exact-equality contract: the same
//! `(tp, pp) x spec` grid the paper-table regenerators walk, evaluated
//! serially and through `par_map` at several pool sizes, must produce
//! identical `IterationBreakdown`s in identical order.

use actcomp_compress::cost::CostModel;
use actcomp_compress::spec::CompressorSpec;
use actcomp_distsim::workload::ModelShape;
use actcomp_distsim::{
    calibration, par_grid, par_map, simulate_iteration, ClusterSpec, CompressionPlan,
    IterationBreakdown, Parallelism, TrainSetup,
};
use actcomp_tensor::pool::set_threads;

fn setup(tp: usize, pp: usize, spec: CompressorSpec) -> TrainSetup {
    let plan = if spec == CompressorSpec::Baseline {
        CompressionPlan::none()
    } else {
        CompressionPlan::last_layers(spec, 24, 12)
    };
    TrainSetup {
        model: ModelShape::bert_large(),
        seq: 512,
        micro_batch: 32,
        num_micro_batches: 1,
        parallelism: Parallelism::new(tp, pp),
        cluster: ClusterSpec::local_no_nvlink(),
        gpu: calibration::v100_finetune(),
        plan,
        cost: CostModel::v100(),
    }
}

fn grid() -> Vec<TrainSetup> {
    let mut points = Vec::new();
    for &(tp, pp) in &[(1, 1), (2, 1), (1, 2), (2, 2), (4, 1), (1, 4)] {
        for &spec in &[
            CompressorSpec::Baseline,
            CompressorSpec::A1,
            CompressorSpec::T2,
            CompressorSpec::R3,
        ] {
            points.push(setup(tp, pp, spec));
        }
    }
    points
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let points = grid();
    let serial: Vec<IterationBreakdown> = points.iter().map(simulate_iteration).collect();
    for threads in [1, 2, 3, 8] {
        set_threads(threads);
        let par = par_map(&points, simulate_iteration);
        assert_eq!(
            par, serial,
            "sweep results diverged from the serial walk at pool size {threads}"
        );
    }
    set_threads(1);
}

#[test]
fn par_grid_walks_the_axes_in_nested_loop_order() {
    set_threads(4);
    let tps = [1usize, 2];
    let pps = [1usize, 2];
    let got = par_grid(&tps, &pps, |tp, pp| {
        simulate_iteration(&setup(tp, pp, CompressorSpec::A1)).total_ms
    });
    set_threads(1);
    let mut i = 0;
    for &tp in &tps {
        for &pp in &pps {
            let (gtp, gpp, ms) = got[i];
            assert_eq!((gtp, gpp), (tp, pp), "grid order must match the loops");
            let want = simulate_iteration(&setup(tp, pp, CompressorSpec::A1)).total_ms;
            assert!(
                ms.to_bits() == want.to_bits(),
                "point ({tp},{pp}) diverged: {ms} vs {want}"
            );
            i += 1;
        }
    }
    assert_eq!(i, got.len());
}
