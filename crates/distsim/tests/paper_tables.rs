//! Integration checks: the simulator against the paper's headline rows.
//!
//! Absolute times must land near the paper's measurements for baselines
//! (simulator is calibrated on a subset of them); for compressed settings
//! the *ordering* and rough magnitudes must hold.

use actcomp_compress::cost::CostModel;
use actcomp_compress::spec::CompressorSpec;
use actcomp_distsim::workload::ModelShape;
use actcomp_distsim::{
    calibration, simulate_iteration, ClusterSpec, CompressionPlan, Parallelism, TrainSetup,
};

fn finetune(
    cluster: ClusterSpec,
    tp: usize,
    pp: usize,
    batch: usize,
    seq: usize,
    spec: CompressorSpec,
) -> f64 {
    let plan = if spec == CompressorSpec::Baseline {
        CompressionPlan::none()
    } else {
        CompressionPlan::last_layers(spec, 24, 12)
    };
    // The AWS machine and the local machine run different software stacks
    // with different measured topk kernels (see CostModel docs).
    let cost = if cluster == ClusterSpec::local_no_nvlink() {
        CostModel::v100()
    } else {
        CostModel::v100_aws()
    };
    let setup = TrainSetup {
        model: ModelShape::bert_large(),
        seq,
        micro_batch: batch,
        num_micro_batches: 1,
        parallelism: Parallelism::new(tp, pp),
        cluster,
        gpu: calibration::v100_finetune(),
        plan,
        cost,
    };
    simulate_iteration(&setup).total_ms
}

fn pretrain(tp: usize, pp: usize, spec: CompressorSpec) -> f64 {
    let plan = if spec == CompressorSpec::Baseline {
        CompressionPlan::none()
    } else {
        CompressionPlan::last_layers(spec, 24, 12)
    };
    let setup = TrainSetup {
        model: ModelShape::bert_large(),
        seq: 128,
        micro_batch: 128,
        num_micro_batches: 8,
        parallelism: Parallelism::new(tp, pp),
        cluster: ClusterSpec::p3_cluster(4),
        gpu: calibration::v100_pretrain(),
        plan,
        cost: CostModel::v100_pretrain(),
    };
    simulate_iteration(&setup).total_ms
}

#[test]
fn print_main_table_rows() {
    use CompressorSpec::*;
    println!("=== Table 2 (fine-tune, NVLink, b=32 s=512) ===");
    for (tp, pp) in [(1, 4), (2, 2), (4, 1)] {
        print!("TP={tp} PP={pp}:");
        for s in [Baseline, A1, A2, T1, T4, R1, R4, Q1, Q2] {
            print!(
                " {}={:.0}",
                s.label(),
                finetune(ClusterSpec::p3_8xlarge(), tp, pp, 32, 512, s)
            );
        }
        println!();
    }
    println!("=== Table 3 bottom (no NVLink) ===");
    for (tp, pp) in [(1, 4), (2, 2), (4, 1)] {
        print!("TP={tp} PP={pp}:");
        for s in [Baseline, A1, A2] {
            print!(
                " {}={:.0}",
                s.label(),
                finetune(ClusterSpec::local_no_nvlink(), tp, pp, 32, 512, s)
            );
        }
        println!();
    }
    println!("=== Table 6 (pre-train, 4 nodes, mb=128 s=128, m=8) ===");
    for (tp, pp) in [(2, 8), (4, 4), (8, 2)] {
        print!("TP={tp} PP={pp}:");
        for s in [Baseline, A1, A2, T1, T2, R1, Q1, Q2] {
            print!(" {}={:.0}", s.label(), pretrain(tp, pp, s));
        }
        println!();
    }
}

#[test]
fn table2_baselines_within_tolerance() {
    // Paper: 591.96, 440.71, 261.48.
    let cases = [((1, 4), 591.96), ((2, 2), 440.71), ((4, 1), 261.48)];
    for ((tp, pp), paper) in cases {
        let ours = finetune(
            ClusterSpec::p3_8xlarge(),
            tp,
            pp,
            32,
            512,
            CompressorSpec::Baseline,
        );
        let rel = (ours - paper).abs() / paper;
        assert!(
            rel < 0.15,
            "TP={tp},PP={pp}: {ours:.1} vs paper {paper} ({rel:.2})"
        );
    }
}

#[test]
fn table3_no_nvlink_baselines_within_tolerance() {
    // Paper: 633.17 and 646.14. (The paper's TP=4 row, 360.15 ms, is
    // internally inconsistent with its own Table 4 per-op communication
    // costs — see EXPERIMENTS.md — so only the AE speedup ratio is
    // asserted for that row, in `ae_speedup_shape_matches_paper`.)
    let cases = [((1, 4), 633.17), ((2, 2), 646.14)];
    for ((tp, pp), paper) in cases {
        let ours = finetune(
            ClusterSpec::local_no_nvlink(),
            tp,
            pp,
            32,
            512,
            CompressorSpec::Baseline,
        );
        let rel = (ours - paper).abs() / paper;
        assert!(
            rel < 0.15,
            "TP={tp},PP={pp}: {ours:.1} vs paper {paper} ({rel:.2})"
        );
    }
}

#[test]
fn ae_speedup_shape_matches_paper() {
    // No NVLink: AE wins (up to ~18% at TP=4); NVLink: no meaningful win.
    let no_nv_base = finetune(
        ClusterSpec::local_no_nvlink(),
        4,
        1,
        32,
        512,
        CompressorSpec::Baseline,
    );
    let no_nv_a1 = finetune(
        ClusterSpec::local_no_nvlink(),
        4,
        1,
        32,
        512,
        CompressorSpec::A1,
    );
    let speedup = no_nv_base / no_nv_a1;
    assert!(speedup > 1.08, "no-NVLink TP=4 AE speedup {speedup}");

    let nv_base = finetune(
        ClusterSpec::p3_8xlarge(),
        4,
        1,
        32,
        512,
        CompressorSpec::Baseline,
    );
    let nv_a1 = finetune(ClusterSpec::p3_8xlarge(), 4, 1, 32, 512, CompressorSpec::A1);
    assert!(
        nv_a1 > nv_base * 0.99,
        "NVLink TP=4: A1 {nv_a1} should not beat baseline {nv_base}"
    );
}

#[test]
fn randk_ordering_is_catastrophic_everywhere() {
    use CompressorSpec::*;
    for (tp, pp) in [(2, 2), (4, 1)] {
        let base = finetune(ClusterSpec::p3_8xlarge(), tp, pp, 32, 512, Baseline);
        let r1 = finetune(ClusterSpec::p3_8xlarge(), tp, pp, 32, 512, R1);
        let r4 = finetune(ClusterSpec::p3_8xlarge(), tp, pp, 32, 512, R4);
        assert!(r1 > 3.0 * base, "R1 {r1} vs base {base}");
        assert!(r4 > r1 * 5.0, "R4 {r4} vs R1 {r1}");
    }
}

#[test]
fn pretrain_tp8_spanning_nodes_is_terrible() {
    // Table 6: TP=8 PP=2 baseline is ~10x the TP=4 PP=4 row because the
    // TP group crosses the 10 Gbps boundary.
    let t44 = pretrain(4, 4, CompressorSpec::Baseline);
    let t82 = pretrain(8, 2, CompressorSpec::Baseline);
    assert!(t82 > 5.0 * t44, "TP=8 {t82} vs TP=4 {t44}");
}

#[test]
fn pretrain_ae_and_topk_win_quant_loses() {
    use CompressorSpec::*;
    let base = pretrain(4, 4, Baseline);
    let a2 = pretrain(4, 4, A2);
    let t1 = pretrain(4, 4, T1);
    let q1 = pretrain(4, 4, Q1);
    assert!(a2 < base, "A2 {a2} vs base {base}");
    assert!(t1 < base, "T1 {t1} vs base {base}");
    assert!(q1 > base, "Q1 {q1} vs base {base}");
    // Takeaway 4: AE speedup up to ~16%.
    let speedup = base / a2;
    assert!(
        speedup > 1.05 && speedup < 1.35,
        "pretrain AE speedup {speedup}"
    );
}
