//! Property-based tests of the pipeline schedulers.

use actcomp_distsim::pipeline::{simulate_gpipe, BoundaryTiming, StageTiming};
use actcomp_distsim::schedule::simulate_1f1b;
use proptest::prelude::*;

fn stage_strategy(p: usize) -> impl Strategy<Value = Vec<StageTiming>> {
    proptest::collection::vec((0.01f64..2.0, 0.01f64..2.0), p).prop_map(|v| {
        v.into_iter()
            .map(|(f, b)| StageTiming { fwd_s: f, bwd_s: b })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With free boundaries, 1F1B and GPipe share the classic bubble and
    /// thus the makespan, for any stage times.
    #[test]
    fn schedules_agree_with_free_boundaries(
        stages in stage_strategy(4),
        m in 1usize..12,
    ) {
        let b = vec![BoundaryTiming { fwd_s: 0.0, bwd_s: 0.0 }; 3];
        let g = simulate_gpipe(&stages, &b, m).makespan_s;
        let f = simulate_1f1b(&stages, &b, m).makespan_s;
        // On non-uniform stages 1F1B's interleave can beat the flush
        // schedule (it starts backwards before all forwards finish), but
        // never by more than the flush bubble; with uniform stages the
        // classic result holds: identical makespan.
        prop_assert!(f <= g + 1e-9, "1F1B worse than flush with free comms: {f} vs {g}");
        let uniform = stages.windows(2).all(|w| {
            (w[0].fwd_s - w[1].fwd_s).abs() < 1e-12 && (w[0].bwd_s - w[1].bwd_s).abs() < 1e-12
        });
        if uniform {
            prop_assert!((f - g).abs() < 1e-9, "uniform: {f} vs {g}");
        }
    }

    /// Work conservation: the makespan is at least the busiest stage's
    /// total work and at least the end-to-end dependency chain.
    #[test]
    fn makespan_lower_bounds(
        stages in stage_strategy(4),
        m in 1usize..10,
        comm in 0.0f64..0.5,
    ) {
        let b = vec![BoundaryTiming { fwd_s: comm, bwd_s: comm }; 3];
        for r in [simulate_gpipe(&stages, &b, m), simulate_1f1b(&stages, &b, m)] {
            let busiest = stages
                .iter()
                .map(|s| m as f64 * (s.fwd_s + s.bwd_s))
                .fold(0.0f64, f64::max);
            prop_assert!(r.makespan_s >= busiest - 1e-9);
            let chain: f64 = stages.iter().map(|s| s.fwd_s + s.bwd_s).sum::<f64>()
                + 2.0 * comm * 3.0;
            prop_assert!(r.makespan_s >= chain - 1e-9);
            // Busy + idle = makespan per stage.
            for s in 0..4 {
                prop_assert!((r.busy_s[s] + r.idle_s[s] - r.makespan_s).abs() < 1e-9);
            }
        }
    }

    /// More micro-batches never lower the makespan, and amortized cost
    /// per micro-batch never rises.
    #[test]
    fn microbatch_monotonicity(stages in stage_strategy(3), m in 1usize..8) {
        let b = vec![BoundaryTiming { fwd_s: 0.05, bwd_s: 0.05 }; 2];
        let t_m = simulate_gpipe(&stages, &b, m).makespan_s;
        let t_m2 = simulate_gpipe(&stages, &b, m + 1).makespan_s;
        prop_assert!(t_m2 >= t_m - 1e-9);
        prop_assert!(t_m2 / (m + 1) as f64 <= t_m / m as f64 + 1e-9);
    }
}
