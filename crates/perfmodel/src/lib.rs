//! # actcomp-perfmodel
//!
//! The analytical performance model of the paper's §4.7, for the `actcomp`
//! reproduction of *"Does Compressing Activations Help Model Parallel
//! Training?"* (MLSys 2024).
//!
//! - [`model`]: Equations 1–3 — `T_comp = α·FLOPs`, piecewise `T_comm`,
//!   AE overhead `γ·Bsh`, per-layer and cluster speedup,
//! - [`fitting`]: the paper's fitting procedure (α at peak utilization,
//!   piecewise communication regression, zero-intercept γ) plus fit-quality
//!   metrics (Figure 5),
//! - [`scaling`]: the Table 10 weak-scaling sweep over Megatron's
//!   configurations.
//!
//! # Example
//!
//! ```
//! use actcomp_perfmodel::PerfCoefficients;
//!
//! let m = PerfCoefficients::paper();
//! // AE speedup diminishes as hidden size grows on a fixed cluster.
//! assert!(m.speedup(16, 128, 4096, 100) > m.speedup(16, 128, 16384, 100));
//! ```

#![warn(missing_docs)]

pub mod crossover;
pub mod fitting;
pub mod model;
pub mod scaling;

pub use model::{layer_flops, PerfCoefficients};
pub use scaling::{weak_scaling, ScalingConfig, ScalingRow};
