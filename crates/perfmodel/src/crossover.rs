//! Analytic crossover solvers for the §4.7 cost model.
//!
//! The paper's qualitative conclusions — compression pays only below some
//! bandwidth, only above some message size, and its benefit dies off past
//! some hidden size — are all threshold statements. Given fitted
//! coefficients, these solvers locate the thresholds in closed form /
//! by bisection, turning the takeaways into numbers.

use crate::model::{layer_flops, PerfCoefficients};

/// The largest `β` (seconds per element, i.e. the *slowest acceptable
/// network* expressed as inverse bandwidth) at which AE compression still
/// breaks even for the given geometry — equivalently, the bandwidth
/// crossover of Takeaway 1.
///
/// Break-even: `T_comm(Bsh) = T_comm(Bse) + T_overhead(Bsh)`, i.e.
/// `β·Bsh = c + γ·Bsh` (taking the compressed message below threshold),
/// so `β* = γ + c/(Bsh)`. Returns `β*`; compression wins for `β > β*`.
pub fn break_even_beta(coeffs: &PerfCoefficients, b: usize, s: usize, h: usize) -> f64 {
    let elems = (b * s * h) as f64;
    coeffs.gamma + coeffs.c / elems
}

/// The message size (elements) at which AE compression breaks even for a
/// given `β` — Takeaway 8's "batch and sequence need to be at least
/// 32/512" as a solved threshold. Returns `None` if compression never
/// breaks even at this `β` (i.e. `β ≤ γ`).
pub fn break_even_message_elems(coeffs: &PerfCoefficients, beta: f64) -> Option<f64> {
    if beta <= coeffs.gamma {
        return None;
    }
    // β·E = c + γ·E  →  E* = c / (β − γ); also must exceed the piecewise
    // threshold d for the dense message to be in the linear regime.
    let e = coeffs.c / (beta - coeffs.gamma);
    Some(e.max(coeffs.d))
}

/// The hidden size beyond which the AE's end-to-end speedup drops below
/// `target` on a fixed single-node group (the diminishing-returns knee of
/// Eq. 2), found by bisection. Returns `None` if even `h = h_min` is
/// already below the target.
pub fn speedup_knee(
    coeffs: &PerfCoefficients,
    b: usize,
    s: usize,
    e_over_h: f64,
    target: f64,
) -> Option<usize> {
    let speedup = |h: usize| {
        let e = ((h as f64 * e_over_h) as usize).max(1);
        coeffs.speedup(b, s, h, e)
    };
    let (mut lo, mut hi) = (256usize, 1 << 22);
    if speedup(lo) < target {
        return None;
    }
    if speedup(hi) >= target {
        return Some(hi);
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if speedup(mid) >= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Communication share of one uncompressed layer under the model —
/// `T_comm / (T_comp + T_comm)` (the Figure 1 quantity, analytically).
pub fn comm_share(coeffs: &PerfCoefficients, b: usize, s: usize, h: usize) -> f64 {
    let comm = coeffs.t_comm((b * s * h) as f64);
    let comp = coeffs.t_comp(layer_flops(b, s, h));
    comm / (comm + comp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> PerfCoefficients {
        PerfCoefficients::paper()
    }

    #[test]
    fn beta_crossover_consistent_with_speedup() {
        let c = paper();
        let (b, s, h) = (16usize, 128usize, 4096usize);
        let beta_star = break_even_beta(&c, b, s, h);
        let e = 100 * h / 1024;
        // Just above the crossover: compression wins.
        let mut above = c;
        above.beta = beta_star * 1.2;
        assert!(above.speedup(b, s, h, e) > 1.0);
        // Just below: it loses.
        let mut below = c;
        below.beta = beta_star * 0.8;
        assert!(below.speedup(b, s, h, e) < 1.0);
    }

    #[test]
    fn message_threshold_matches_takeaway8_shape() {
        let c = paper();
        let e = break_even_message_elems(&c, c.beta).expect("paper beta is above gamma");
        // The fine-tune default (32·512·1024) is far above the threshold;
        // the small setting (8·128·1024) sits near/below ~d.
        assert!((32 * 512 * 1024) as f64 > e);
        assert!(e >= c.d);
    }

    #[test]
    fn no_break_even_on_infinitely_fast_network() {
        let c = paper();
        assert!(break_even_message_elems(&c, c.gamma * 0.5).is_none());
        assert!(break_even_message_elems(&c, c.gamma).is_none());
    }

    #[test]
    fn knee_is_monotone_in_target() {
        let c = paper();
        let k15 = speedup_knee(&c, 16, 128, 100.0 / 1024.0, 1.5).expect("1.5x reachable");
        let k11 = speedup_knee(&c, 16, 128, 100.0 / 1024.0, 1.1).expect("1.1x reachable");
        assert!(k11 > k15, "weaker target allows larger h: {k11} vs {k15}");
        // The speedup at the knee bounds the target from above.
        let e = (k15 as f64 * 100.0 / 1024.0) as usize;
        assert!(c.speedup(16, 128, k15, e.max(1)) >= 1.5);
        assert!(c.speedup(16, 128, k15 * 2, (2 * e).max(1)) < 1.5);
    }

    #[test]
    fn unreachable_target_returns_none() {
        let c = paper();
        assert!(speedup_knee(&c, 16, 128, 100.0 / 1024.0, 100.0).is_none());
    }

    #[test]
    fn comm_share_decreases_with_h() {
        let c = paper();
        let small = comm_share(&c, 16, 128, 2048);
        let large = comm_share(&c, 16, 128, 16384);
        assert!(small > large);
        assert!((0.0..=1.0).contains(&small));
    }
}
