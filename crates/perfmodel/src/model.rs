//! The paper's §4.7 analytical cost model (Equations 1–3).

use serde::{Deserialize, Serialize};

/// Forward+backward FLOPs of one Transformer layer:
/// `96·B·s·h² + 16·B·s²·h` (§4.7, after Narayanan et al. 2021).
pub fn layer_flops(b: usize, s: usize, h: usize) -> f64 {
    let (b, s, h) = (b as f64, s as f64, h as f64);
    96.0 * b * s * h * h + 16.0 * b * s * s * h
}

/// Fitted coefficients of the cost model.
///
/// - `T_comp(F) = α · F` — compute time, linear in FLOPs, with α fitted at
///   the *largest* hidden size (peak utilization; the paper found that
///   fitting at small sizes mispredicts by up to 30×),
/// - `T_comm(E) = c` if `E < d`, else `β · E` — all-reduce time, piecewise
///   in message elements,
/// - `T_overhead(E) = γ · E` — the auto-encoder's encode+decode matmuls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfCoefficients {
    /// Seconds per FLOP across the tensor-parallel group.
    pub alpha: f64,
    /// Seconds per message element above the threshold.
    pub beta: f64,
    /// Seconds per element of auto-encoder overhead.
    pub gamma: f64,
    /// Constant communication time below the threshold (seconds).
    pub c: f64,
    /// Message-size threshold in elements (`d = 16·128·100 = 409600` in
    /// the paper's experiments).
    pub d: f64,
}

impl PerfCoefficients {
    /// Coefficients matching the paper's §4.7 experimental fit: a TP=4
    /// V100 group on the measured fabric, `c ≈ 0.2 ms`, `d = 409600`.
    pub fn paper() -> Self {
        PerfCoefficients {
            alpha: 1.38e-14 / 4.0, // fine-tune V100 rate across TP=4
            beta: 2.0e-9,
            gamma: 1.0e-10,
            c: 0.2e-3,
            d: 409_600.0,
        }
    }

    /// Compute time of `flops` floating-point operations (Eq. 1, first
    /// term).
    pub fn t_comp(&self, flops: f64) -> f64 {
        self.alpha * flops
    }

    /// All-reduce time of a message of `elems` elements (Eq. 1, second
    /// term; piecewise).
    pub fn t_comm(&self, elems: f64) -> f64 {
        if elems < self.d {
            self.c
        } else {
            self.beta * elems
        }
    }

    /// Auto-encoder encode+decode overhead for an activation of `elems`
    /// elements.
    pub fn t_overhead(&self, elems: f64) -> f64 {
        self.gamma * elems
    }

    /// Uncompressed per-layer time (Eq. 1): `T = T_comp + T_comm(Bsh)`.
    pub fn layer_time(&self, b: usize, s: usize, h: usize) -> f64 {
        self.t_comp(layer_flops(b, s, h)) + self.t_comm((b * s * h) as f64)
    }

    /// AE-compressed per-layer time:
    /// `T_AE = T_comp + T_comm(Bse) + T_overhead(Bsh)`.
    pub fn layer_time_ae(&self, b: usize, s: usize, h: usize, e: usize) -> f64 {
        self.t_comp(layer_flops(b, s, h))
            + self.t_comm((b * s * e) as f64)
            + self.t_overhead((b * s * h) as f64)
    }

    /// Single-node speedup `T / T_AE` (Eq. 2). Independent of layer count
    /// because every layer is identical.
    pub fn speedup(&self, b: usize, s: usize, h: usize, e: usize) -> f64 {
        self.layer_time(b, s, h) / self.layer_time_ae(b, s, h, e)
    }

    /// Cluster speedup with pipeline parallelism across `n` nodes (Eq. 3):
    ///
    /// ```text
    ///   ((m−1)/n + 1)·L·T    + (n−1)·Bsh/w
    ///   ─────────────────────────────────────
    ///   ((m−1)/n + 1)·L·T_AE + (n−1)·Bse/w
    /// ```
    ///
    /// where `m` is the micro-batch size (the paper's Eq. 3 notation),
    /// `L` the layer count and `w` the inter-node bandwidth in
    /// elements/second.
    #[allow(clippy::too_many_arguments)]
    pub fn cluster_speedup(
        &self,
        b: usize,
        s: usize,
        h: usize,
        e: usize,
        m: usize,
        n: usize,
        layers: usize,
        w_elems_per_s: f64,
    ) -> f64 {
        let occupancy = (m as f64 - 1.0) / n as f64 + 1.0;
        let l = layers as f64;
        let pipe = (n as f64 - 1.0) / w_elems_per_s;
        let num = occupancy * l * self.layer_time(b, s, h) + pipe * (b * s * h) as f64;
        let den = occupancy * l * self.layer_time_ae(b, s, h, e) + pipe * (b * s * e) as f64;
        num / den
    }

    /// Asymptotic speedup as `h → ∞` on a fixed cluster (Eq. 2 analysis):
    /// compression benefits vanish (→ 1).
    pub fn asymptotic_speedup(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_formula() {
        // Matches the paper's arithmetic at the fine-tuning point.
        let f = layer_flops(32, 512, 1024);
        assert!((f - 1.787e12).abs() / 1.787e12 < 0.01);
    }

    #[test]
    fn comm_is_piecewise() {
        let p = PerfCoefficients::paper();
        // Below threshold: constant c.
        assert_eq!(p.t_comm(1000.0), p.c);
        assert_eq!(p.t_comm(409_599.0), p.c);
        // Above: linear.
        assert!(p.t_comm(500_000.0) > p.c);
        assert!((p.t_comm(2e6) / p.t_comm(1e6) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ae_message_usually_below_threshold() {
        // The paper: Bse with e=100 is below d, so compressed comm ≈ c.
        let p = PerfCoefficients::paper();
        let elems = (16 * 128 * 100) as f64;
        assert!(elems <= p.d);
        assert_eq!(p.t_comm(elems - 1.0), p.c);
    }

    #[test]
    fn speedup_above_one_and_diminishing_in_h() {
        // Eq. 2's trend: benefits shrink as hidden size grows.
        let p = PerfCoefficients::paper();
        let s1 = p.speedup(16, 128, 4096, 100);
        let s2 = p.speedup(16, 128, 8192, 100);
        let s3 = p.speedup(16, 128, 25600, 100);
        assert!(s1 > 1.0, "speedup {s1}");
        assert!(s1 > s2 && s2 > s3, "{s1} {s2} {s3}");
        assert!(s3 > 0.9, "speedup cannot collapse below ~1: {s3}");
    }

    #[test]
    fn speedup_tends_to_one_asymptotically() {
        let p = PerfCoefficients::paper();
        let s = p.speedup(16, 128, 1 << 20, 100);
        assert!((s - p.asymptotic_speedup()).abs() < 0.05, "h→∞ speedup {s}");
    }

    #[test]
    fn cluster_speedup_recovers_eq2_at_one_node_one_microbatch() {
        let p = PerfCoefficients::paper();
        let a = p.cluster_speedup(16, 128, 6144, 100, 1, 1, 40, 1e9);
        let b = p.speedup(16, 128, 6144, 100);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn scaling_nodes_with_hidden_retains_speedup() {
        // The paper's conclusion: growing n alongside h keeps ~1.5×.
        let p = PerfCoefficients::paper();
        let fixed_nodes = p.cluster_speedup(16, 128, 25600, 100, 64, 1, 128, 0.4e9);
        let scaled_nodes = p.cluster_speedup(16, 128, 25600, 100, 64, 64, 128, 0.4e9);
        assert!(
            scaled_nodes > fixed_nodes,
            "scaling nodes should help: {scaled_nodes} vs {fixed_nodes}"
        );
    }
}
