//! Weak-scaling analysis (the paper's Table 10).
//!
//! The configurations follow Megatron's weak-scaling table (Narayanan et
//! al. 2021, Table 1): hidden size, layer count, node count and global
//! batch grow together; tensor parallelism stays at 4 and the micro-batch
//! at 16. The paper evaluates Eq. 3 on each row with AE dimension `e=100`.

use crate::model::PerfCoefficients;
use serde::{Deserialize, Serialize};

/// One weak-scaling configuration row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScalingConfig {
    /// Hidden size.
    pub hidden: usize,
    /// Number of Transformer layers.
    pub layers: usize,
    /// Number of nodes (pipeline stages).
    pub nodes: usize,
    /// Global batch size.
    pub batch: usize,
}

/// A computed weak-scaling row: configuration plus predicted speedup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingRow {
    /// The configuration.
    pub config: ScalingConfig,
    /// Predicted `T / T_AE` speedup under Eq. 3.
    pub speedup: f64,
}

/// The micro-batch size the paper fixes (16).
pub const MICRO_BATCH: usize = 16;
/// The AE code dimension the paper fixes (`e = 100`).
pub const AE_DIM: usize = 100;
/// Sequence length of the scaling study.
pub const SEQ: usize = 128;

/// The seven configurations of the paper's Table 10 (after Megatron's
/// Table 1).
pub fn table10_configs() -> Vec<ScalingConfig> {
    [
        (6144, 40, 1, 1024),
        (8192, 48, 2, 1536),
        (10240, 60, 4, 1792),
        (12288, 80, 8, 2304),
        (16384, 96, 16, 2176),
        (20480, 105, 35, 2528),
        (25600, 128, 64, 3072),
    ]
    .into_iter()
    .map(|(hidden, layers, nodes, batch)| ScalingConfig {
        hidden,
        layers,
        nodes,
        batch,
    })
    .collect()
}

/// The speedups the paper reports for those rows, in order.
pub fn table10_paper_speedups() -> Vec<f64> {
    vec![1.91, 1.75, 1.63, 1.55, 1.46, 1.46, 1.47]
}

/// Computes the weak-scaling table under the given coefficients and
/// inter-node bandwidth (elements/second).
pub fn weak_scaling(
    coeffs: &PerfCoefficients,
    configs: &[ScalingConfig],
    w_elems_per_s: f64,
) -> Vec<ScalingRow> {
    configs
        .iter()
        .map(|&config| {
            // Eq. 3 takes the micro-batch size as `m` (paper notation);
            // the global batch column is carried from Megatron's table
            // for reference but does not enter the formula.
            let speedup = coeffs.cluster_speedup(
                MICRO_BATCH,
                SEQ,
                config.hidden,
                AE_DIM,
                MICRO_BATCH,
                config.nodes,
                config.layers,
                w_elems_per_s,
            );
            ScalingRow { config, speedup }
        })
        .collect()
}

/// The effective inter-node bandwidth (elements/second): 10 Gbps TCP at
/// fp16 shared across the send/receive path, ~0.3 GB/s ÷ 2 B.
pub fn paper_bandwidth_elems() -> f64 {
    1.5e8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_matches_paper() {
        let rows = weak_scaling(
            &PerfCoefficients::paper(),
            &table10_configs(),
            paper_bandwidth_elems(),
        );
        let paper = table10_paper_speedups();
        assert_eq!(rows.len(), paper.len());

        // Row 1 near 1.91; all rows > 1.3; trend decreasing then flat.
        assert!(
            (rows[0].speedup - paper[0]).abs() < 0.35,
            "first row {} vs paper {}",
            rows[0].speedup,
            paper[0]
        );
        for (r, p) in rows.iter().zip(&paper) {
            assert!(r.speedup > 1.25, "{:?}", r);
            assert!(
                (r.speedup - p).abs() / p < 0.25,
                "row h={}: {} vs paper {p}",
                r.config.hidden,
                r.speedup
            );
        }
        // Monotone non-increasing until the plateau.
        for w in rows.windows(2).take(4) {
            assert!(w[0].speedup >= w[1].speedup - 0.02);
        }
    }

    #[test]
    fn fixed_cluster_speedup_decays_without_node_scaling() {
        // If nodes are NOT scaled up, the benefit diminishes with h —
        // the paper's closing observation.
        let p = PerfCoefficients::paper();
        let mut configs = table10_configs();
        for c in &mut configs {
            c.nodes = 1;
            c.batch = 1024;
        }
        let rows = weak_scaling(&p, &configs, paper_bandwidth_elems());
        assert!(rows.first().unwrap().speedup > rows.last().unwrap().speedup + 0.2);
    }
}
