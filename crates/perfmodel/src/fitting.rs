//! Fitting the §4.7 cost-model coefficients from measurements.
//!
//! The paper fits α from the wall-clock time at the *largest* hidden size
//! (where the GPU is closest to peak utilization — fitting at small sizes
//! mispredicted by up to 30×), β/c from a piecewise regression of
//! all-reduce times, and γ from the AE matmul times. These routines do the
//! same from `(x, time)` samples, which `actcomp-core` produces with the
//! cluster simulator (reproducing Figure 5's fit-vs-real panels).

use crate::model::PerfCoefficients;

/// Ordinary least-squares line `y = slope·x + intercept`.
///
/// # Panics
///
/// Panics with fewer than two points or zero variance in `x`.
pub fn least_squares_line(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "sample length mismatch");
    assert!(xs.len() >= 2, "need at least two samples");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
    }
    assert!(sxx > 0.0, "x has zero variance");
    let slope = sxy / sxx;
    (slope, my - slope * mx)
}

/// Fits `α` from the sample with the largest FLOP count (the paper's
/// peak-utilization rule).
///
/// # Panics
///
/// Panics on empty input.
pub fn fit_alpha(flops: &[f64], times: &[f64]) -> f64 {
    assert_eq!(flops.len(), times.len(), "sample length mismatch");
    let (i, _) = flops
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite flops"))
        .expect("at least one sample");
    times[i] / flops[i]
}

/// Fits the piecewise communication model given the threshold `d`:
/// `c` is the mean time of messages below `d`; `β` is the zero-intercept
/// slope over messages at/above `d`.
///
/// # Panics
///
/// Panics if either regime has no samples.
pub fn fit_comm(elems: &[f64], times: &[f64], d: f64) -> (f64, f64) {
    assert_eq!(elems.len(), times.len(), "sample length mismatch");
    let below: Vec<f64> = elems
        .iter()
        .zip(times)
        .filter(|(e, _)| **e < d)
        .map(|(_, t)| *t)
        .collect();
    let above: Vec<(f64, f64)> = elems
        .iter()
        .zip(times)
        .filter(|(e, _)| **e >= d)
        .map(|(e, t)| (*e, *t))
        .collect();
    assert!(!below.is_empty(), "no samples below threshold {d}");
    assert!(!above.is_empty(), "no samples above threshold {d}");
    let c = below.iter().sum::<f64>() / below.len() as f64;
    // Zero-intercept least squares: β = Σ e·t / Σ e².
    let num: f64 = above.iter().map(|(e, t)| e * t).sum();
    let den: f64 = above.iter().map(|(e, _)| e * e).sum();
    (c, num / den)
}

/// Fits `γ` (AE overhead per element) by zero-intercept least squares.
///
/// # Panics
///
/// Panics on empty input.
pub fn fit_gamma(elems: &[f64], times: &[f64]) -> f64 {
    assert_eq!(elems.len(), times.len(), "sample length mismatch");
    assert!(!elems.is_empty(), "need samples");
    let num: f64 = elems.iter().zip(times).map(|(e, t)| e * t).sum();
    let den: f64 = elems.iter().map(|e| e * e).sum();
    num / den
}

/// Fits a complete coefficient set from compute, communication, and
/// overhead samples.
pub fn fit_all(
    flops: &[f64],
    comp_times: &[f64],
    comm_elems: &[f64],
    comm_times: &[f64],
    overhead_elems: &[f64],
    overhead_times: &[f64],
    d: f64,
) -> PerfCoefficients {
    let alpha = fit_alpha(flops, comp_times);
    let (c, beta) = fit_comm(comm_elems, comm_times, d);
    let gamma = fit_gamma(overhead_elems, overhead_times);
    PerfCoefficients {
        alpha,
        beta,
        gamma,
        c,
        d,
    }
}

/// Mean relative error of predictions against ground truth (the fit
/// quality Figure 5 visualizes).
///
/// # Panics
///
/// Panics on empty or mismatched input.
pub fn mean_relative_error(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "sample length mismatch");
    assert!(!pred.is_empty(), "empty samples");
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs() / t.abs().max(1e-12))
        .sum::<f64>()
        / pred.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_fit_recovers_planted_coefficients() {
        let xs: Vec<f64> = (1..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.5 * x + 1.25).collect();
        let (slope, intercept) = least_squares_line(&xs, &ys);
        assert!((slope - 3.5).abs() < 1e-9);
        assert!((intercept - 1.25).abs() < 1e-9);
    }

    #[test]
    fn alpha_uses_peak_point() {
        // Small workloads run at poor utilization (inflated time); only
        // the largest point reflects α.
        let flops = [1e9, 1e10, 1e12];
        let times = [1e9 * 5e-14, 1e10 * 3e-14, 1e12 * 1e-14];
        let a = fit_alpha(&flops, &times);
        assert!((a - 1e-14).abs() < 1e-20);
    }

    #[test]
    fn comm_fit_recovers_piecewise_model() {
        let d = 1000.0;
        let elems: Vec<f64> = vec![10.0, 100.0, 500.0, 2000.0, 4000.0, 8000.0];
        let times: Vec<f64> = elems
            .iter()
            .map(|&e| if e < d { 2e-4 } else { 1e-7 * e })
            .collect();
        let (c, beta) = fit_comm(&elems, &times, d);
        assert!((c - 2e-4).abs() < 1e-9);
        assert!((beta - 1e-7).abs() < 1e-12);
    }

    #[test]
    fn gamma_fit_zero_intercept() {
        let elems = [1e5, 2e5, 4e5];
        let times: Vec<f64> = elems.iter().map(|e| 3e-10 * e).collect();
        assert!((fit_gamma(&elems, &times) - 3e-10).abs() < 1e-16);
    }

    #[test]
    fn fit_all_round_trips_through_model() {
        let truth = PerfCoefficients {
            alpha: 2e-14,
            beta: 1.5e-9,
            gamma: 2e-10,
            c: 1e-4,
            d: 1e5,
        };
        let flops: Vec<f64> = (1..=8).map(|i| i as f64 * 1e12).collect();
        let comp: Vec<f64> = flops.iter().map(|f| truth.t_comp(*f)).collect();
        let elems: Vec<f64> = vec![1e3, 1e4, 2e5, 1e6, 4e6];
        let comm: Vec<f64> = elems.iter().map(|e| truth.t_comm(*e)).collect();
        let oelems = [1e5, 1e6, 1e7];
        let over: Vec<f64> = oelems.iter().map(|e| truth.t_overhead(*e)).collect();
        let fitted = fit_all(&flops, &comp, &elems, &comm, &oelems, &over, truth.d);
        assert!((fitted.alpha - truth.alpha).abs() / truth.alpha < 1e-9);
        assert!((fitted.beta - truth.beta).abs() / truth.beta < 1e-9);
        assert!((fitted.gamma - truth.gamma).abs() / truth.gamma < 1e-9);
        assert!((fitted.c - truth.c).abs() / truth.c < 1e-9);
    }

    #[test]
    fn mre_zero_for_perfect_predictions() {
        assert_eq!(mean_relative_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((mean_relative_error(&[1.1], &[1.0]) - 0.1).abs() < 1e-9);
    }
}
