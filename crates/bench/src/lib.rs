//! # actcomp-bench
//!
//! Benchmark harnesses that regenerate every table and figure of *"Does
//! Compressing Activations Help Model Parallel Training?"* (MLSys 2024).
//!
//! Each `bin/` target reproduces one artifact and prints the paper's
//! reported numbers next to ours; `run_all` executes the full set and
//! writes JSON records plus a markdown summary under `results/`.
//!
//! Criterion micro-benchmarks for the compressor kernels, matmul, and the
//! simulators live under `benches/`.

pub mod paper;
pub mod util;
