//! The paper's reported numbers, transcribed from its tables for
//! side-by-side comparison. `None` marks cells the paper prints as
//! `>100,000`.

use actcomp_compress::spec::CompressorSpec;

/// One timing-table row: a `(TP, PP)` pair against the [`TIMING_SPECS`]
/// columns (`None` marks cells the paper prints as `>100,000`).
pub type TimingRow = ((usize, usize), Vec<Option<f64>>);

/// One Tables 11-14 row: a workload key against its three best
/// `((tp, pp), ms)` layouts.
pub type BaselineRow = ((bool, usize, usize), [((usize, usize), f64); 3]);

/// Column order of the timing tables.
pub const TIMING_SPECS: [CompressorSpec; 13] = {
    use CompressorSpec::*;
    [Baseline, A1, A2, T1, T2, T3, T4, R1, R2, R3, R4, Q1, Q2]
};

/// Table 2 — fine-tune iteration time (ms), NVLink, b=32 s=512.
/// Rows: (TP, PP); values aligned with [`TIMING_SPECS`].
pub fn table2() -> Vec<TimingRow> {
    vec![
        (
            (1, 4),
            ok(&[
                591.96, 591.36, 591.47, 594.81, 595.53, 599.65, 605.05, 749.56, 1008.64, 1824.36,
                5572.87, 595.29, 595.45,
            ]),
        ),
        (
            (2, 2),
            ok(&[
                440.71, 437.98, 444.02, 465.73, 473.64, 493.16, 528.93, 3377.59, 6616.30, 17117.01,
                71058.64, 489.27, 486.54,
            ]),
        ),
        (
            (4, 1),
            ok(&[
                261.48, 270.22, 275.54, 314.37, 323.90, 356.57, 409.23, 3254.01, 6561.22, 16990.88,
                65121.79, 347.68, 350.50,
            ]),
        ),
    ]
}

/// Table 3 — fine-tune iteration time (ms), w/o vs A1/A2, both machines.
/// `(with_nvlink, (tp, pp), [w/o, A1, A2])`.
pub fn table3() -> Vec<(bool, (usize, usize), [f64; 3])> {
    vec![
        (true, (1, 4), [591.96, 591.36, 591.47]),
        (true, (2, 2), [440.71, 437.98, 444.02]),
        (true, (4, 1), [261.48, 270.22, 275.54]),
        (false, (1, 4), [633.17, 620.10, 620.44]),
        (false, (2, 2), [646.14, 586.65, 595.25]),
        (false, (4, 1), [360.15, 296.17, 306.02]),
    ]
}

/// One breakdown row: forward, backward, optimizer, waiting & pipeline
/// comm, total, tensor enc, tensor dec, tensor comm (all ms; `None` where
/// the paper prints `\` or `>100,000`).
pub type BreakdownRow = [Option<f64>; 8];

/// Table 4 — fine-tune breakdown, TP=2 PP=2, no NVLink.
pub fn table4() -> Vec<(CompressorSpec, BreakdownRow)> {
    use CompressorSpec::*;
    vec![
        (
            Baseline,
            [
                Some(276.34),
                Some(354.16),
                Some(5.80),
                Some(9.83),
                Some(646.14),
                None,
                None,
                Some(150.72),
            ],
        ),
        (
            A1,
            [
                Some(213.83),
                Some(362.61),
                Some(6.16),
                Some(4.06),
                Some(586.65),
                Some(2.16),
                Some(3.12),
                Some(80.88),
            ],
        ),
        (
            A2,
            [
                Some(219.01),
                Some(366.51),
                Some(5.67),
                Some(4.07),
                Some(595.25),
                Some(3.12),
                Some(4.56),
                Some(84.48),
            ],
        ),
        (
            T1,
            [
                Some(298.93),
                Some(355.71),
                Some(6.79),
                Some(4.38),
                Some(665.81),
                Some(70.08),
                Some(13.68),
                Some(85.20),
            ],
        ),
        (
            T4,
            [
                Some(376.72),
                Some(359.19),
                Some(5.89),
                Some(6.60),
                Some(748.41),
                Some(74.88),
                Some(45.36),
                Some(124.56),
            ],
        ),
        (
            R1,
            [
                Some(2408.68),
                Some(357.02),
                Some(6.10),
                Some(7.68),
                Some(2779.49),
                Some(2040.24),
                Some(15.84),
                Some(104.16),
            ],
        ),
        (
            Q1,
            [
                Some(274.03),
                Some(354.56),
                Some(5.88),
                Some(7.98),
                Some(642.46),
                Some(20.64),
                Some(32.16),
                Some(91.68),
            ],
        ),
        (
            Q2,
            [
                Some(282.64),
                Some(354.55),
                Some(5.58),
                Some(7.58),
                Some(650.36),
                Some(19.92),
                Some(30.24),
                Some(104.64),
            ],
        ),
    ]
}

/// Table 5 — fine-tune GLUE scores, TP=2 PP=2, b=32 s=512.
/// `(spec, [MNLI, QQP, SST-2, MRPC, CoLA, QNLI, RTE, STS-B])` (MNLI-m).
pub fn table5() -> Vec<(CompressorSpec, [f64; 8])> {
    use CompressorSpec::*;
    vec![
        (
            Baseline,
            [88.07, 92.02, 95.07, 88.46, 62.22, 93.39, 82.67, 89.16],
        ),
        (A1, [85.42, 91.07, 92.09, 86.14, 54.18, 91.31, 70.04, 87.61]),
        (A2, [85.53, 91.24, 93.23, 85.86, 55.93, 91.01, 65.34, 87.76]),
        (T1, [32.05, 74.31, 83.60, 70.78, 0.00, 58.37, 51.99, 0.00]),
        (T2, [44.12, 39.68, 90.83, 78.09, 0.00, 84.42, 49.82, 62.70]),
        (T3, [36.12, 74.75, 90.25, 81.51, 0.00, 85.41, 54.15, 0.00]),
        (T4, [83.85, 56.39, 93.69, 83.65, 0.00, 90.54, 59.21, 86.02]),
        (Q1, [87.25, 91.71, 93.46, 87.01, 55.99, 61.38, 67.51, 88.02]),
        (Q2, [87.85, 91.93, 93.23, 87.42, 57.67, 93.01, 78.34, 87.43]),
    ]
}

/// Table 6 — pre-train iteration time (ms), 4 nodes, mb=128, s=128.
pub fn table6() -> Vec<TimingRow> {
    vec![
        (
            (2, 8),
            ok(&[
                1625.16,
                1550.18,
                1579.70,
                1508.34,
                1503.54,
                1593.37,
                1682.87,
                10308.03,
                20814.20,
                55925.28,
                f64::NAN,
                1759.27,
                1752.24,
            ]),
        ),
        (
            (4, 4),
            ok(&[
                1422.40,
                1242.97,
                1223.20,
                1360.37,
                1352.61,
                1410.47,
                1721.87,
                15433.12,
                31565.19,
                87421.46,
                f64::NAN,
                2435.03,
                2594.94,
            ]),
        ),
        (
            (8, 2),
            ok(&[
                15642.30,
                14577.29,
                14073.45,
                14308.12,
                14543.81,
                18919.92,
                27152.07,
                32522.47,
                61049.87,
                f64::NAN,
                f64::NAN,
                16414.57,
                16517.44,
            ]),
        ),
    ]
}

/// Table 7 — pre-train breakdown, TP=4 PP=4.
pub fn table7() -> Vec<(CompressorSpec, BreakdownRow)> {
    use CompressorSpec::*;
    vec![
        (
            Baseline,
            [
                Some(467.73),
                Some(419.26),
                Some(7.42),
                Some(527.99),
                Some(1422.40),
                None,
                None,
                Some(91.08),
            ],
        ),
        (
            A1,
            [
                Some(546.95),
                Some(455.26),
                Some(7.29),
                Some(233.47),
                Some(1242.97),
                Some(8.64),
                Some(16.20),
                Some(32.76),
            ],
        ),
        (
            A2,
            [
                Some(459.26),
                Some(467.51),
                Some(9.64),
                Some(286.78),
                Some(1223.20),
                Some(12.96),
                Some(20.52),
                Some(43.56),
            ],
        ),
        (
            T1,
            [
                Some(712.22),
                Some(423.91),
                Some(7.21),
                Some(217.03),
                Some(1360.37),
                Some(73.44),
                Some(140.4),
                Some(80.28),
            ],
        ),
        (
            Q1,
            [
                Some(803.63),
                Some(417.33),
                Some(8.61),
                Some(1205.46),
                Some(2435.03),
                Some(90.72),
                Some(304.56),
                Some(193.68),
            ],
        ),
        (
            Q2,
            [
                Some(805.33),
                Some(417.74),
                Some(7.55),
                Some(1364.32),
                Some(2594.94),
                Some(85.32),
                Some(271.08),
                Some(111.60),
            ],
        ),
    ]
}

/// Table 8 — fine-tune from a pre-trained checkpoint, TP=2 PP=2.
pub fn table8() -> Vec<(CompressorSpec, [f64; 8])> {
    use CompressorSpec::*;
    vec![
        (
            Baseline,
            [84.87, 91.25, 92.43, 86.84, 56.36, 92.26, 70.40, 86.83],
        ),
        (A2, [83.77, 91.14, 91.63, 86.55, 58.61, 91.96, 71.48, 87.16]),
        (T2, [61.06, 80.74, 80.16, 63.83, 10.01, 59.55, 47.29, 0.37]),
        (Q2, [84.47, 91.36, 93.23, 85.10, 58.84, 91.69, 71.84, 86.39]),
    ]
}

/// Table 9 — per-stage-pair pipeline communication time (ms):
/// `(boundary, w/o, A2)`.
pub fn table9() -> [(usize, f64, f64); 3] {
    [(0, 77.82, 76.13), (1, 88.69, 13.19), (2, 97.67, 14.09)]
}

/// Table 10 — weak-scaling speedups: `(hidden, speedup)`.
pub fn table10() -> [(usize, f64); 7] {
    [
        (6144, 1.91),
        (8192, 1.75),
        (10240, 1.63),
        (12288, 1.55),
        (16384, 1.46),
        (20480, 1.46),
        (25600, 1.47),
    ]
}

/// Tables 11–14 — fine-tune total time (ms) at smaller batch/seq. Keyed by
/// `(with_nvlink, batch, seq)`; rows as in [`table2`]'s layout but with Q3.
pub fn tables11_14_baselines() -> Vec<BaselineRow> {
    vec![
        (
            (true, 32, 128),
            [((1, 4), 151.82), ((2, 2), 145.58), ((4, 1), 136.66)],
        ),
        (
            (true, 8, 128),
            [((1, 4), 106.04), ((2, 2), 121.26), ((4, 1), 122.22)],
        ),
        (
            (false, 32, 128),
            [((1, 4), 154.82), ((2, 2), 184.48), ((4, 1), 212.76)],
        ),
        (
            (false, 8, 128),
            [((1, 4), 73.19), ((2, 2), 100.86), ((4, 1), 100.73)],
        ),
    ]
}

/// Table 15 — fine-tune GLUE scores at b=32, s=128 (TP=2 PP=2).
pub fn table15() -> Vec<(CompressorSpec, [f64; 8])> {
    use CompressorSpec::*;
    vec![
        (
            Baseline,
            [87.87, 91.96, 95.18, 87.71, 59.40, 92.99, 76.90, 88.43],
        ),
        (A1, [85.30, 91.28, 92.32, 84.58, 55.18, 90.87, 59.93, 87.92]),
        (A2, [85.25, 91.41, 93.23, 86.72, 57.02, 90.92, 64.26, 87.74]),
        (T4, [84.24, 89.17, 92.09, 81.68, 51.54, 91.71, 63.54, 84.80]),
        (Q1, [86.85, 91.50, 93.58, 86.96, 59.20, 92.24, 59.57, 86.89]),
        (Q2, [87.46, 91.82, 94.95, 87.48, 57.02, 93.36, 68.95, 87.84]),
    ]
}

/// Table 16 — fine-tune GLUE scores at b=8, s=128 (TP=2 PP=2).
pub fn table16() -> Vec<(CompressorSpec, [f64; 8])> {
    use CompressorSpec::*;
    vec![
        (
            Baseline,
            [86.23, 91.22, 91.74, 88.17, 59.02, 92.09, 78.70, 88.40],
        ),
        (A1, [82.49, 89.93, 91.85, 82.43, 43.56, 89.84, 47.29, 87.03]),
        (A2, [82.18, 90.45, 90.52, 83.54, 0.00, 89.02, 62.82, 87.66]),
        (T4, [83.99, 35.78, 68.30, 83.54, 47.33, 60.52, 64.62, 86.72]),
        (Q1, [84.91, 90.54, 92.43, 85.91, 53.25, 60.68, 57.04, 87.91]),
        (Q2, [85.66, 90.99, 91.74, 86.84, 53.92, 91.31, 75.81, 88.19]),
    ]
}

fn ok(vals: &[f64]) -> Vec<Option<f64>> {
    vals.iter()
        .map(|v| if v.is_nan() { None } else { Some(*v) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_well_formed() {
        for (_, row) in table2() {
            assert_eq!(row.len(), TIMING_SPECS.len());
        }
        for (_, row) in table6() {
            assert_eq!(row.len(), TIMING_SPECS.len());
        }
        assert_eq!(table5().len(), 9);
        assert_eq!(table10().len(), 7);
        // The >100,000 cells parse as None.
        let t6 = table6();
        assert!(t6[0].1[10].is_none()); // R4 at TP=2, PP=8
    }
}
