//! Shared harness utilities: CLI flags, result output, comparisons.

use actcomp_core::report::{write_records, Record, Table};
use std::path::PathBuf;

/// Common harness options parsed from the command line.
#[derive(Debug, Clone)]
pub struct Options {
    /// Reduced setting matrix (for smoke runs): `--quick`.
    pub quick: bool,
    /// Optimizer steps override for accuracy runs: `--steps N`.
    pub steps: Option<usize>,
    /// Output directory for JSON records (default `results/`).
    pub out_dir: PathBuf,
}

impl Options {
    /// Parses `std::env::args`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let steps = args
            .iter()
            .position(|a| a == "--steps")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok());
        let out_dir = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results"));
        Options {
            quick,
            steps,
            out_dir,
        }
    }
}

impl Default for Options {
    fn default() -> Self {
        Options {
            quick: false,
            steps: None,
            out_dir: PathBuf::from("results"),
        }
    }
}

/// Prints a table and writes its records, reporting any I/O failure to
/// stderr without aborting the harness.
pub fn emit(opts: &Options, name: &str, table: &Table, records: &[Record]) {
    println!("{table}");
    let path = opts.out_dir.join(format!("{name}.json"));
    if let Err(e) = write_records(&path, records) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[records written to {}]\n", path.display());
    }
}

/// Formats a paper-vs-measured cell: `"measured (paper P)"`.
pub fn vs(measured: f64, paper: Option<f64>) -> String {
    match paper {
        Some(p) => format!("{measured:.2} ({p:.2})"),
        None => format!("{measured:.2} (—)"),
    }
}

/// Builds a [`Record`].
pub fn record(
    experiment: &str,
    setting: impl Into<String>,
    paper: Option<f64>,
    measured: f64,
    unit: &str,
) -> Record {
    Record {
        experiment: experiment.to_string(),
        setting: setting.into(),
        paper,
        measured,
        unit: unit.to_string(),
    }
}
