//! Table 10 — weak-scaling speedup of AE compression (Eq. 3) over the
//! Megatron scaling configurations.

use actcomp_bench::{paper, util};
use actcomp_core::report::Table;
use actcomp_perfmodel::scaling::{paper_bandwidth_elems, table10_configs};
use actcomp_perfmodel::{weak_scaling, PerfCoefficients};

fn main() {
    let opts = util::Options::from_args();
    let rows = weak_scaling(
        &PerfCoefficients::paper(),
        &table10_configs(),
        paper_bandwidth_elems(),
    );
    let mut table = Table::new(
        "Table 10 — weak-scaling speedup [ours (paper)]",
        ["hidden", "layers", "nodes", "batch", "speedup"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    let mut records = Vec::new();
    for (row, (h, paper_speedup)) in rows.iter().zip(paper::table10()) {
        assert_eq!(row.config.hidden, h);
        table.push_row(vec![
            row.config.hidden.to_string(),
            row.config.layers.to_string(),
            row.config.nodes.to_string(),
            row.config.batch.to_string(),
            format!("{:.2}x ({paper_speedup:.2}x)", row.speedup),
        ]);
        records.push(util::record(
            "table10",
            format!("h={h}"),
            Some(paper_speedup),
            row.speedup,
            "ratio",
        ));
    }
    util::emit(&opts, "table10", &table, &records);
}
