//! Figure 5 — fitting the §4.7 cost model and checking it against
//! "measurements" (our cluster simulator standing in for the testbed):
//! (a) compute time vs hidden size, (b) all-reduce time vs hidden size,
//! (c) AE overhead vs hidden size, (d) predicted AE speedup.

use actcomp_bench::util;
use actcomp_compress::cost::CostModel;
use actcomp_compress::spec::CompressorSpec;
use actcomp_core::report::Table;
use actcomp_distsim::collective::allreduce_time;
use actcomp_distsim::{calibration, LinkSpec};
use actcomp_perfmodel::fitting;
use actcomp_perfmodel::layer_flops;

/// The single-layer, TP=4 microbenchmark the paper fits on (b=16, s=128).
const B: usize = 16;
const S: usize = 128;
const TP: usize = 4;

fn main() {
    let opts = util::Options::from_args();
    let hiddens = [1024usize, 2048, 4096, 6144, 8192, 12288, 16384];
    let gpu = calibration::v100_finetune();
    // The paper measures on the fabric where communication matters;
    // NVLink leaves nothing to fit (panel d would sit at 1.0x).
    let link = LinkSpec::pcie_shared();
    let cost = CostModel::v100();

    // "Measurements" from the simulator. α is fitted against the FULL
    // per-layer FLOPs with the per-GPU wall time, so it absorbs the 1/TP
    // sharding (this is what Eq. 1's α means on a TP group).
    let flops: Vec<f64> = hiddens.iter().map(|&h| layer_flops(B, S, h)).collect();
    let comp_times: Vec<f64> = flops
        .iter()
        .map(|f| f / TP as f64 * gpu.sec_per_flop)
        .collect();
    let comm_elems: Vec<f64> = hiddens
        .iter()
        .map(|&h| (B * S * h) as f64)
        .chain([1e3, 1e4, 1e5]) // sub-threshold points
        .collect();
    let comm_times: Vec<f64> = comm_elems
        .iter()
        .map(|&e| allreduce_time(&link, TP, (e as usize) * 2).max(2e-4))
        .collect();
    let overhead_elems: Vec<f64> = hiddens.iter().map(|&h| (B * S * h) as f64).collect();
    let overhead_times: Vec<f64> = hiddens
        .iter()
        .map(|&h| {
            let c = cost.codec_cost(CompressorSpec::A2, B * S * h, h);
            c.encode_s + c.decode_s
        })
        .collect();

    // Fit the model exactly the way §4.7 does.
    let d = 409_600.0;
    let coeffs = fitting::fit_all(
        &flops,
        &comp_times,
        &comm_elems,
        &comm_times,
        &overhead_elems,
        &overhead_times,
        d,
    );
    println!(
        "fitted: alpha={:.3e} s/FLOP, beta={:.3e} s/elem, gamma={:.3e} s/elem, c={:.2e} s\n",
        coeffs.alpha, coeffs.beta, coeffs.gamma, coeffs.c
    );

    let mut table = Table::new(
        "Figure 5 — cost-model fit vs simulator (1 layer, TP=4, b=16 s=128)",
        [
            "hidden",
            "comp real (ms)",
            "comp fit (ms)",
            "comm real (ms)",
            "comm fit (ms)",
            "AE ovh real (ms)",
            "AE ovh fit (ms)",
            "speedup T/T_AE",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
    );
    let mut records = Vec::new();
    let mut comp_pred = Vec::new();
    let mut comm_pred = Vec::new();
    for (i, &h) in hiddens.iter().enumerate() {
        let e = 100 * h / 1024; // A2's scaled code dim
        let cp = coeffs.t_comp(flops[i]);
        let cm = coeffs.t_comm((B * S * h) as f64);
        let ov = coeffs.t_overhead((B * S * h) as f64);
        let speedup = coeffs.speedup(B, S, h, e.max(1));
        comp_pred.push(cp);
        comm_pred.push(cm);
        table.push_row(vec![
            h.to_string(),
            format!("{:.2}", comp_times[i] * 1e3),
            format!("{:.2}", cp * 1e3),
            format!("{:.2}", comm_times[i] * 1e3),
            format!("{:.2}", cm * 1e3),
            format!("{:.2}", overhead_times[i] * 1e3),
            format!("{:.2}", ov * 1e3),
            format!("{speedup:.2}x"),
        ]);
        records.push(util::record(
            "figure5",
            format!("h={h} speedup"),
            None,
            speedup,
            "ratio",
        ));
    }
    let comp_mre = fitting::mean_relative_error(&comp_pred, &comp_times);
    let comm_mre = fitting::mean_relative_error(&comm_pred, &comm_times[..hiddens.len()]);
    util::emit(&opts, "figure5", &table, &records);
    println!(
        "fit quality: compute MRE {:.1}%, comm MRE {:.1}%",
        comp_mre * 100.0,
        comm_mre * 100.0
    );
    println!("Paper's trend: the speedup from AE compression diminishes as hidden size grows.");
}
