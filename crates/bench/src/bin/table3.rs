//! Table 3 — fine-tuning iteration time with vs. without NVLink,
//! uncompressed vs. A1/A2 (the paper's headline 17.8% AE speedup).

use actcomp_bench::{paper, util};
use actcomp_compress::spec::CompressorSpec;
use actcomp_core::report::Table;
use actcomp_core::throughput::{finetune_breakdown, Machine};

fn main() {
    let opts = util::Options::from_args();
    let mut table = Table::new(
        "Table 3 — fine-tune iteration time (ms), with/without NVLink [ours (paper)]",
        vec![
            "Machine".into(),
            "Setting".into(),
            "w/o".into(),
            "A1".into(),
            "A2".into(),
            "best speedup".into(),
        ],
    );
    let mut records = Vec::new();

    for (nvlink, (tp, pp), paper_vals) in paper::table3() {
        let machine = if nvlink {
            Machine::AwsP3
        } else {
            Machine::LocalPcie
        };
        let specs = [
            CompressorSpec::Baseline,
            CompressorSpec::A1,
            CompressorSpec::A2,
        ];
        let ours: Vec<f64> = specs
            .iter()
            .map(|s| finetune_breakdown(machine, tp, pp, 32, 512, *s).total_ms)
            .collect();
        for ((spec, our), paper_val) in specs.iter().zip(&ours).zip(paper_vals) {
            records.push(util::record(
                "table3",
                format!(
                    "{} TP={tp},PP={pp} {spec}",
                    if nvlink { "NVLink" } else { "PCIe" }
                ),
                Some(paper_val),
                *our,
                "ms",
            ));
        }
        let speedup = ours[0] / ours[1].min(ours[2]);
        table.push_row(vec![
            if nvlink {
                "With NVLink"
            } else {
                "Without NVLink"
            }
            .into(),
            format!("TP={tp}, PP={pp}"),
            util::vs(ours[0], Some(paper_vals[0])),
            util::vs(ours[1], Some(paper_vals[1])),
            util::vs(ours[2], Some(paper_vals[2])),
            format!("{speedup:.3}x"),
        ]);
    }
    util::emit(&opts, "table3", &table, &records);
    println!(
        "Paper headline: up to 17.8% end-to-end AE speedup without NVLink; \
         no meaningful speedup with NVLink."
    );
}
