//! Ablation: GPipe flush vs 1F1B (Megatron's schedule) under the paper's
//! pre-training stage timings — confirming the schedule choice does not
//! confound the compression comparison (equal makespan; only memory
//! differs, which the study doesn't measure).

use actcomp_bench::util;
use actcomp_core::report::Table;
use actcomp_distsim::pipeline::{simulate_gpipe, BoundaryTiming, StageTiming};
use actcomp_distsim::schedule::simulate_1f1b;

fn main() {
    let opts = util::Options::from_args();
    let mut table = Table::new(
        "Ablation — GPipe vs 1F1B makespan (uniform stages + paper-like timings)",
        ["config", "GPipe (ms)", "1F1B (ms)", "delta"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    let mut records = Vec::new();
    let cases = [
        (
            "p=4 m=8 (pre-train shape)",
            4usize,
            8usize,
            59.8e-3,
            65.4e-3,
            44.8e-3,
        ),
        ("p=4 m=32", 4, 32, 59.8e-3, 65.4e-3, 44.8e-3),
        ("p=8 m=8", 8, 8, 30.0e-3, 33.0e-3, 44.8e-3),
        (
            "p=2 m=1 (fine-tune shape)",
            2,
            1,
            150.0e-3,
            200.0e-3,
            3.0e-3,
        ),
    ];
    for (label, p, m, tf, tb, comm) in cases {
        let stages = vec![
            StageTiming {
                fwd_s: tf,
                bwd_s: tb
            };
            p
        ];
        let bounds = vec![
            BoundaryTiming {
                fwd_s: comm,
                bwd_s: comm
            };
            p - 1
        ];
        let g = simulate_gpipe(&stages, &bounds, m).makespan_s * 1e3;
        let f = simulate_1f1b(&stages, &bounds, m).makespan_s * 1e3;
        table.push_row(vec![
            label.to_string(),
            format!("{g:.1}"),
            format!("{f:.1}"),
            format!("{:+.2}%", 100.0 * (f - g) / g),
        ]);
        records.push(util::record(
            "ablation_schedule",
            format!("{label} gpipe"),
            None,
            g,
            "ms",
        ));
        records.push(util::record(
            "ablation_schedule",
            format!("{label} 1f1b"),
            None,
            f,
            "ms",
        ));
    }
    util::emit(&opts, "ablation_schedule", &table, &records);
    println!(
        "With zero-cost boundaries the two schedules' makespans coincide \
         exactly (the textbook same-bubble result; see schedule tests). \
         With *blocking* stage transfers — what this simulator models — \
         1F1B pays the boundary latency inside every steady-state cycle \
         while GPipe's phase separation pipelines it, so GPipe reads \
         faster here. Real Megatron overlaps sends, landing in between; \
         either way the schedule applies equally to every compressor, so \
         it does not confound the paper's comparisons."
    );
}
