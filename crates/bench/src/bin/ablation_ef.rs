//! Ablation: does error feedback (§3.3's extension hook) rescue the
//! accuracy that lossy compressors cost? Fine-tunes with EF on/off for
//! the compressors the paper found accuracy-harmful.

use actcomp_bench::util;
use actcomp_compress::spec::CompressorSpec;
use actcomp_core::report::Table;
use actcomp_core::{accuracy, AccuracyConfig};
use actcomp_data::GlueTask;

fn main() {
    let opts = util::Options::from_args();
    let tasks = if opts.quick {
        vec![GlueTask::Sst2]
    } else {
        vec![GlueTask::Sst2, GlueTask::Cola]
    };
    let mut table = Table::new(
        "Ablation — error feedback on/off (fine-tune accuracy)",
        ["setting", "task", "plain", "with EF"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    let mut records = Vec::new();
    for spec in [CompressorSpec::T2, CompressorSpec::Q1] {
        for &task in &tasks {
            let mut plain_cfg = AccuracyConfig::paper_default().with_spec(spec);
            let mut ef_cfg = plain_cfg.clone().with_error_feedback();
            if let Some(steps) = opts.steps {
                plain_cfg.steps = steps;
                ef_cfg.steps = steps;
            }
            let plain = accuracy::finetune(&plain_cfg, task).score;
            let ef = accuracy::finetune(&ef_cfg, task).score;
            eprintln!("  [{spec} {}] plain {plain:.1} vs EF {ef:.1}", task.name());
            table.push_row(vec![
                spec.label().to_string(),
                task.name().to_string(),
                format!("{plain:.1}"),
                format!("{ef:.1}"),
            ]);
            records.push(util::record(
                "ablation_ef",
                format!("{spec} {} plain", task.name()),
                None,
                plain,
                "score",
            ));
            records.push(util::record(
                "ablation_ef",
                format!("{spec} {} ef", task.name()),
                None,
                ef,
                "score",
            ));
        }
    }
    util::emit(&opts, "ablation_ef", &table, &records);
    println!(
        "Error feedback helps quantization (telescoping repeated bias) but \
         hurts aggressive sparsification: the Top-K residual is most of a \
         stale batch's activation, and re-injecting it perturbs the current \
         forward pass — EF's gradient-sum guarantee does not transfer to \
         activations."
    );
}
