//! Micro-benchmark for the blocked matmul kernels in `actcomp-tensor`.
//!
//! Measures GFLOP/s for each kernel variant (`A@B`, `Aᵀ@B`, `A@Bᵀ`) at
//! the shapes the BERT configs actually exercise, single- vs
//! pooled-thread, and records the speedup over a faithful copy of the
//! *seed* kernels (the pre-blocking `i-k-j` loops, skip-branch included)
//! so the before/after is part of the artifact. A second section
//! measures the graph executor's GEMM-epilogue fusion against both the
//! unfused plan (same kernels, separate elementwise passes) and a frozen
//! copy of the PR 4 path (separate bias/GELU passes with the libm tanh),
//! and a third records the workspace planner's peak bytes for an 8-layer
//! FFN/LN stack against the hand-threaded `_ws` baseline. Results land
//! in `BENCH_kernels.json` at the repo root, next to
//! `BENCH_runtime.json`; CI runs this bin with `--quick` and fails if
//! the file is missing or malformed.
//!
//! The thread-pool width honors `ACTCOMP_THREADS` (the same spec the
//! library itself reads); `available_parallelism` is recorded so a
//! pool that cannot help (1-core runner) is visible in the artifact,
//! and any case where the pool adds less than 5% is flagged.

use actcomp_bench::util;
use actcomp_core::report::Table;
use actcomp_tensor::graph::Graph;
use actcomp_tensor::plan::{CompiledPlan, FusePolicy, OutBind};
use actcomp_tensor::{kernels, pool, Workspace};
use std::time::Instant;

/// One row of `BENCH_kernels.json`.
#[derive(serde::Serialize)]
struct CaseResult {
    label: String,
    variant: String,
    m: usize,
    k: usize,
    n: usize,
    seed_gflops: f64,
    gflops_1t: f64,
    gflops_multi: f64,
    multi_threads: usize,
    speedup_1t_vs_seed: f64,
    /// `gflops_multi / gflops_1t`.
    pool_gain: f64,
    /// True when the pool added less than 5% over one thread — either a
    /// scheduling regression or a runner without spare cores.
    pool_gain_below_5pct: bool,
}

/// One fused-vs-unfused comparison in `BENCH_kernels.json`.
#[derive(serde::Serialize)]
struct FusionResult {
    label: String,
    m: usize,
    k: usize,
    n: usize,
    /// Frozen PR 4 path: blocked GEMM, then separate bias/activation
    /// passes using `f32::tanh`.
    pr4_gflops: f64,
    /// Same graph compiled with `FusePolicy::None`: identical kernels,
    /// epilogue ops run as separate planned elementwise steps.
    unfused_gflops: f64,
    /// Graph compiled with `FusePolicy::Auto`: elementwise chain applied
    /// in the GEMM's register-tile epilogue.
    fused_gflops: f64,
    fused_vs_pr4: f64,
    fused_vs_unfused: f64,
}

/// Workspace-planner section of `BENCH_kernels.json`.
#[derive(serde::Serialize)]
struct PlannerResult {
    config: String,
    layers: usize,
    tokens: usize,
    hidden: usize,
    ff_hidden: usize,
    /// Liveness-planned peak of the compiled 8-layer plan.
    peak_workspace_bytes: usize,
    /// What the hand-threaded `_ws` style would lease: one buffer per
    /// non-input value, all live at once.
    unfused_ws_baseline_bytes: usize,
    /// `unfused_ws_baseline_bytes / peak_workspace_bytes`.
    reuse_ratio: f64,
}

/// Top-level `BENCH_kernels.json` document.
#[derive(serde::Serialize)]
struct BenchDoc {
    bench: String,
    quick: bool,
    iters_per_case: usize,
    available_parallelism: usize,
    pool_threads: usize,
    cases: Vec<CaseResult>,
    fusion: Vec<FusionResult>,
    planner: PlannerResult,
}

/// The seed crate's matmul kernels, copied verbatim (including the
/// `av == 0.0` skip branch) so the "before" side of the speedup stays
/// measurable after the real kernels replaced them.
mod seed {
    pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    pub fn matmul_tn(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let arow = &a[p * m..(p + 1) * m];
            let brow = &b[p * n..(p + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    pub fn matmul_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                out[i * n + j] = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
            }
        }
        out
    }
}

/// The PR 4 unfused layer path, frozen verbatim as the "before" side of
/// the fusion comparison: the blocked GEMM writes the full output, then
/// a separate row-broadcast bias pass re-reads it, then a separate GELU
/// pass re-reads it again — with the tanh-GELU computed through
/// `f32::tanh`, as `Tensor::gelu` did before the fused epilogues (and
/// the rational fast-tanh) landed.
mod pr4 {
    use actcomp_tensor::{kernels, Workspace};

    const SQRT_2_OVER_PI: f32 = 0.797_884_6;

    fn gelu_libm(x: f32) -> f32 {
        0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044715 * x * x * x)).tanh())
    }

    /// `gelu(x·W + b)` as three full passes over the `[m, n]` output.
    #[allow(clippy::too_many_arguments)]
    pub fn linear_bias_gelu(
        out: &mut [f32],
        x: &[f32],
        w: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        n: usize,
        threads: usize,
        ws: &mut Workspace,
    ) {
        kernels::gemm_nn(out, false, x, w, m, k, n, threads, ws);
        for row in out.chunks_mut(n) {
            for (o, &b) in row.iter_mut().zip(bias) {
                *o += b;
            }
        }
        for o in out.iter_mut() {
            *o = gelu_libm(*o);
        }
    }

    /// `x·W + b` as two passes (the bias-only projections).
    #[allow(clippy::too_many_arguments)]
    pub fn linear_bias(
        out: &mut [f32],
        x: &[f32],
        w: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        n: usize,
        threads: usize,
        ws: &mut Workspace,
    ) {
        kernels::gemm_nn(out, false, x, w, m, k, n, threads, ws);
        for row in out.chunks_mut(n) {
            for (o, &b) in row.iter_mut().zip(bias) {
                *o += b;
            }
        }
    }
}

/// One benchmarked configuration.
struct Case {
    /// Human-readable provenance of the shape.
    label: &'static str,
    /// `nn`, `tn`, or `nt`.
    variant: &'static str,
    m: usize,
    k: usize,
    n: usize,
}

/// BERT-config shapes: BERT-Base projections/FFN at micro-batch 8 ×
/// seq 128 rows, per-head attention score/context products, backward
/// weight-gradient shapes — plus the 512³ headline shape the acceptance
/// criterion is stated against.
const CASES: &[Case] = &[
    Case {
        label: "headline 512^3",
        variant: "nn",
        m: 512,
        k: 512,
        n: 512,
    },
    Case {
        label: "headline 512^3",
        variant: "tn",
        m: 512,
        k: 512,
        n: 512,
    },
    Case {
        label: "headline 512^3",
        variant: "nt",
        m: 512,
        k: 512,
        n: 512,
    },
    Case {
        label: "qkv/out proj fwd",
        variant: "nn",
        m: 1024,
        k: 768,
        n: 768,
    },
    Case {
        label: "ffn up fwd",
        variant: "nn",
        m: 1024,
        k: 768,
        n: 3072,
    },
    Case {
        label: "weight grad (xT dy)",
        variant: "tn",
        m: 768,
        k: 1024,
        n: 768,
    },
    Case {
        label: "input grad (dy wT)",
        variant: "nt",
        m: 1024,
        k: 768,
        n: 768,
    },
    Case {
        label: "attn scores (q kT)",
        variant: "nt",
        m: 128,
        k: 64,
        n: 128,
    },
];

/// In `--quick` mode only the headline shapes run (CI smoke); the
/// fusion and planner sections always run because CI asserts on them.
fn active_cases(quick: bool) -> Vec<&'static Case> {
    CASES
        .iter()
        .filter(|c| !quick || c.label.starts_with("headline"))
        .collect()
}

/// Best-of-`iters` wall time of `f`, after one warmup call.
fn time_best(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn filled(len: usize, scale: f32) -> Vec<f32> {
    (0..len)
        .map(|i| (((i * 13 + 5) % 31) as f32 - 15.0) * scale)
        .collect()
}

/// `act = gelu(x·W + b)` as a graph, compiled with the given policy.
fn linear_gelu_plan(m: usize, k: usize, n: usize, policy: FusePolicy) -> CompiledPlan {
    let mut g = Graph::new();
    let gx = g.input(m, k);
    let gw = g.input(k, n);
    let gb = g.input_vec(n);
    let y = g.matmul(gx, gw);
    let h = g.bias_add(y, gb);
    let act = g.gelu(h);
    g.mark_output(act);
    g.compile(policy).expect("linear+bias+gelu graph")
}

/// `y = x·W + b` as a graph, compiled with the given policy.
fn linear_bias_plan(m: usize, k: usize, n: usize, policy: FusePolicy) -> CompiledPlan {
    let mut g = Graph::new();
    let gx = g.input(m, k);
    let gw = g.input(k, n);
    let gb = g.input_vec(n);
    let y = g.matmul(gx, gw);
    let h = g.bias_add(y, gb);
    g.mark_output(h);
    g.compile(policy).expect("linear+bias graph")
}

/// Compiles the "8-layer bench config": eight chained FFN blocks with
/// residual adds and layer norms at BERT-Base width (the attention
/// softmax lives outside the IR, so this is the planner's view of a
/// layer). The unfused `_ws` baseline is one live buffer per non-input
/// value — exactly what the hand-threaded code used to lease.
fn planner_stack(layers: usize, tokens: usize, hidden: usize, ff: usize) -> CompiledPlan {
    let mut g = Graph::new();
    let mut x = g.input(tokens, hidden);
    let w1 = g.input(hidden, ff);
    let b1 = g.input_vec(ff);
    let w2 = g.input(ff, hidden);
    let b2 = g.input_vec(hidden);
    let gamma = g.input_vec(hidden);
    let beta = g.input_vec(hidden);
    for _ in 0..layers {
        let y1 = g.matmul(x, w1);
        let h1 = g.bias_add(y1, b1);
        let a = g.gelu(h1);
        let y2 = g.matmul(a, w2);
        let f = g.bias_add(y2, b2);
        let r = g.residual_add(f, x);
        let (y, _xhat, _inv_std) = g.layernorm(r, gamma, beta, 1e-5);
        x = y;
    }
    g.mark_output(x);
    g.compile(FusePolicy::Auto).expect("8-layer planner stack")
}

/// Measures the fused / unfused / frozen-PR4 variants of one fusible
/// layer segment.
#[allow(clippy::too_many_arguments)]
fn fusion_case(
    label: &str,
    m: usize,
    k: usize,
    n: usize,
    with_gelu: bool,
    iters: usize,
    threads: usize,
    ws: &mut Workspace,
) -> FusionResult {
    let flops = 2.0 * (m * k * n) as f64;
    let gf = |secs: f64| flops / secs / 1e9;
    let x = filled(m * k, 0.03125);
    let w = filled(k * n, 0.0625);
    let bias = filled(n, 0.125);
    let mut out = vec![0.0f32; m * n];

    let pr4_s = time_best(iters, || {
        if with_gelu {
            pr4::linear_bias_gelu(&mut out, &x, &w, &bias, m, k, n, threads, ws);
        } else {
            pr4::linear_bias(&mut out, &x, &w, &bias, m, k, n, threads, ws);
        }
        std::hint::black_box(&out);
    });

    let build = |policy| {
        if with_gelu {
            linear_gelu_plan(m, k, n, policy)
        } else {
            linear_bias_plan(m, k, n, policy)
        }
    };
    let unfused = build(FusePolicy::None);
    let unfused_s = time_best(iters, || {
        let res = unfused.run(&[&x, &w, &bias], vec![OutBind::Write(&mut out)], ws);
        std::hint::black_box(&res);
    });
    let fused = build(FusePolicy::Auto);
    let fused_s = time_best(iters, || {
        let res = fused.run(&[&x, &w, &bias], vec![OutBind::Write(&mut out)], ws);
        std::hint::black_box(&res);
    });

    FusionResult {
        label: label.to_string(),
        m,
        k,
        n,
        pr4_gflops: gf(pr4_s),
        unfused_gflops: gf(unfused_s),
        fused_gflops: gf(fused_s),
        fused_vs_pr4: pr4_s / fused_s,
        fused_vs_unfused: unfused_s / fused_s,
    }
}

fn main() {
    let opts = util::Options::from_args();
    let iters = if opts.quick { 2 } else { 5 };
    let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
    // The pool width the library itself would pick: `ACTCOMP_THREADS`
    // if set, otherwise the machine's parallelism.
    let multi = pool::configured_threads().max(1);
    let mut ws = Workspace::new();
    let mut table = Table::new(
        "Blocked kernels vs seed kernels (GFLOP/s, best of several runs)",
        [
            "Shape",
            "Variant",
            "Seed",
            "Blocked 1T",
            &format!("Blocked {multi}T"),
            "Speedup 1T",
            "Pool gain",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
    );
    let mut entries = Vec::new();
    for case in active_cases(opts.quick) {
        let (m, k, n) = (case.m, case.k, case.n);
        let flops = 2.0 * (m * k * n) as f64;
        let gf = |secs: f64| flops / secs / 1e9;
        let (a_len, b_len) = match case.variant {
            "tn" => (k * m, k * n),
            "nt" => (m * k, n * k),
            _ => (m * k, k * n),
        };
        let a = filled(a_len, 0.03125);
        let b = filled(b_len, 0.0625);
        let mut out = vec![0.0f32; m * n];

        let seed_s = time_best(iters, || {
            let r = match case.variant {
                "tn" => seed::matmul_tn(&a, &b, k, m, n),
                "nt" => seed::matmul_nt(&a, &b, m, k, n),
                _ => seed::matmul(&a, &b, m, k, n),
            };
            std::hint::black_box(&r);
        });
        let run_blocked = |threads: usize, ws: &mut Workspace, out: &mut [f32]| match case.variant {
            "tn" => kernels::gemm_tn(out, false, &a, &b, k, m, n, threads, ws),
            "nt" => kernels::gemm_nt(out, false, &a, &b, m, k, n, threads, ws),
            _ => kernels::gemm_nn(out, false, &a, &b, m, k, n, threads, ws),
        };
        let one_s = time_best(iters, || {
            run_blocked(1, &mut ws, &mut out);
            std::hint::black_box(&out);
        });
        let multi_s = time_best(iters, || {
            run_blocked(multi, &mut ws, &mut out);
            std::hint::black_box(&out);
        });

        let speedup = seed_s / one_s;
        let pool_gain = one_s / multi_s;
        let flagged = pool_gain < 1.05;
        table.push_row(vec![
            format!("{}x{}x{} ({})", m, k, n, case.label),
            case.variant.to_string(),
            format!("{:.2}", gf(seed_s)),
            format!("{:.2}", gf(one_s)),
            format!("{:.2}", gf(multi_s)),
            format!("{:.2}x", speedup),
            format!("{:.2}x{}", pool_gain, if flagged { " [<5%]" } else { "" }),
        ]);
        entries.push(CaseResult {
            label: case.label.to_string(),
            variant: case.variant.to_string(),
            m,
            k,
            n,
            seed_gflops: gf(seed_s),
            gflops_1t: gf(one_s),
            gflops_multi: gf(multi_s),
            multi_threads: multi,
            speedup_1t_vs_seed: speedup,
            pool_gain,
            pool_gain_below_5pct: flagged,
        });
    }
    println!("{table}");

    let mut fusion_table = Table::new(
        "GEMM-epilogue fusion vs unfused plan vs frozen PR 4 path (GFLOP/s)",
        ["Segment", "PR4", "Unfused", "Fused", "vs PR4", "vs unfused"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    // Best-of-N needs a larger N here: the fusion ratio is an acceptance
    // number and single-digit-ms noise on a shared core can invert it.
    let fusion_iters = iters.max(8);
    let fusion = vec![
        fusion_case(
            "ffn up (bias+gelu)",
            1024,
            768,
            3072,
            true,
            fusion_iters,
            multi,
            &mut ws,
        ),
        fusion_case(
            "qkv proj (bias)",
            1024,
            768,
            768,
            false,
            fusion_iters,
            multi,
            &mut ws,
        ),
    ];
    for f in &fusion {
        fusion_table.push_row(vec![
            format!("{} {}x{}x{}", f.label, f.m, f.k, f.n),
            format!("{:.2}", f.pr4_gflops),
            format!("{:.2}", f.unfused_gflops),
            format!("{:.2}", f.fused_gflops),
            format!("{:.2}x", f.fused_vs_pr4),
            format!("{:.2}x", f.fused_vs_unfused),
        ]);
    }
    println!("{fusion_table}");

    let (layers, tokens, hidden, ff) = (8, 1024, 768, 3072);
    let stack = planner_stack(layers, tokens, hidden, ff);
    let planner = PlannerResult {
        config: format!("{layers}-layer FFN/LN stack, tokens={tokens} hidden={hidden} ff={ff}"),
        layers,
        tokens,
        hidden,
        ff_hidden: ff,
        peak_workspace_bytes: stack.peak_workspace_bytes(),
        unfused_ws_baseline_bytes: stack.unfused_value_bytes(),
        reuse_ratio: stack.unfused_value_bytes() as f64
            / stack.peak_workspace_bytes().max(1) as f64,
    };
    println!(
        "[planner] {}: peak {} B vs hand-threaded {} B ({:.1}x reuse)",
        planner.config,
        planner.peak_workspace_bytes,
        planner.unfused_ws_baseline_bytes,
        planner.reuse_ratio
    );

    let doc = BenchDoc {
        bench: "kernels".to_string(),
        quick: opts.quick,
        iters_per_case: iters,
        available_parallelism: avail,
        pool_threads: multi,
        cases: entries,
        fusion,
        planner,
    };
    let json = serde_json::to_string_pretty(&doc).expect("benchmark JSON serializes");
    if let Err(e) = std::fs::write("BENCH_kernels.json", &json) {
        eprintln!("warning: could not write BENCH_kernels.json: {e}");
    } else {
        println!("[records written to BENCH_kernels.json]");
    }
}
