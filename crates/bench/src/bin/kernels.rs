//! Micro-benchmark for the blocked matmul kernels in `actcomp-tensor`.
//!
//! Measures GFLOP/s for each kernel variant (`A@B`, `Aᵀ@B`, `A@Bᵀ`) at
//! the shapes the BERT configs actually exercise, single- vs
//! multi-thread, and records the speedup over a faithful copy of the
//! *seed* kernels (the pre-blocking `i-k-j` loops, skip-branch included)
//! so the before/after is part of the artifact. Results land in
//! `BENCH_kernels.json` at the repo root, next to `BENCH_runtime.json`;
//! CI runs this bin with `--quick` and fails if the file is missing or
//! malformed.

use actcomp_bench::util;
use actcomp_core::report::Table;
use actcomp_tensor::{kernels, Workspace};
use std::time::Instant;

/// One row of `BENCH_kernels.json`.
#[derive(serde::Serialize)]
struct CaseResult {
    label: String,
    variant: String,
    m: usize,
    k: usize,
    n: usize,
    seed_gflops: f64,
    gflops_1t: f64,
    gflops_multi: f64,
    multi_threads: usize,
    speedup_1t_vs_seed: f64,
}

/// Top-level `BENCH_kernels.json` document.
#[derive(serde::Serialize)]
struct BenchDoc {
    bench: String,
    quick: bool,
    iters_per_case: usize,
    cases: Vec<CaseResult>,
}

/// The seed crate's matmul kernels, copied verbatim (including the
/// `av == 0.0` skip branch) so the "before" side of the speedup stays
/// measurable after the real kernels replaced them.
mod seed {
    pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    pub fn matmul_tn(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let arow = &a[p * m..(p + 1) * m];
            let brow = &b[p * n..(p + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    pub fn matmul_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                out[i * n + j] = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
            }
        }
        out
    }
}

/// One benchmarked configuration.
struct Case {
    /// Human-readable provenance of the shape.
    label: &'static str,
    /// `nn`, `tn`, or `nt`.
    variant: &'static str,
    m: usize,
    k: usize,
    n: usize,
}

/// BERT-config shapes: BERT-Base projections/FFN at micro-batch 8 ×
/// seq 128 rows, per-head attention score/context products, backward
/// weight-gradient shapes — plus the 512³ headline shape the acceptance
/// criterion is stated against.
const CASES: &[Case] = &[
    Case {
        label: "headline 512^3",
        variant: "nn",
        m: 512,
        k: 512,
        n: 512,
    },
    Case {
        label: "headline 512^3",
        variant: "tn",
        m: 512,
        k: 512,
        n: 512,
    },
    Case {
        label: "headline 512^3",
        variant: "nt",
        m: 512,
        k: 512,
        n: 512,
    },
    Case {
        label: "qkv/out proj fwd",
        variant: "nn",
        m: 1024,
        k: 768,
        n: 768,
    },
    Case {
        label: "ffn up fwd",
        variant: "nn",
        m: 1024,
        k: 768,
        n: 3072,
    },
    Case {
        label: "weight grad (xT dy)",
        variant: "tn",
        m: 768,
        k: 1024,
        n: 768,
    },
    Case {
        label: "input grad (dy wT)",
        variant: "nt",
        m: 1024,
        k: 768,
        n: 768,
    },
    Case {
        label: "attn scores (q kT)",
        variant: "nt",
        m: 128,
        k: 64,
        n: 128,
    },
];

/// In `--quick` mode only the headline shapes run (CI smoke).
fn active_cases(quick: bool) -> Vec<&'static Case> {
    CASES
        .iter()
        .filter(|c| !quick || c.label.starts_with("headline"))
        .collect()
}

/// Best-of-`iters` wall time of `f`, after one warmup call.
fn time_best(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn filled(len: usize, scale: f32) -> Vec<f32> {
    (0..len)
        .map(|i| (((i * 13 + 5) % 31) as f32 - 15.0) * scale)
        .collect()
}

fn main() {
    let opts = util::Options::from_args();
    let iters = if opts.quick { 2 } else { 5 };
    let multi = std::thread::available_parallelism().map_or(2, |p| p.get().max(2));
    let mut ws = Workspace::new();
    let mut table = Table::new(
        "Blocked kernels vs seed kernels (GFLOP/s, best of several runs)",
        [
            "Shape",
            "Variant",
            "Seed",
            "Blocked 1T",
            &format!("Blocked {multi}T"),
            "Speedup 1T",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
    );
    let mut entries = Vec::new();
    for case in active_cases(opts.quick) {
        let (m, k, n) = (case.m, case.k, case.n);
        let flops = 2.0 * (m * k * n) as f64;
        let gf = |secs: f64| flops / secs / 1e9;
        let (a_len, b_len) = match case.variant {
            "tn" => (k * m, k * n),
            "nt" => (m * k, n * k),
            _ => (m * k, k * n),
        };
        let a = filled(a_len, 0.03125);
        let b = filled(b_len, 0.0625);
        let mut out = vec![0.0f32; m * n];

        let seed_s = time_best(iters, || {
            let r = match case.variant {
                "tn" => seed::matmul_tn(&a, &b, k, m, n),
                "nt" => seed::matmul_nt(&a, &b, m, k, n),
                _ => seed::matmul(&a, &b, m, k, n),
            };
            std::hint::black_box(&r);
        });
        let run_blocked = |threads: usize, ws: &mut Workspace, out: &mut [f32]| match case.variant {
            "tn" => kernels::gemm_tn(out, false, &a, &b, k, m, n, threads, ws),
            "nt" => kernels::gemm_nt(out, false, &a, &b, m, k, n, threads, ws),
            _ => kernels::gemm_nn(out, false, &a, &b, m, k, n, threads, ws),
        };
        let one_s = time_best(iters, || {
            run_blocked(1, &mut ws, &mut out);
            std::hint::black_box(&out);
        });
        let multi_s = time_best(iters, || {
            run_blocked(multi, &mut ws, &mut out);
            std::hint::black_box(&out);
        });

        let speedup = seed_s / one_s;
        table.push_row(vec![
            format!("{}x{}x{} ({})", m, k, n, case.label),
            case.variant.to_string(),
            format!("{:.2}", gf(seed_s)),
            format!("{:.2}", gf(one_s)),
            format!("{:.2}", gf(multi_s)),
            format!("{:.2}x", speedup),
        ]);
        entries.push(CaseResult {
            label: case.label.to_string(),
            variant: case.variant.to_string(),
            m,
            k,
            n,
            seed_gflops: gf(seed_s),
            gflops_1t: gf(one_s),
            gflops_multi: gf(multi_s),
            multi_threads: multi,
            speedup_1t_vs_seed: speedup,
        });
    }
    println!("{table}");

    let doc = BenchDoc {
        bench: "kernels".to_string(),
        quick: opts.quick,
        iters_per_case: iters,
        cases: entries,
    };
    let json = serde_json::to_string_pretty(&doc).expect("benchmark JSON serializes");
    if let Err(e) = std::fs::write("BENCH_kernels.json", &json) {
        eprintln!("warning: could not write BENCH_kernels.json: {e}");
    } else {
        println!("[records written to BENCH_kernels.json]");
    }
}
