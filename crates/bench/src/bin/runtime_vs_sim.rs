//! Measured vs. predicted phase breakdown: runs the threaded engine
//! (`actcomp-runtime`) on a scaled-down copy of the paper's Table 4
//! configuration (PCIe, TP=2 / PP=2, compression on the last half of the
//! layers) and compares each phase's *share* of the iteration against
//! `actcomp-distsim`'s prediction for the full-size setup.
//!
//! Absolute times cannot match — the engine measures CPU threads while
//! the simulator models V100s — so the comparison is over fractions:
//! compute / encode / wire / decode as a percentage of the iteration,
//! with the relative error per phase reported. The measured side also
//! lands in `BENCH_runtime.json`, the artifact CI checks for.

use actcomp_bench::util;
use actcomp_compress::cost::CostModel;
use actcomp_compress::plan::CompressionPlan;
use actcomp_compress::spec::CompressorSpec;
use actcomp_core::report::Table;
use actcomp_distsim::{calibration, simulate_iteration, ClusterSpec, Parallelism, TrainSetup};
use actcomp_mp::MpConfig;
use actcomp_nn::BertConfig;
use actcomp_runtime::{RuntimeConfig, ThreadedRuntime};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Four-phase share of an iteration, each in `[0, 1]`.
struct Shares {
    compute: f64,
    encode: f64,
    wire: f64,
    decode: f64,
}

impl Shares {
    fn rows(&self) -> [(&'static str, f64); 4] {
        [
            ("compute", self.compute),
            ("encode", self.encode),
            ("wire", self.wire),
            ("decode", self.decode),
        ]
    }
}

/// Predicted shares for the paper-scale Table 4 config (BERT-Large,
/// PCIe, TP=2 / PP=2, spec on the last 12 of 24 layers).
fn predicted(spec: CompressorSpec) -> Shares {
    let plan = match spec {
        CompressorSpec::Baseline => CompressionPlan::none(),
        s => CompressionPlan::last_layers(s, 24, 12),
    };
    let b = simulate_iteration(&TrainSetup {
        model: actcomp_distsim::workload::ModelShape::bert_large(),
        seq: 512,
        micro_batch: 32,
        num_micro_batches: 1,
        parallelism: Parallelism::new(2, 2),
        cluster: ClusterSpec::local_no_nvlink(),
        gpu: calibration::v100_finetune(),
        plan,
        cost: CostModel::v100(),
    });
    let boundary: f64 = b.boundary_per_mb_ms.iter().sum();
    let wire = b.tensor_comm_ms + boundary;
    let compute = (b.total_ms - b.tensor_enc_ms - b.tensor_dec_ms - wire).max(0.0);
    let total = b.total_ms;
    Shares {
        compute: compute / total,
        encode: b.tensor_enc_ms / total,
        wire: wire / total,
        decode: b.tensor_dec_ms / total,
    }
}

/// Measured shares from the threaded engine on a 1/6-depth, 1/16-width
/// replica of the same layout (TP=2, PP=2, spec on the last half).
fn measured(spec: CompressorSpec, steps: usize) -> Shares {
    let bert = BertConfig {
        vocab: 128,
        hidden: 64,
        layers: 4,
        heads: 4,
        ff_hidden: 256,
        max_seq: 32,
    };
    let plan = match spec {
        CompressorSpec::Baseline => CompressionPlan::none(),
        s => CompressionPlan::last_layers(s, bert.layers, bert.layers / 2),
    };
    let (batch, seq) = (8usize, 32usize);
    let cfg = RuntimeConfig {
        mp: MpConfig {
            bert,
            tp: 2,
            pp: 2,
            plan,
            tokens: batch * seq,
            error_feedback: false,
        },
        micro_batches: 1,
        tuning: None,
        trace: false,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut rt = ThreadedRuntime::new(&mut rng, cfg).expect("valid benchmark config");
    let mut drng = ChaCha8Rng::seed_from_u64(7);
    let ids: Vec<usize> = (0..batch * seq)
        .map(|_| (drng.gen::<u64>() % 128) as usize)
        .collect();
    for _ in 0..steps {
        let y = rt.forward(&ids, batch, seq).expect("valid benchmark step");
        rt.zero_grad();
        rt.backward(&y).expect("valid benchmark grad");
        rt.sgd_step(1e-2);
    }
    let report = rt.report();
    if let Err(e) = std::fs::write("BENCH_runtime.json", report.to_json()) {
        eprintln!("warning: could not write BENCH_runtime.json: {e}");
    }
    let t = report.totals;
    let total = t.total_s().max(f64::MIN_POSITIVE);
    Shares {
        compute: t.compute_s / total,
        encode: t.encode_s / total,
        wire: t.wire_s / total,
        decode: t.decode_s / total,
    }
}

fn main() {
    let opts = util::Options::from_args();
    let steps = opts.steps.unwrap_or(if opts.quick { 1 } else { 3 });
    let specs = [
        CompressorSpec::Baseline,
        CompressorSpec::A1,
        CompressorSpec::T2,
        CompressorSpec::Q1,
    ];
    let mut table = Table::new(
        "Runtime vs. simulator — phase share of one iteration [measured (predicted)]",
        ["Spec", "Phase", "Measured %", "Predicted %", "Rel. err"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    let mut records = Vec::new();
    for spec in specs {
        let p = predicted(spec);
        let m = measured(spec, steps);
        for ((phase, mf), (_, pf)) in m.rows().into_iter().zip(p.rows()) {
            // Phases the simulator prices at (essentially) zero — e.g.
            // codec time of the uncompressed baseline — have no
            // meaningful relative error.
            let err = if pf > 1e-3 {
                format!("{:+.0}%", 100.0 * (mf - pf) / pf)
            } else {
                "—".to_string()
            };
            table.push_row(vec![
                spec.label().to_string(),
                phase.to_string(),
                format!("{:.1}", 100.0 * mf),
                format!("{:.1}", 100.0 * pf),
                err,
            ]);
            records.push(util::record(
                "runtime_vs_sim",
                format!("{} {phase} share", spec.label()),
                Some(100.0 * pf),
                100.0 * mf,
                "%",
            ));
        }
    }
    util::emit(&opts, "runtime_vs_sim", &table, &records);
    println!(
        "Caveat: measured shares come from CPU threads on a scaled-down model, \
         predicted shares from the V100 cost model at paper scale — compare \
         shapes (which phases dominate per spec), not digits."
    );
}
