//! Table 6 — pre-training iteration time (ms): 4 p3.8xlarge nodes,
//! micro-batch 128, global batch 1024, s=128, across (TP, PP).

use actcomp_bench::{paper, util};
use actcomp_core::report::Table;
use actcomp_core::throughput::pretrain_breakdown;

fn main() {
    let opts = util::Options::from_args();
    let mut header = vec!["Distributed Setting".to_string()];
    header.extend(paper::TIMING_SPECS.iter().map(|s| s.label().to_string()));
    let mut table = Table::new(
        "Table 6 — pre-train iteration time (ms), 4 nodes, mb=128 s=128 [ours (paper)]",
        header,
    );
    let mut records = Vec::new();

    for ((tp, pp), paper_row) in paper::table6() {
        let mut row = vec![format!("TP={tp}, PP={pp}")];
        for (spec, paper_val) in paper::TIMING_SPECS.iter().zip(paper_row) {
            let b = pretrain_breakdown(tp, pp, *spec);
            row.push(util::vs(b.total_ms, paper_val));
            records.push(util::record(
                "table6",
                format!("TP={tp},PP={pp} {spec}"),
                paper_val,
                b.total_ms,
                "ms",
            ));
        }
        table.push_row(row);
    }
    util::emit(&opts, "table6", &table, &records);
}
