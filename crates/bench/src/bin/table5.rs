//! Table 5 — fine-tuning GLUE scores under each compression setting
//! (TP=2, PP=2). Real training through the model-parallel stack on the
//! synthetic GLUE suite.

use actcomp_bench::{paper, util};
use actcomp_core::report::Table;
use actcomp_core::{accuracy, AccuracyConfig};
use actcomp_data::GlueTask;

fn main() {
    let opts = util::Options::from_args();
    let mut specs: Vec<_> = paper::table5()
        .into_iter()
        .map(|(s, p)| (s, Some(p)))
        .collect();
    if opts.quick {
        specs.truncate(4);
    }

    let mut header = vec!["Algo".to_string()];
    header.extend(GlueTask::all().iter().map(|t| t.name().to_string()));
    header.push("Avg.".into());
    let mut table = Table::new(
        "Table 5 — fine-tune GLUE scores, TP=2 PP=2 [ours (paper)]",
        header,
    );
    let mut records = Vec::new();

    for (spec, paper_scores) in specs {
        let mut cfg = AccuracyConfig::paper_default().with_spec(spec);
        if let Some(steps) = opts.steps {
            cfg.steps = steps;
        }
        let results = accuracy::glue_suite(&cfg);
        let mut row = vec![spec.label().to_string()];
        for (i, r) in results.iter().enumerate() {
            let p = paper_scores.map(|ps| ps[i]);
            row.push(util::vs(r.score, p));
            records.push(util::record(
                "table5",
                format!("{spec} {}", r.task.name()),
                p,
                r.score,
                "score",
            ));
            eprintln!("  [{spec} {}] {:.1}", r.task.name(), r.score);
        }
        row.push(format!("{:.1}", accuracy::average(&results)));
        table.push_row(row);
    }
    util::emit(&opts, "table5", &table, &records);
    println!(
        "Paper's Takeaway 2: only AE and quantization preserve accuracy; \
         Top-K/Random-K lose it, worst on CoLA and RTE."
    );
}
