//! Codec kernel throughput: pooled hot loops vs the seed scalar loops.
//!
//! PR 5 lifted the compressor hot loops (top-k selection, quantizer
//! bit-packing) onto the shared thread pool and rewrote their inner
//! loops (integer-key selection, byte-major branchless packing). This
//! harness times the public codec API at a multi-thread pool size
//! against faithful copies of the seed's serial loops (`mod seed`
//! below), so the "before" side of the speedup stays measurable after
//! the real kernels replaced it. It also races the new ring
//! `dense_all_reduce` against the retained gather collective at tp=4,
//! reporting wall time and per-rank wire bytes.
//!
//! Writes `BENCH_codecs.json` at the repo root, next to
//! `BENCH_kernels.json`; `--quick` trims sizes and iterations for CI.

use actcomp_bench::util;
use actcomp_compress::{AutoEncoder, Compressor, Quantizer, TopK};
use actcomp_core::report::Table;
use actcomp_mp::CommBytes;
use actcomp_runtime::{PhaseTimers, TpGroup};
use actcomp_tensor::{pool, Tensor, Workspace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// One codec row of `BENCH_codecs.json`.
#[derive(serde::Serialize)]
struct CaseResult {
    label: String,
    elems: usize,
    pooled_threads: usize,
    /// Which kernel path the "pooled" column actually exercised:
    /// `"pooled"` when the chunked parallel loop runs, `"serial"` when
    /// the benefit gate routes the call to the single-chunk loop (e.g.
    /// top-k at keep rates whose candidate merge would dominate).
    path: String,
    gbps_serial: f64,
    gbps_pooled: f64,
    speedup: f64,
}

/// The ring-vs-gather collective comparison in `BENCH_codecs.json`.
#[derive(serde::Serialize)]
struct CollectiveResult {
    world: usize,
    rows: usize,
    width: usize,
    rounds: usize,
    gather_s: f64,
    ring_s: f64,
    /// Wire bytes one rank ships per all-reduce on the ring path.
    ring_wire_bytes_per_rank: usize,
    /// Wire bytes one rank ships per all-reduce on the gather path.
    gather_wire_bytes_per_rank: usize,
}

/// Top-level `BENCH_codecs.json` document.
#[derive(serde::Serialize)]
struct BenchDoc {
    bench: String,
    quick: bool,
    iters_per_case: usize,
    pooled_threads: usize,
    cases: Vec<CaseResult>,
    collective: CollectiveResult,
}

/// The seed compress crate's codec hot loops, copied verbatim (modulo
/// message wrapping) from the pre-ring `topk.rs` / `quant.rs`, so the
/// serial baseline stays measurable after the pooled kernels replaced
/// them in the crate proper.
mod seed {
    /// The seed `TopK::compress` selection: `select_nth_unstable_by`
    /// over a `u32` index permutation with a `partial_cmp` comparator
    /// on `|value|`, then an index sort and a value gather.
    pub fn topk_select(data: &[f32], k: usize, scratch: &mut Vec<u32>) -> (Vec<f32>, Vec<u32>) {
        let k = k.min(data.len());
        scratch.clear();
        scratch.extend(0..data.len() as u32);
        if k < data.len() {
            scratch.select_nth_unstable_by(k - 1, |&a, &b| {
                data[b as usize]
                    .abs()
                    .partial_cmp(&data[a as usize].abs())
                    .expect("activations are finite")
            });
        }
        let mut order = scratch[..k].to_vec();
        order.sort_unstable();
        let values: Vec<f32> = order.iter().map(|&i| data[i as usize]).collect();
        (values, order)
    }

    /// The seed `Quantizer::compress` packing loop: element-major with a
    /// per-element `i / per_byte` split and a read-modify-write `|=`.
    pub fn pack_uniform(x: &[f32], lo: f32, scale: f32, levels: u32, bits: usize) -> Vec<u8> {
        let per_byte = 8 / bits;
        let mut codes = vec![0u8; x.len().div_ceil(per_byte)];
        for (i, &v) in x.iter().enumerate() {
            let q = (((v - lo) / scale).round() as u32).min(levels) as u8;
            codes[i / per_byte] |= q << ((i % per_byte) * bits);
        }
        codes
    }

    /// The seed `Quantizer::decompress` unpacking loop.
    pub fn unpack_uniform(codes: &[u8], zero: f32, scale: f32, bits: usize, n: usize) -> Vec<f32> {
        let per_byte = 8 / bits;
        let mask = ((1u16 << bits) - 1) as u8;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let byte = codes[i / per_byte];
            let code = (byte >> ((i % per_byte) * bits)) & mask;
            out.push(zero + code as f32 * scale);
        }
        out
    }

    /// The seed tensor crate's `matmul` (the auto-encoder's `X @ W`
    /// encode), copied verbatim from the pre-blocked kernel.
    pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }
}

/// Best-of-`iters` wall time of `f`, after one warmup call.
fn time_best(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn filled(len: usize, scale: f32) -> Vec<f32> {
    (0..len)
        .map(|i| (((i * 13 + 5) % 31) as f32 - 15.0) * scale)
        .collect()
}

/// Runs `rounds` dense all-reduces on every rank of a `world`-wide ring,
/// returning the wall time and each rank's accumulated `ring_bytes`.
fn run_collective(
    world: usize,
    rows: usize,
    width: usize,
    rounds: usize,
    use_ring: bool,
) -> (f64, Vec<CommBytes>) {
    let groups = TpGroup::ring(world);
    let t0 = Instant::now();
    let handles: Vec<_> = groups
        .into_iter()
        .enumerate()
        .map(|(r, mut g)| {
            std::thread::spawn(move || {
                let part =
                    Tensor::from_vec(filled(rows * width, 0.01 * (r + 1) as f32), [rows, width]);
                let mut timers = PhaseTimers::default();
                let mut ws = Workspace::new();
                for _ in 0..rounds {
                    let out = if use_ring {
                        g.dense_all_reduce(&part, &mut timers, &mut ws)
                    } else {
                        g.dense_all_reduce_gather(&part, &mut timers)
                    };
                    std::hint::black_box(&out);
                    ws.recycle_tensor(out);
                }
                g.ring_bytes
            })
        })
        .collect();
    let bytes = handles
        .into_iter()
        .map(|h| h.join().expect("collective rank panicked"))
        .collect();
    (t0.elapsed().as_secs_f64(), bytes)
}

fn main() {
    let opts = util::Options::from_args();
    let iters = if opts.quick { 2 } else { 5 };
    let elems: usize = if opts.quick { 1 << 18 } else { 1 << 21 };
    let pooled_threads = 8;

    let xs = filled(elems, 0.0625);
    let x = Tensor::from_vec(xs.clone(), [elems]);
    let gbps = |bytes: f64, secs: f64| bytes / secs / 1e9;

    let mut table = Table::new(
        "Pooled codec kernels vs seed loops (GB/s of dense input, best of several runs)",
        [
            "Codec",
            "Elems",
            "Seed GB/s",
            &format!("Pooled {pooled_threads}T GB/s"),
            "Speedup",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
    );
    let mut entries = Vec::new();
    let mut push =
        |table: &mut Table, label: &str, path: &str, bytes: f64, serial_s: f64, pooled_s: f64| {
            let speedup = serial_s / pooled_s;
            table.push_row(vec![
                label.to_string(),
                elems.to_string(),
                format!("{:.2}", gbps(bytes, serial_s)),
                format!("{:.2} [{path}]", gbps(bytes, pooled_s)),
                format!("{:.2}x", speedup),
            ]);
            entries.push(CaseResult {
                label: label.to_string(),
                elems,
                pooled_threads,
                path: path.to_string(),
                gbps_serial: gbps(bytes, serial_s),
                gbps_pooled: gbps(bytes, pooled_s),
                speedup,
            });
        };

    pool::set_threads(pooled_threads);

    // Top-k selection at the paper's 5% keep rate: the seed copy runs
    // its full selection (the message wrapper it skips is O(k)
    // bookkeeping), the pooled side goes through the public compress
    // call.
    let k = elems / 20;
    let mut scratch: Vec<u32> = Vec::new();
    let serial_s = time_best(iters, || {
        std::hint::black_box(&seed::topk_select(&xs, k, &mut scratch));
    });
    let mut topk = TopK::new(k);
    let pooled_s = time_best(iters, || {
        std::hint::black_box(&topk.compress(&x));
    });
    // At a 5% keep rate the benefit gate routes the selection to the
    // single-chunk loop; record which path actually ran, and pin it so a
    // gate change that silently re-admits the losing pooled path fails
    // the bench rather than just shifting a number in the artifact.
    let topk_path = if actcomp_compress::pooled_select_beneficial(elems, k, pooled_threads) {
        "pooled"
    } else {
        "serial"
    };
    assert_eq!(
        topk_path, "serial",
        "benefit gate must route the paper's 5% keep rate to the serial select"
    );
    push(
        &mut table,
        "topk (keep 5%)",
        topk_path,
        (elems * 4) as f64,
        serial_s,
        pooled_s,
    );

    // Quantizer pack and unpack, separately. The seed pack scans min
    // and max in two passes exactly as the seed compress did via
    // `x.min()` / `x.max()`.
    for bits in [2usize, 4, 8] {
        let levels = (1u32 << bits) - 1;
        let serial_s = time_best(iters, || {
            let lo = xs.iter().fold(f32::INFINITY, |lo, &v| lo.min(v));
            let hi = xs.iter().fold(f32::NEG_INFINITY, |hi, &v| hi.max(v));
            let scale = if hi > lo {
                (hi - lo) / levels as f32
            } else {
                1.0
            };
            std::hint::black_box(&seed::pack_uniform(&xs, lo, scale, levels, bits));
        });
        let mut q = Quantizer::new(bits as u8);
        let pooled_s = time_best(iters, || {
            std::hint::black_box(&q.compress(&x));
        });
        push(
            &mut table,
            &format!("quant{bits} pack"),
            "pooled",
            (elems * 4) as f64,
            serial_s,
            pooled_s,
        );

        let msg = q.compress(&x);
        let (codes, scale, zero) = match msg.payload() {
            actcomp_compress::Payload::Quantized {
                codes, scale, zero, ..
            } => (codes.clone(), *scale, *zero),
            _ => unreachable!("quantizer emits quantized payloads"),
        };
        let serial_s = time_best(iters, || {
            std::hint::black_box(&seed::unpack_uniform(&codes, zero, scale, bits, elems));
        });
        let pooled_s = time_best(iters, || {
            std::hint::black_box(&q.decompress(&msg));
        });
        push(
            &mut table,
            &format!("quant{bits} unpack"),
            "pooled",
            (elems * 4) as f64,
            serial_s,
            pooled_s,
        );
    }

    // Auto-encoder encode (`X @ W`, the codec's hot loop): seed naive
    // matmul vs the blocked pooled GEMM behind the public compress call
    // (which additionally clones its backward caches).
    let (hidden, code_dim) = (256, 64);
    let rows = elems / hidden;
    let x2 = Tensor::from_vec(xs.clone(), [rows, hidden]);
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut ae = AutoEncoder::new(&mut rng, hidden, code_dim);
    let enc = ae.encoder.value.as_slice().to_vec();
    let serial_s = time_best(iters, || {
        std::hint::black_box(&seed::matmul(&xs, &enc, rows, hidden, code_dim));
    });
    let pooled_s = time_best(iters, || {
        std::hint::black_box(&ae.compress(&x2));
    });
    push(
        &mut table,
        &format!("autoencoder encode ({hidden}->{code_dim})"),
        "pooled",
        (elems * 4) as f64,
        serial_s,
        pooled_s,
    );
    println!("{table}");

    // Ring vs gather dense all-reduce at tp=4. Bytes come from the ring
    // byte counters accumulated over the measured rounds.
    let world = 4;
    let (rows, width) = if opts.quick { (128, 128) } else { (512, 256) };
    let rounds = if opts.quick { 4 } else { 16 };
    let gather_s = time_best(iters, || {
        std::hint::black_box(run_collective(world, rows, width, rounds, false));
    });
    let ring_s = time_best(iters, || {
        std::hint::black_box(run_collective(world, rows, width, rounds, true));
    });
    let (_, ring_bytes) = run_collective(world, rows, width, 1, true);
    let (_, gather_bytes) = run_collective(world, rows, width, 1, false);
    let ring_wire = ring_bytes.iter().map(|b| b.wire).max().unwrap_or(0);
    let gather_wire = gather_bytes.iter().map(|b| b.wire).max().unwrap_or(0);
    println!(
        "dense all-reduce tp={world} [{rows}x{width}] x{rounds}: \
         gather {gather_s:.4}s, ring {ring_s:.4}s; \
         wire bytes/rank: ring {ring_wire}, gather {gather_wire}"
    );

    let doc = BenchDoc {
        bench: "codecs".to_string(),
        quick: opts.quick,
        iters_per_case: iters,
        pooled_threads,
        cases: entries,
        collective: CollectiveResult {
            world,
            rows,
            width,
            rounds,
            gather_s,
            ring_s,
            ring_wire_bytes_per_rank: ring_wire,
            gather_wire_bytes_per_rank: gather_wire,
        },
    };
    let json = serde_json::to_string_pretty(&doc).expect("benchmark JSON serializes");
    if let Err(e) = std::fs::write("BENCH_codecs.json", &json) {
        eprintln!("warning: could not write BENCH_codecs.json: {e}");
    } else {
        println!("[records written to BENCH_codecs.json]");
    }
}
