//! Figure 2 — low-rank analysis: gradients are low-rank, activations are
//! not (the reason low-rank gradient compressors don't transfer to
//! activations).

use actcomp_bench::util;
use actcomp_core::report::Table;
use actcomp_core::{lowrank, AccuracyConfig};

fn main() {
    let opts = util::Options::from_args();
    let cfg = AccuracyConfig::paper_default();
    let steps = opts.steps.unwrap_or(if opts.quick { 20 } else { 60 });
    let analysis = lowrank::analyze(&cfg, steps);

    let mut table = Table::new(
        "Figure 2 — cumulative singular-value energy (sigma value percentage)",
        ["rank prefix (%)", "gradient", "activation"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    let g = &analysis.gradient.energy;
    let a = &analysis.activation.energy;
    for pct in [5usize, 10, 20, 30, 50, 70, 90, 100] {
        let gi = (g.len() * pct / 100).clamp(1, g.len()) - 1;
        let ai = (a.len() * pct / 100).clamp(1, a.len()) - 1;
        table.push_row(vec![
            format!("{pct}%"),
            format!("{:.1}%", 100.0 * g[gi]),
            format!("{:.1}%", 100.0 * a[ai]),
        ]);
    }
    let records = vec![
        util::record(
            "figure2",
            "gradient rank90",
            None,
            analysis.gradient.rank90 as f64,
            "rank",
        ),
        util::record(
            "figure2",
            "activation rank90",
            None,
            analysis.activation.rank90 as f64,
            "rank",
        ),
    ];
    util::emit(&opts, "figure2", &table, &records);
    println!(
        "rank@90% energy: gradient {} vs activation {} — gradient is low-rank: {}",
        analysis.gradient.rank90,
        analysis.activation.rank90,
        analysis.gradient_is_lower_rank()
    );
}
