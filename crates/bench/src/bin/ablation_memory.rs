//! Ablation: the memory axis the paper leaves unmeasured — per-GPU
//! activation stash under GPipe vs 1F1B, with and without compressed
//! boundaries.

use actcomp_bench::util;
use actcomp_compress::plan::CompressionPlan;
use actcomp_compress::spec::CompressorSpec;
use actcomp_core::report::Table;
use actcomp_distsim::memory::{activation_memory, peak_activation_bytes, Schedule};
use actcomp_distsim::workload::ModelShape;
use actcomp_distsim::Parallelism;

fn main() {
    let opts = util::Options::from_args();
    let model = ModelShape::bert_large();
    let par = Parallelism::new(4, 4);
    let mut table = Table::new(
        "Ablation — peak per-GPU activation memory (pre-train, TP=4 PP=4, m=8)",
        [
            "schedule",
            "compression",
            "peak activation (GB)",
            "last-stage (GB)",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
    );
    let mut records = Vec::new();
    for (sched_name, sched) in [("GPipe", Schedule::GPipe), ("1F1B", Schedule::OneFOneB)] {
        for (plan_name, plan) in [
            ("w/o", CompressionPlan::none()),
            (
                "A1 (last 12)",
                CompressionPlan::last_layers(CompressorSpec::A1, 24, 12),
            ),
        ] {
            let stages = activation_memory(&model, par, 128, 128, 8, sched, &plan);
            let peak = peak_activation_bytes(&stages) as f64 / 1e9;
            let last = stages.last().expect("stages").activation_bytes as f64 / 1e9;
            table.push_row(vec![
                sched_name.into(),
                plan_name.into(),
                format!("{peak:.2}"),
                format!("{last:.2}"),
            ]);
            records.push(util::record(
                "ablation_memory",
                format!("{sched_name} {plan_name}"),
                None,
                peak,
                "GB",
            ));
        }
    }
    util::emit(&opts, "ablation_memory", &table, &records);
    println!(
        "1F1B's bounded stash is why Megatron runs it despite equal \
         makespan. Compressing the LAST 12 layers shrinks the late stages' \
         stash but not the peak — the peak lives on stage 0, whose layers \
         are uncompressed (the same early-layer placement that §4.5 shows \
         is accuracy-critical). Memory relief would require compressing \
         early layers, exactly where accuracy cannot afford it."
    );
}
