//! Figure 4 — fine-tuning accuracy on CoLA and RTE while (a) varying the
//! number of compressed layers and (b) sliding the compression window
//! (§4.5: early layers are the sensitive ones).

use actcomp_bench::util;
use actcomp_compress::spec::CompressorSpec;
use actcomp_core::report::Table;
use actcomp_core::{accuracy, AccuracyConfig};
use actcomp_data::GlueTask;

fn main() {
    let opts = util::Options::from_args();
    let spec = CompressorSpec::A2;
    let layers = AccuracyConfig::paper_default().bert.layers;
    let tasks = [GlueTask::Cola, GlueTask::Rte];
    let mut records = Vec::new();

    // (a) compress the LAST k layers, k = 1..layers.
    let counts: Vec<usize> = if opts.quick {
        vec![2, layers / 2, layers]
    } else {
        (1..=layers).collect()
    };
    let mut ta = Table::new(
        "Figure 4a — accuracy vs number of (last) layers compressed (A2)",
        ["layers compressed", "CoLA", "RTE"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    for &k in &counts {
        let mut row = vec![k.to_string()];
        for task in tasks {
            let mut cfg = AccuracyConfig::paper_default()
                .with_spec(spec)
                .with_window(layers - k, k);
            if let Some(steps) = opts.steps {
                cfg.steps = steps;
            }
            let r = accuracy::finetune(&cfg, task);
            eprintln!("  [last {k} layers, {}] {:.1}", task.name(), r.score);
            row.push(format!("{:.1}", r.score));
            records.push(util::record(
                "figure4a",
                format!("last{k} {}", task.name()),
                None,
                r.score,
                "score",
            ));
        }
        ta.push_row(row);
    }
    println!("{ta}");

    // (b) fixed window size (half the stack), sliding start position.
    let window = layers / 2;
    let starts: Vec<usize> = if opts.quick {
        vec![0, layers - window]
    } else {
        (0..=layers - window).collect()
    };
    let mut tb = Table::new(
        "Figure 4b — accuracy vs compression location (A2, fixed window)",
        ["first layer compressed", "CoLA", "RTE"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    for &start in &starts {
        let mut row = vec![start.to_string()];
        for task in tasks {
            let mut cfg = AccuracyConfig::paper_default()
                .with_spec(spec)
                .with_window(start, window);
            if let Some(steps) = opts.steps {
                cfg.steps = steps;
            }
            let r = accuracy::finetune(&cfg, task);
            eprintln!("  [window @{start}, {}] {:.1}", task.name(), r.score);
            row.push(format!("{:.1}", r.score));
            records.push(util::record(
                "figure4b",
                format!("start{start} {}", task.name()),
                None,
                r.score,
                "score",
            ));
        }
        tb.push_row(row);
    }
    util::emit(&opts, "figure4", &tb, &records);
    println!(
        "Paper's Takeaways 6–7: accuracy decreases with more compressed \
         layers, and compressing the EARLY layers hurts most."
    );
}
