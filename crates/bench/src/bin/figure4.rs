//! Figure 4 — fine-tuning accuracy on CoLA and RTE while (a) varying the
//! number of compressed layers and (b) sliding the compression window
//! (§4.5: early layers are the sensitive ones).

use actcomp_bench::util;
use actcomp_compress::spec::CompressorSpec;
use actcomp_core::report::Table;
use actcomp_core::{accuracy, AccuracyConfig};
use actcomp_data::GlueTask;

fn main() {
    let opts = util::Options::from_args();
    let spec = CompressorSpec::A2;
    let layers = AccuracyConfig::paper_default().bert.layers;
    let tasks = [GlueTask::Cola, GlueTask::Rte];
    let mut records = Vec::new();

    // (a) compress the LAST k layers, k = 1..layers.
    let counts: Vec<usize> = if opts.quick {
        vec![2, layers / 2, layers]
    } else {
        (1..=layers).collect()
    };
    let mut ta = Table::new(
        "Figure 4a — accuracy vs number of (last) layers compressed (A2)",
        ["layers compressed", "CoLA", "RTE"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    for &k in &counts {
        let mut row = vec![k.to_string()];
        for task in tasks {
            let mut cfg = AccuracyConfig::paper_default()
                .with_spec(spec)
                .with_window(layers - k, k);
            if let Some(steps) = opts.steps {
                cfg.steps = steps;
            }
            let r = accuracy::finetune(&cfg, task);
            eprintln!("  [last {k} layers, {}] {:.1}", task.name(), r.score);
            row.push(format!("{:.1}", r.score));
            records.push(util::record(
                "figure4a",
                format!("last{k} {}", task.name()),
                None,
                r.score,
                "score",
            ));
        }
        ta.push_row(row);
    }
    println!("{ta}");

    // (b) fixed window size (half the stack), sliding start position.
    let window = layers / 2;
    let starts: Vec<usize> = if opts.quick {
        vec![0, layers - window]
    } else {
        (0..=layers - window).collect()
    };
    let mut tb = Table::new(
        "Figure 4b — accuracy vs compression location (A2, fixed window)",
        ["first layer compressed", "CoLA", "RTE"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    for &start in &starts {
        let mut row = vec![start.to_string()];
        for task in tasks {
            let mut cfg = AccuracyConfig::paper_default()
                .with_spec(spec)
                .with_window(start, window);
            if let Some(steps) = opts.steps {
                cfg.steps = steps;
            }
            let r = accuracy::finetune(&cfg, task);
            eprintln!("  [window @{start}, {}] {:.1}", task.name(), r.score);
            row.push(format!("{:.1}", r.score));
            records.push(util::record(
                "figure4b",
                format!("start{start} {}", task.name()),
                None,
                r.score,
                "score",
            ));
        }
        tb.push_row(row);
    }
    println!("{tb}");

    // (c) the same early-vs-late window contrast with a compressor that
    // measurably costs accuracy (T2). At this model scale A2 is nearly
    // lossless (Table 5), so sections (a)/(b) are noise-dominated; the
    // placement effect needs a lossy codec to be visible at all.
    let lossy = CompressorSpec::T2;
    let mut tc = Table::new(
        "Figure 4c — early vs late window under a lossy codec (T2)",
        ["window", "CoLA", "RTE"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    for (label, start) in [("early", 0usize), ("late", layers - window)] {
        let mut row = vec![format!("{label} (layers {start}..{})", start + window)];
        for task in tasks {
            let mut cfg = AccuracyConfig::paper_default()
                .with_spec(lossy)
                .with_window(start, window);
            if let Some(steps) = opts.steps {
                cfg.steps = steps;
            }
            let r = accuracy::finetune(&cfg, task);
            eprintln!("  [T2 {label} window, {}] {:.1}", task.name(), r.score);
            row.push(format!("{:.1}", r.score));
            records.push(util::record(
                "figure4c",
                format!("T2 {label} {}", task.name()),
                None,
                r.score,
                "score",
            ));
        }
        tc.push_row(row);
    }
    util::emit(&opts, "figure4", &tc, &records);
    println!(
        "Paper's Takeaways 6–7 claim accuracy falls with more compressed \
         layers and that EARLY layers hurt most; at this model scale the \
         sweeps are noise-dominated (see EXPERIMENTS.md, Figure 4)."
    );
}
