//! Table 2 — fine-tuning iteration time (ms) on the NVLink machine,
//! b=32, s=512, across (TP, PP) and all compression settings.
//!
//! The grid points are independent, so they are fanned across the
//! kernel pool (`ACTCOMP_THREADS`) with `par_map`; the pool preserves
//! input order, so the emitted table is identical to the serial walk.

use actcomp_bench::{paper, util};
use actcomp_core::report::Table;
use actcomp_core::throughput::{finetune_breakdown, Machine};
use actcomp_distsim::par_map;

fn main() {
    let opts = util::Options::from_args();
    let mut header = vec!["Distributed Setting".to_string()];
    header.extend(paper::TIMING_SPECS.iter().map(|s| s.label().to_string()));
    let mut table = Table::new(
        "Table 2 — fine-tune iteration time (ms), NVLink, b=32 s=512 [ours (paper)]",
        header,
    );
    let mut records = Vec::new();

    // Flatten the (tp, pp) x spec grid so every simulator call is one
    // independent pool unit, then reassemble rows in grid order.
    let rows: Vec<_> = paper::table2().into_iter().collect();
    let grid: Vec<(usize, usize, usize)> = rows
        .iter()
        .flat_map(|((tp, pp), _)| (0..paper::TIMING_SPECS.len()).map(move |s| (*tp, *pp, s)))
        .collect();
    let breakdowns = par_map(&grid, |&(tp, pp, s)| {
        finetune_breakdown(Machine::AwsP3, tp, pp, 32, 512, paper::TIMING_SPECS[s])
    });

    let mut it = grid.iter().zip(breakdowns);
    for ((tp, pp), paper_row) in &rows {
        let mut row = vec![format!("TP={tp}, PP={pp}")];
        for (spec, paper_val) in paper::TIMING_SPECS.iter().zip(paper_row.iter().copied()) {
            let (_, b) = it.next().expect("one breakdown per grid point");
            row.push(util::vs(b.total_ms, paper_val));
            records.push(util::record(
                "table2",
                format!("TP={tp},PP={pp} {spec}"),
                paper_val,
                b.total_ms,
                "ms",
            ));
        }
        table.push_row(row);
    }
    util::emit(&opts, "table2", &table, &records);
}
