//! Table 2 — fine-tuning iteration time (ms) on the NVLink machine,
//! b=32, s=512, across (TP, PP) and all compression settings.

use actcomp_bench::{paper, util};
use actcomp_core::report::Table;
use actcomp_core::throughput::{finetune_breakdown, Machine};

fn main() {
    let opts = util::Options::from_args();
    let mut header = vec!["Distributed Setting".to_string()];
    header.extend(paper::TIMING_SPECS.iter().map(|s| s.label().to_string()));
    let mut table = Table::new(
        "Table 2 — fine-tune iteration time (ms), NVLink, b=32 s=512 [ours (paper)]",
        header,
    );
    let mut records = Vec::new();

    for ((tp, pp), paper_row) in paper::table2() {
        let mut row = vec![format!("TP={tp}, PP={pp}")];
        for (spec, paper_val) in paper::TIMING_SPECS.iter().zip(paper_row) {
            let b = finetune_breakdown(Machine::AwsP3, tp, pp, 32, 512, *spec);
            row.push(util::vs(b.total_ms, paper_val));
            records.push(util::record(
                "table2",
                format!("TP={tp},PP={pp} {spec}"),
                paper_val,
                b.total_ms,
                "ms",
            ));
        }
        table.push_row(row);
    }
    util::emit(&opts, "table2", &table, &records);
}
