//! Table 8 — fine-tuning from a *pre-trained* checkpoint: pre-train with
//! compression (MLM on the synthetic corpus), strip the compressors
//! (§4.4), then fine-tune the checkpoint on the GLUE suite.

use actcomp_bench::{paper, util};
use actcomp_core::report::Table;
use actcomp_core::{accuracy, AccuracyConfig};
use actcomp_data::GlueTask;

fn main() {
    let opts = util::Options::from_args();
    let pretrain_steps = if opts.quick { 150 } else { 400 };
    let mut rows: Vec<_> = paper::table8();
    if opts.quick {
        rows.truncate(2);
    }

    let mut header = vec!["Algo".to_string()];
    header.extend(GlueTask::all().iter().map(|t| t.name().to_string()));
    header.push("Avg.".into());
    let mut table = Table::new(
        "Table 8 — GLUE scores after compressed pre-training [ours (paper)]",
        header,
    );
    let mut records = Vec::new();

    for (spec, paper_scores) in rows {
        // Pre-train WITH the compressor in the loop...
        let mut pre_cfg = AccuracyConfig::paper_default().with_spec(spec);
        pre_cfg.lr = 5e-4;
        eprintln!("[{spec}] pre-training {pretrain_steps} steps...");
        let checkpoint = accuracy::pretrain(&pre_cfg, pretrain_steps);

        // ...then fine-tune the stripped checkpoint WITHOUT compression
        // (the paper removes the AE for fine-tuning).
        let mut ft_cfg = AccuracyConfig::paper_default();
        if let Some(steps) = opts.steps {
            ft_cfg.steps = steps;
        }
        let mut row = vec![spec.label().to_string()];
        let mut results = Vec::new();
        for task in GlueTask::all() {
            let r = accuracy::finetune_from(&ft_cfg, &checkpoint, task);
            eprintln!("  [{spec} {}] {:.1}", task.name(), r.score);
            results.push(r);
        }
        for (i, r) in results.iter().enumerate() {
            row.push(util::vs(r.score, Some(paper_scores[i])));
            records.push(util::record(
                "table8",
                format!("{spec} {}", r.task.name()),
                Some(paper_scores[i]),
                r.score,
                "score",
            ));
        }
        row.push(format!("{:.1}", accuracy::average(&results)));
        table.push_row(row);
    }
    util::emit(&opts, "table8", &table, &records);
    println!(
        "Paper's Takeaway 5: AE pre-training matches the uncompressed \
         checkpoint; Top-K pre-training loses accuracy; quantization holds."
    );
}
