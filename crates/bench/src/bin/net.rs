//! Transport-layer benchmark (`BENCH_net.json`): what does moving the
//! rank fabric from in-process channels onto real sockets cost, and
//! when does activation compression start paying for itself on a
//! bandwidth-limited link?
//!
//! Three measurements:
//!
//! 1. **Collectives per transport** — the chunked chain-reduce +
//!    broadcast dense all-reduce over mpsc, Unix domain sockets, and
//!    loopback TCP (the TCP rows repeated under several `--link-mbps`
//!    token-bucket caps), reporting per-op time and effective GB/s.
//! 2. **Simulator cross-check** — the measured throttled-TCP collective
//!    time against `actcomp-distsim`'s α–β ring all-reduce prediction
//!    for a link of the same nominal bandwidth, recording the relative
//!    error.
//! 3. **Compression crossover** — full engine steps over throttled TCP
//!    with compression off vs. the T2 sparsifier, sweeping the cap
//!    downward until the compressed run wins; the crossover bandwidth
//!    is where the paper's trade-off flips (Takeaway 2: compression
//!    helps only once the wire, not the codec, is the bottleneck).

use actcomp_bench::util;
use actcomp_compress::plan::CompressionPlan;
use actcomp_compress::spec::CompressorSpec;
use actcomp_core::report::{write_records, Table};
use actcomp_distsim::calibration;
use actcomp_distsim::collective::allreduce_time;
use actcomp_distsim::hardware::{LinkKind, LinkSpec};
use actcomp_mp::MpConfig;
use actcomp_net::{mpsc_world, SocketOptions, SocketTransport, Transport, TransportKind};
use actcomp_nn::{BertConfig, BertEncoder};
use actcomp_runtime::{PhaseTimers, RuntimeConfig, ThreadedRuntime, TpGroup};
use actcomp_tensor::{init, Workspace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Instant;

/// Loopback round-trip budget for the prediction's α term: generous for
/// a kernel socket hop, far below any real NIC. Kept as the *uncalibrated*
/// reference point; the calibrated rows measure this instead of guessing.
const LOOPBACK_LATENCY_S: f64 = 50e-6;

#[derive(Serialize)]
struct CollectiveRow {
    transport: String,
    link_mbps: Option<f64>,
    payload_bytes: f64,
    per_op_ms: f64,
    wire_bytes_per_rank_per_op: f64,
    effective_gbps: f64,
}

#[derive(Serialize)]
struct DistsimRow {
    link_mbps: f64,
    measured_ms: f64,
    /// Prediction with the hand-guessed `LOOPBACK_LATENCY_S` α term.
    predicted_ms: f64,
    rel_error: f64,
    /// Per-round latency measured from a tiny-payload all-reduce on the
    /// same throttled transport (`calibration::round_latency_from_allreduce`).
    frame_latency_us: f64,
    /// Prediction with the measured per-round constant folded in.
    calibrated_ms: f64,
    calibrated_rel_error: f64,
}

#[derive(Serialize)]
struct CrossoverReport {
    caps_mbps: Vec<f64>,
    baseline_step_ms: Vec<f64>,
    compressed_step_ms: Vec<f64>,
    /// Estimated bandwidth below which the T2-compressed run beats the
    /// uncompressed one. `None` when compression never won in the sweep.
    crossover_mbps: Option<f64>,
}

#[derive(Serialize)]
struct NetBench {
    world: usize,
    collectives: Vec<CollectiveRow>,
    distsim: Vec<DistsimRow>,
    crossover: CrossoverReport,
}

/// Binds `world` socket endpoints and exchanges the peer table, as the
/// multi-process rendezvous would.
fn socket_world(
    kind: TransportKind,
    world: usize,
    link_mbps: Option<f64>,
) -> Vec<Box<dyn Transport>> {
    let opts = SocketOptions {
        link_mbps,
        ..SocketOptions::default()
    };
    let mut ts: Vec<SocketTransport> = (0..world)
        .map(|r| SocketTransport::bind(kind, r, world, 0xBE7C, opts).expect("bind"))
        .collect();
    let addrs: Vec<String> = ts.iter().map(|t| t.local_addr().to_string()).collect();
    for t in ts.iter_mut() {
        for (p, a) in addrs.iter().enumerate() {
            t.set_peer(p, a.clone());
        }
    }
    ts.into_iter()
        .map(|t| Box::new(t) as Box<dyn Transport>)
        .collect()
}

fn mpsc_boxed(world: usize) -> Vec<Box<dyn Transport>> {
    mpsc_world(world)
        .into_iter()
        .map(|t| Box::new(t) as Box<dyn Transport>)
        .collect()
}

/// Runs `iters` dense all-reduces on every rank of the given transports
/// (one thread per rank, after one warmup op) and returns the slowest
/// rank's per-op seconds plus the wire bytes one rank moved per op.
fn bench_collective(
    transports: Vec<Box<dyn Transport>>,
    rows: usize,
    width: usize,
    iters: usize,
) -> (f64, f64) {
    let handles: Vec<_> = transports
        .into_iter()
        .enumerate()
        .map(|(rank, mut t)| {
            std::thread::spawn(move || {
                let mut g = TpGroup::over_transport(t.as_mut()).expect("ring links");
                let mut rng = ChaCha8Rng::seed_from_u64(rank as u64);
                let part = init::randn(&mut rng, [rows, width], 1.0);
                let mut timers = PhaseTimers::default();
                let mut ws = Workspace::new();
                let _ = g.dense_all_reduce(&part, &mut timers, &mut ws);
                let wire0 = g.ring_bytes.wire;
                let t0 = Instant::now();
                for _ in 0..iters {
                    let _ = g.dense_all_reduce(&part, &mut timers, &mut ws);
                }
                let elapsed = t0.elapsed().as_secs_f64();
                let wire = g.ring_bytes.wire - wire0;
                t.shutdown();
                (elapsed / iters as f64, wire as f64 / iters as f64)
            })
        })
        .collect();
    let per_rank: Vec<(f64, f64)> = handles
        .into_iter()
        .map(|h| h.join().expect("rank thread"))
        .collect();
    let per_op = per_rank.iter().map(|r| r.0).fold(0.0, f64::max);
    let wire = per_rank.iter().map(|r| r.1).sum::<f64>() / per_rank.len() as f64;
    (per_op, wire)
}

fn engine_cfg(plan: CompressionPlan) -> (RuntimeConfig, Vec<usize>, usize, usize) {
    let bert = BertConfig {
        vocab: 64,
        hidden: 32,
        layers: 4,
        heads: 4,
        ff_hidden: 64,
        max_seq: 8,
    };
    let (batch, seq) = (4usize, 8usize);
    let cfg = RuntimeConfig {
        mp: MpConfig {
            bert,
            tp: 2,
            pp: 2,
            plan,
            tokens: batch * seq,
            error_feedback: false,
        },
        micro_batches: 2,
        tuning: None,
        trace: false,
    };
    let mut drng = ChaCha8Rng::seed_from_u64(5);
    let ids: Vec<usize> = (0..batch * seq)
        .map(|_| (rand::Rng::gen::<u64>(&mut drng) % 64) as usize)
        .collect();
    (cfg, ids, batch, seq)
}

/// Mean wall-clock seconds of one training step on the engine wired
/// over throttled TCP.
fn bench_engine_step(plan: CompressionPlan, link_mbps: f64, steps: usize) -> f64 {
    let (cfg, ids, batch, seq) = engine_cfg(plan);
    let world = cfg.world();
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let serial = BertEncoder::new(&mut rng, cfg.mp.bert.clone());
    let mut rt_rng = ChaCha8Rng::seed_from_u64(11);
    let transports = socket_world(TransportKind::Tcp, world, Some(link_mbps));
    let mut rt =
        ThreadedRuntime::with_transports(&serial, cfg, &mut rt_rng, transports).expect("engine");
    let mut step = || {
        let y = rt.forward(&ids, batch, seq).expect("forward");
        rt.zero_grad();
        rt.backward(&y).expect("backward");
        rt.sgd_step(1e-2);
    };
    step(); // warmup: lazy connects, first-touch allocations
    let t0 = Instant::now();
    for _ in 0..steps {
        step();
    }
    t0.elapsed().as_secs_f64() / steps as f64
}

fn main() {
    let opts = util::Options::from_args();
    let world = 4usize;
    let (rows, width, iters) = if opts.quick {
        (64, 256, 8)
    } else {
        (256, 1024, 16)
    };
    let payload_bytes = (rows * width * 4) as f64;
    let tcp_caps: &[f64] = if opts.quick {
        &[1000.0, 200.0]
    } else {
        &[2000.0, 500.0, 100.0]
    };

    // 1. Collectives per transport.
    let mut collectives = Vec::new();
    let mut table = Table::new(
        "Dense all-reduce over the transport layer (4 ranks)",
        ["Transport", "Cap Mbit/s", "Per-op ms", "Effective GB/s"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    let mut records = Vec::new();
    type Run = (String, Option<f64>, Vec<Box<dyn Transport>>);
    let mut runs: Vec<Run> = vec![
        ("mpsc".into(), None, mpsc_boxed(world)),
        (
            "uds".into(),
            None,
            socket_world(TransportKind::Uds, world, None),
        ),
        (
            "tcp".into(),
            None,
            socket_world(TransportKind::Tcp, world, None),
        ),
    ];
    for &cap in tcp_caps {
        runs.push((
            "tcp".into(),
            Some(cap),
            socket_world(TransportKind::Tcp, world, Some(cap)),
        ));
    }
    for (transport, cap, ts) in runs {
        let (per_op, wire) = bench_collective(ts, rows, width, iters);
        let gbps = wire / per_op / 1e9;
        let label = match cap {
            Some(c) => format!("{transport}@{c}Mbps"),
            None => transport.clone(),
        };
        table.push_row(vec![
            transport.clone(),
            cap.map_or("—".into(), |c| format!("{c:.0}")),
            format!("{:.3}", per_op * 1e3),
            format!("{gbps:.3}"),
        ]);
        records.push(util::record(
            "net",
            format!("{label} all-reduce"),
            None,
            per_op * 1e3,
            "ms",
        ));
        collectives.push(CollectiveRow {
            transport,
            link_mbps: cap,
            payload_bytes,
            per_op_ms: per_op * 1e3,
            wire_bytes_per_rank_per_op: wire,
            effective_gbps: gbps,
        });
    }

    // 2. Simulator cross-check on the throttled TCP rows, where the
    // nominal bandwidth is known exactly (it is the token bucket's).
    //
    // Two predictions per row: one with the hand-guessed loopback α, and
    // one calibrated from measured transport overhead. The calibration
    // takes two measurements on the *unthrottled* TCP transport: a
    // tiny-payload all-reduce, whose time is pure per-round overhead
    // (`round_latency_from_allreduce` maps it through the model's
    // `2(p−1)` round count), and the full-payload row from section 1,
    // whose remainder after the α term is the host-side socket-copy
    // rate (`host_bandwidth_from_allreduce`). Each throttled row is
    // then a genuine prediction: same constants, only the token-bucket
    // cap changes.
    let (tiny_s, _) = bench_collective(
        socket_world(TransportKind::Tcp, world, None),
        1,
        16,
        iters.max(16),
    );
    let alpha = calibration::round_latency_from_allreduce(world, tiny_s);
    let tcp_loopback = collectives
        .iter()
        .find(|r| r.transport == "tcp" && r.link_mbps.is_none())
        .expect("unthrottled tcp row measured above");
    let host_bw = calibration::host_bandwidth_from_allreduce(
        world,
        payload_bytes,
        tcp_loopback.per_op_ms / 1e3,
        alpha,
    );
    println!(
        "calibration (unthrottled tcp): α={:.1} µs/round, host copy rate {:.1} MB/s",
        alpha * 1e6,
        host_bw / 1e6
    );
    let mut distsim = Vec::new();
    for row in collectives.iter().filter(|r| r.link_mbps.is_some()) {
        let cap = row.link_mbps.expect("filtered");
        let link = LinkSpec {
            kind: LinkKind::Ethernet,
            pair_bandwidth: cap * 1e6 / 8.0,
            latency: LOOPBACK_LATENCY_S,
            scales_with_peers: false,
            compressed_collective_overhead: 0.0,
        };
        let calibrated_link = calibration::calibrate_loopback_link(&link, alpha, host_bw);
        let predicted = allreduce_time(&link, world, payload_bytes as usize);
        let calibrated = allreduce_time(&calibrated_link, world, payload_bytes as usize);
        let measured = row.per_op_ms / 1e3;
        let rel_error = (measured - predicted) / predicted;
        let calibrated_rel_error = (measured - calibrated) / calibrated;
        records.push(util::record(
            "net",
            format!("tcp@{cap}Mbps vs distsim"),
            Some(predicted * 1e3),
            measured * 1e3,
            "ms",
        ));
        records.push(util::record(
            "net",
            format!("tcp@{cap}Mbps vs distsim (calibrated)"),
            Some(calibrated * 1e3),
            measured * 1e3,
            "ms",
        ));
        distsim.push(DistsimRow {
            link_mbps: cap,
            measured_ms: measured * 1e3,
            predicted_ms: predicted * 1e3,
            rel_error,
            frame_latency_us: alpha * 1e6,
            calibrated_ms: calibrated * 1e3,
            calibrated_rel_error,
        });
    }

    // 3. Compression crossover: sweep the cap downward; the codec's
    // fixed cost loses on fast links and wins once the wire dominates.
    let sweep: &[f64] = if opts.quick {
        &[1000.0, 20.0]
    } else {
        &[2000.0, 200.0, 50.0, 20.0]
    };
    let steps = opts.steps.unwrap_or(if opts.quick { 1 } else { 3 });
    let mut baseline_ms = Vec::new();
    let mut compressed_ms = Vec::new();
    for &cap in sweep {
        let base = bench_engine_step(CompressionPlan::none(), cap, steps);
        let comp = bench_engine_step(
            CompressionPlan::last_layers(CompressorSpec::T2, 4, 2),
            cap,
            steps,
        );
        baseline_ms.push(base * 1e3);
        compressed_ms.push(comp * 1e3);
        records.push(util::record(
            "net",
            format!("step w/o @{cap}Mbps"),
            None,
            base * 1e3,
            "ms",
        ));
        records.push(util::record(
            "net",
            format!("step T2 @{cap}Mbps"),
            None,
            comp * 1e3,
            "ms",
        ));
    }
    // The crossover estimate: the geometric mean of the last cap where
    // the baseline won and the first where compression did (the sweep
    // is sorted fastest link first).
    let mut crossover_mbps = None;
    for i in 0..sweep.len() {
        if compressed_ms[i] < baseline_ms[i] {
            crossover_mbps = Some(if i == 0 {
                sweep[0]
            } else {
                (sweep[i - 1] * sweep[i]).sqrt()
            });
            break;
        }
    }
    let mut xtable = Table::new(
        "Compression crossover on throttled TCP (tp=2 pp=2 engine step)",
        ["Cap Mbit/s", "w/o ms", "T2 ms", "Winner"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    for (i, &cap) in sweep.iter().enumerate() {
        xtable.push_row(vec![
            format!("{cap:.0}"),
            format!("{:.2}", baseline_ms[i]),
            format!("{:.2}", compressed_ms[i]),
            if compressed_ms[i] < baseline_ms[i] {
                "T2".into()
            } else {
                "w/o".into()
            },
        ]);
    }

    println!("{table}");
    for d in &distsim {
        println!(
            "distsim check @{:.0} Mbit/s: measured {:.3} ms vs predicted {:.3} ms ({:+.0}% error); \
             calibrated α={:.1} µs/round → {:.3} ms ({:+.0}% error)",
            d.link_mbps,
            d.measured_ms,
            d.predicted_ms,
            100.0 * d.rel_error,
            d.frame_latency_us,
            d.calibrated_ms,
            100.0 * d.calibrated_rel_error
        );
    }
    println!();
    println!("{xtable}");
    match crossover_mbps {
        Some(c) if c >= sweep[0] => {
            println!("compression crossover ≥ {c:.0} Mbit/s (T2 won at every tested cap)")
        }
        Some(c) => println!("compression crossover ≈ {c:.0} Mbit/s (T2 wins below this)"),
        None => println!("compression never won in this sweep (link too fast for the codec)"),
    }

    let bench = NetBench {
        world,
        collectives,
        distsim,
        crossover: CrossoverReport {
            caps_mbps: sweep.to_vec(),
            baseline_step_ms: baseline_ms,
            compressed_step_ms: compressed_ms,
            crossover_mbps,
        },
    };
    match serde_json::to_string_pretty(&bench) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_net.json", json) {
                eprintln!("warning: could not write BENCH_net.json: {e}");
            } else {
                println!("[measurements written to BENCH_net.json]");
            }
        }
        Err(e) => eprintln!("warning: could not serialize BENCH_net.json: {e}"),
    }
    let path = opts.out_dir.join("net.json");
    if let Err(e) = write_records(&path, &records) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[records written to {}]", path.display());
    }
}
