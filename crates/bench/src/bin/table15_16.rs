//! Tables 15–16 — fine-tuning GLUE scores at reduced batch/sequence
//! settings (appendix A): batch 32 and batch 8 at the short sequence
//! length.

use actcomp_bench::{paper, util};
use actcomp_core::report::Table;
use actcomp_core::{accuracy, AccuracyConfig};
use actcomp_data::GlueTask;

fn main() {
    let opts = util::Options::from_args();
    let mut records = Vec::new();

    // The paper's (b=32, s=128) and (b=8, s=128) map onto the scaled
    // model as (16, 12) and (8, 12): same relative reduction from the
    // default (16, 24).
    let settings = [
        (
            "Table 15 (b=32→16, s=128→12)",
            16usize,
            12usize,
            paper::table15(),
        ),
        ("Table 16 (b=8, s=128→12)", 8, 12, paper::table16()),
    ];

    for (title, batch, seq, paper_rows) in settings {
        let mut rows = paper_rows;
        if opts.quick {
            rows.truncate(3);
        }
        let mut header = vec!["Algo".to_string()];
        header.extend(GlueTask::all().iter().map(|t| t.name().to_string()));
        header.push("Avg.".into());
        let mut table = Table::new(format!("{title} [ours (paper)]"), header);

        for (spec, paper_scores) in rows {
            let mut cfg = AccuracyConfig::paper_default().with_spec(spec);
            cfg.batch = batch;
            cfg.seq = seq;
            if let Some(steps) = opts.steps {
                cfg.steps = steps;
            }
            let results = accuracy::glue_suite(&cfg);
            let mut row = vec![spec.label().to_string()];
            for (i, r) in results.iter().enumerate() {
                row.push(util::vs(r.score, Some(paper_scores[i])));
                records.push(util::record(
                    "table15_16",
                    format!("b={batch},s={seq} {spec} {}", r.task.name()),
                    Some(paper_scores[i]),
                    r.score,
                    "score",
                ));
                eprintln!("  [b={batch} {spec} {}] {:.1}", r.task.name(), r.score);
            }
            row.push(format!("{:.1}", accuracy::average(&results)));
            table.push_row(row);
        }
        println!("{table}");
    }
    let path = opts.out_dir.join("table15_16.json");
    if let Err(e) = actcomp_core::report::write_records(&path, &records) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}
