//! Ablation: why the paper excludes low-rank (PowerSGD-style) compression
//! from the activation study. Harvests a real weight gradient and a real
//! activation from training (the Figure 2 matrices) and compresses both
//! with the same rank budget.

use actcomp_bench::util;
use actcomp_compress::{Compressor, LowRank};
use actcomp_core::report::Table;
use actcomp_core::{lowrank, AccuracyConfig};

fn main() {
    let opts = util::Options::from_args();
    let steps = opts.steps.unwrap_or(if opts.quick { 20 } else { 60 });
    let (gradient, activation) = lowrank::harvest(&AccuracyConfig::paper_default(), steps);

    let mut table = Table::new(
        "Ablation — rank-r reconstruction error on gradient vs activation",
        ["rank", "gradient rel. error", "activation rel. error"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    let mut records = Vec::new();
    for rank in [1usize, 2, 4, 8, 16] {
        let err = |x: &actcomp_tensor::Tensor| {
            let mut c = LowRank::new(rank, 0);
            let mut y = c.round_trip(x);
            for _ in 0..5 {
                y = c.round_trip(x); // warm-started subspace iterations
            }
            (x.sub(&y).norm() / x.norm()) as f64
        };
        let ge = err(&gradient);
        let ae = err(&activation);
        table.push_row(vec![
            rank.to_string(),
            format!("{ge:.3}"),
            format!("{ae:.3}"),
        ]);
        records.push(util::record(
            "ablation_lowrank",
            format!("rank{rank} gradient"),
            None,
            ge,
            "rel_error",
        ));
        records.push(util::record(
            "ablation_lowrank",
            format!("rank{rank} activation"),
            None,
            ae,
            "rel_error",
        ));
    }
    util::emit(&opts, "ablation_lowrank", &table, &records);
    println!(
        "The Figure 2 argument, executable: the same rank budget \
         reconstructs the gradient far better than the activation, so \
         PowerSGD-style compressors do not transfer to activations."
    );
}
