//! Tables 11–14 — fine-tuning iteration time at smaller batch/sequence
//! settings, on both machines (the §4.6 hyper-parameter study: small
//! messages erase compression's benefit).

use actcomp_bench::{paper, util};
use actcomp_compress::spec::CompressorSpec;
use actcomp_core::report::Table;
use actcomp_core::throughput::{finetune_breakdown, Machine};

fn main() {
    let opts = util::Options::from_args();
    let mut records = Vec::new();
    let specs = [
        CompressorSpec::Baseline,
        CompressorSpec::A1,
        CompressorSpec::A2,
        CompressorSpec::T1,
        CompressorSpec::R1,
        CompressorSpec::Q1,
        CompressorSpec::Q3,
    ];

    for ((nvlink, batch, seq), baselines) in paper::tables11_14_baselines() {
        let machine = if nvlink {
            Machine::AwsP3
        } else {
            Machine::LocalPcie
        };
        let label = format!(
            "Tables 11–14 — fine-tune time (ms), {} b={batch} s={seq} [ours (paper baseline)]",
            if nvlink { "NVLink" } else { "no NVLink" }
        );
        let mut header = vec!["Setting".to_string()];
        header.extend(specs.iter().map(|s| s.label().to_string()));
        let mut table = Table::new(label, header);

        for ((tp, pp), paper_baseline) in baselines {
            let mut row = vec![format!("TP={tp}, PP={pp}")];
            for spec in &specs {
                let b = finetune_breakdown(machine, tp, pp, batch, seq, *spec);
                let paper_val = (*spec == CompressorSpec::Baseline).then_some(paper_baseline);
                row.push(util::vs(b.total_ms, paper_val));
                records.push(util::record(
                    "table11_14",
                    format!(
                        "{} b={batch},s={seq} TP={tp},PP={pp} {spec}",
                        if nvlink { "NVLink" } else { "PCIe" }
                    ),
                    paper_val,
                    b.total_ms,
                    "ms",
                ));
            }
            table.push_row(row);
        }
        println!("{table}");

        // Takeaway 8 check: at these small settings no compressor should
        // beat the baseline meaningfully.
        for (tp, pp) in [(2usize, 2usize), (4, 1)] {
            let base = finetune_breakdown(machine, tp, pp, batch, seq, CompressorSpec::Baseline);
            let a1 = finetune_breakdown(machine, tp, pp, batch, seq, CompressorSpec::A1);
            let gain = 100.0 * (base.total_ms - a1.total_ms) / base.total_ms;
            println!(
                "  Takeaway 8 ({} b={batch} s={seq} TP={tp},PP={pp}): A1 gain {gain:+.1}%",
                if nvlink { "NVLink" } else { "PCIe" }
            );
        }
        println!();
    }
    let path = opts.out_dir.join("table11_14.json");
    if let Err(e) = actcomp_core::report::write_records(&path, &records) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}
