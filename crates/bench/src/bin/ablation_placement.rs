//! Ablation: why tensor parallelism must stay inside the node (the
//! mechanism behind Table 6's catastrophic TP=8 row, and Narayanan et
//! al.'s placement rule the paper follows). Sweeps (TP, PP) factorizations
//! of 16 GPUs and attributes the cost.

use actcomp_bench::util;
use actcomp_compress::spec::CompressorSpec;
use actcomp_core::report::Table;
use actcomp_core::throughput::pretrain_breakdown;
use actcomp_distsim::{ClusterSpec, Parallelism};

fn main() {
    let opts = util::Options::from_args();
    let cluster = ClusterSpec::p3_cluster(4);
    let mut table = Table::new(
        "Ablation — (TP, PP) placement on 4x4 GPUs (pre-train, uncompressed)",
        [
            "setting",
            "TP spans nodes?",
            "total (ms)",
            "tensor comm (ms)",
            "wait & PP (ms)",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
    );
    let mut records = Vec::new();
    for (tp, pp) in [(1usize, 16usize), (2, 8), (4, 4), (8, 2), (16, 1)] {
        let b = pretrain_breakdown(tp, pp, CompressorSpec::Baseline);
        let placement = cluster.place(Parallelism::new(tp, pp));
        let crosses = placement.tp_crosses_nodes(&cluster);
        table.push_row(vec![
            format!("TP={tp}, PP={pp}"),
            if crosses { "YES" } else { "no" }.into(),
            format!("{:.0}", b.total_ms),
            format!("{:.0}", b.tensor_comm_ms),
            format!("{:.0}", b.wait_pp_ms),
        ]);
        records.push(util::record(
            "ablation_placement",
            format!("TP={tp},PP={pp}"),
            None,
            b.total_ms,
            "ms",
        ));
    }
    util::emit(&opts, "ablation_placement", &table, &records);
    println!(
        "The moment the TP group crosses the 10 Gbps boundary (TP=8, TP=16), \
         per-layer all-reduces land on the slow fabric and iteration time \
         explodes — Table 6's TP=8 row, isolated."
    );
}
