//! Figure 1 — communication overhead of model parallelism on BERT-Large
//! with 4 GPUs across (batch, seq) settings.

use actcomp_bench::util;
use actcomp_core::report::Table;
use actcomp_core::throughput::comm_overhead_fraction;

fn main() {
    let opts = util::Options::from_args();
    let mut table = Table::new(
        "Figure 1 — fraction of iteration time in model-parallel communication (TP=4)",
        ["(batch, seq)", "comm fraction"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    let mut records = Vec::new();
    for (b, s) in [
        (8, 128),
        (8, 512),
        (16, 128),
        (16, 512),
        (32, 128),
        (32, 512),
    ] {
        let f = comm_overhead_fraction(b, s);
        table.push_row(vec![format!("({b}, {s})"), format!("{:.1}%", 100.0 * f)]);
        records.push(util::record(
            "figure1",
            format!("b={b},s={s}"),
            None,
            f,
            "fraction",
        ));
    }
    util::emit(&opts, "figure1", &table, &records);
    println!(
        "Paper's point: communication is a major share of iteration time \
         across settings, motivating compression."
    );
}
