//! Regenerates every table and figure, writing JSON records and a
//! markdown summary under `results/`.
//!
//! Usage: `run_all [--quick] [--steps N] [--out DIR] [--throughput-only]`

use actcomp_check::ExperimentConfig;
use std::process::Command;

fn main() {
    // Pre-flight: statically validate the experiment configurations every
    // harness below instantiates (fine-tuning and pre-training setups).
    // A broken geometry dies here with the full diagnostic report instead
    // of a mid-run panic in the fifth harness.
    for (name, cfg) in [
        ("paper_default", ExperimentConfig::paper_default()),
        ("paper_pretrain", ExperimentConfig::paper_pretrain()),
    ] {
        if let Err(e) = actcomp_check::validate(&cfg) {
            eprintln!("static check failed for the {name} configuration:\n{e}");
            std::process::exit(1);
        }
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let throughput_only = args.iter().any(|a| a == "--throughput-only");
    let forwarded: Vec<&String> = args.iter().filter(|a| *a != "--throughput-only").collect();

    let throughput = [
        "figure1",
        "table2",
        "table3",
        "table4",
        "table6",
        "table7",
        "table9",
        "table10",
        "table11_14",
        "figure5",
        "ablation_bandwidth",
        "ablation_schedule",
        "ablation_placement",
        "ablation_memory",
    ];
    let accuracy = [
        "figure2",
        "table5",
        "table8",
        "figure4",
        "table15_16",
        "ablation_lowrank",
        "ablation_ef",
    ];

    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    let mut failed = Vec::new();
    let bins: Vec<&str> = if throughput_only {
        throughput.to_vec()
    } else {
        throughput.iter().chain(accuracy.iter()).copied().collect()
    };
    for bin in bins {
        println!("==================== {bin} ====================");
        let status = Command::new(exe_dir.join(bin))
            .args(forwarded.iter().map(|s| s.as_str()))
            .status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("{bin} failed: {other:?}");
                failed.push(bin);
            }
        }
    }
    if failed.is_empty() {
        println!("\nAll harnesses completed. Records under results/.");
    } else {
        eprintln!("\nFailed harnesses: {failed:?}");
        std::process::exit(1);
    }
}
