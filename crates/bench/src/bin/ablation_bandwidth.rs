//! Ablation: "How do different network bandwidths affect the best
//! compression method?" (§4's third experimental question).
//!
//! Sweeps the intra-node interconnect from NVLink-class down to
//! geo-distributed-class bandwidth and reports, at each point, each
//! family's end-to-end gain — locating the crossover below which
//! compression starts paying (and where even Top-K's overhead amortizes,
//! the Wang et al. 2022 slow-network regime).

use actcomp_bench::util;
use actcomp_compress::cost::CostModel;
use actcomp_compress::spec::CompressorSpec;
use actcomp_core::report::Table;
use actcomp_distsim::workload::ModelShape;
use actcomp_distsim::{
    calibration, simulate_iteration, ClusterSpec, CompressionPlan, LinkKind, LinkSpec, MachineSpec,
    Parallelism, TrainSetup,
};

fn iteration_ms(bandwidth: f64, spec: CompressorSpec) -> f64 {
    let link = LinkSpec {
        kind: LinkKind::Pcie,
        pair_bandwidth: bandwidth,
        latency: 50.0e-6,
        scales_with_peers: false,
        compressed_collective_overhead: 0.0,
    };
    let cluster = ClusterSpec {
        nodes: 1,
        machine: MachineSpec {
            gpus: 4,
            intra: link,
        },
        inter: LinkSpec::ethernet_10g(),
    };
    let plan = if spec == CompressorSpec::Baseline {
        CompressionPlan::none()
    } else {
        CompressionPlan::last_layers(spec, 24, 12)
    };
    let setup = TrainSetup {
        model: ModelShape::bert_large(),
        seq: 512,
        micro_batch: 32,
        num_micro_batches: 1,
        parallelism: Parallelism::new(2, 2),
        cluster,
        gpu: calibration::v100_finetune(),
        plan,
        cost: CostModel::v100(),
    };
    simulate_iteration(&setup).total_ms
}

fn main() {
    let opts = util::Options::from_args();
    let mut table = Table::new(
        "Ablation — compression gain vs interconnect bandwidth (fine-tune, TP=2 PP=2)",
        ["bandwidth", "w/o (ms)", "A1 gain", "T1 gain", "Q1 gain"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    let mut records = Vec::new();
    for (label, bw) in [
        ("40 GB/s (NVLink-class)", 40.0e9),
        ("11 GB/s (PCIe)", 11.0e9),
        ("3 GB/s", 3.0e9),
        ("1 GB/s", 1.0e9),
        ("0.3 GB/s (10 GbE-class)", 0.3e9),
        ("0.05 GB/s (geo-distributed)", 0.05e9),
    ] {
        let base = iteration_ms(bw, CompressorSpec::Baseline);
        let gain = |spec| 100.0 * (base - iteration_ms(bw, spec)) / base;
        let (a1, t1, q1) = (
            gain(CompressorSpec::A1),
            gain(CompressorSpec::T1),
            gain(CompressorSpec::Q1),
        );
        table.push_row(vec![
            label.to_string(),
            format!("{base:.0}"),
            format!("{a1:+.1}%"),
            format!("{t1:+.1}%"),
            format!("{q1:+.1}%"),
        ]);
        for (name, g) in [("A1", a1), ("T1", t1), ("Q1", q1)] {
            records.push(util::record(
                "ablation_bandwidth",
                format!("{label} {name}"),
                None,
                g,
                "percent",
            ));
        }
    }
    util::emit(&opts, "ablation_bandwidth", &table, &records);
    println!(
        "Expected shape: gains ~0 at NVLink-class bandwidth, AE first to \
         win as bandwidth falls, and at geo-distributed bandwidth even \
         Top-K/quantization overheads amortize (the Wang et al. 2022 regime)."
    );
}
