//! Table 7 — pre-training iteration breakdown (TP=4, PP=4, 4 nodes).

use actcomp_bench::{paper, util};
use actcomp_core::report::Table;
use actcomp_core::throughput::pretrain_breakdown;

fn main() {
    let opts = util::Options::from_args();
    let mut table = Table::new(
        "Table 7 — pre-train breakdown (ms), TP=4 PP=4 [ours (paper)]",
        [
            "Algo",
            "Forward",
            "Backward",
            "Optimizer",
            "Wait&PP",
            "Total",
            "Enc",
            "Dec",
            "Comm",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
    );
    let mut records = Vec::new();

    for (spec, prow) in paper::table7() {
        let b = pretrain_breakdown(4, 4, spec);
        let ours = [
            b.forward_ms,
            b.backward_ms,
            b.optimizer_ms,
            b.wait_pp_ms,
            b.total_ms,
            b.tensor_enc_ms,
            b.tensor_dec_ms,
            b.tensor_comm_ms,
        ];
        let mut row = vec![spec.label().to_string()];
        let names = [
            "forward",
            "backward",
            "optimizer",
            "wait",
            "total",
            "enc",
            "dec",
            "comm",
        ];
        for ((our, paper_val), name) in ours.iter().zip(prow).zip(names) {
            row.push(util::vs(*our, paper_val));
            records.push(util::record(
                "table7",
                format!("{spec} {name}"),
                paper_val,
                *our,
                "ms",
            ));
        }
        table.push_row(row);
    }
    util::emit(&opts, "table7", &table, &records);
}
