//! Table 9 — per-pipeline-stage-pair communication time per micro-batch
//! (pre-training, TP=4 PP=4), uncompressed vs. A2 on the last 12 layers.

use actcomp_bench::{paper, util};
use actcomp_compress::spec::CompressorSpec;
use actcomp_core::report::Table;
use actcomp_core::throughput::pretrain_breakdown;

fn main() {
    let opts = util::Options::from_args();
    let base = pretrain_breakdown(4, 4, CompressorSpec::Baseline);
    let a2 = pretrain_breakdown(4, 4, CompressorSpec::A2);
    let mut table = Table::new(
        "Table 9 — pipeline-stage communication time (ms/micro-batch) [ours (paper)]",
        ["Pipeline Stages", "Comm. (w/o)", "Comm. (A2)"]
            .into_iter()
            .map(String::from)
            .collect(),
    );
    let mut records = Vec::new();
    for (b, paper_wo, paper_a2) in paper::table9() {
        let ours_wo = base.boundary_per_mb_ms[b];
        let ours_a2 = a2.boundary_per_mb_ms[b];
        table.push_row(vec![
            format!("{b} <-> {}", b + 1),
            util::vs(ours_wo, Some(paper_wo)),
            util::vs(ours_a2, Some(paper_a2)),
        ]);
        records.push(util::record(
            "table9",
            format!("boundary{b} w/o"),
            Some(paper_wo),
            ours_wo,
            "ms",
        ));
        records.push(util::record(
            "table9",
            format!("boundary{b} A2"),
            Some(paper_a2),
            ours_a2,
            "ms",
        ));
    }
    util::emit(&opts, "table9", &table, &records);
    println!(
        "Shape check: boundary 0 feeds uncompressed layers (unchanged); \
         boundaries 1 and 2 carry compressed activations (~6x smaller)."
    );
}
