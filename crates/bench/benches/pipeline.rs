//! Criterion benchmarks of the pipeline-schedule simulator and the full
//! iteration model.

use actcomp_compress::spec::CompressorSpec;
use actcomp_core::throughput::{finetune_breakdown, pretrain_breakdown, Machine};
use actcomp_distsim::pipeline::{simulate_gpipe, BoundaryTiming, StageTiming};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_gpipe(c: &mut Criterion) {
    let stages = vec![
        StageTiming {
            fwd_s: 0.05,
            bwd_s: 0.06
        };
        8
    ];
    let boundaries = vec![
        BoundaryTiming {
            fwd_s: 0.01,
            bwd_s: 0.01
        };
        7
    ];
    c.bench_function("gpipe_8stages_64mb", |b| {
        b.iter(|| simulate_gpipe(&stages, &boundaries, 64))
    });
}

fn bench_iteration(c: &mut Criterion) {
    c.bench_function("iteration_finetune", |b| {
        b.iter(|| finetune_breakdown(Machine::LocalPcie, 2, 2, 32, 512, CompressorSpec::A1))
    });
    c.bench_function("iteration_pretrain", |b| {
        b.iter(|| pretrain_breakdown(4, 4, CompressorSpec::A2))
    });
}

criterion_group!(benches, bench_gpipe, bench_iteration);
criterion_main!(benches);
