//! Criterion micro-benchmarks of the compression kernels — the real
//! arithmetic counterpart of the paper's encode/decode cost measurements
//! (Table 4's Enc/Dec columns).

use actcomp_compress::{AutoEncoder, Compressor, Identity, Quantizer, RandomK, TopK};
use actcomp_tensor::{init, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn activation(elems: usize) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    init::randn(&mut rng, [elems / 64, 64], 1.0)
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    for &n in &[4096usize, 65_536, 262_144] {
        let x = activation(n);
        group.throughput(Throughput::Elements(n as u64));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut compressors: Vec<(&str, Box<dyn Compressor>)> = vec![
            ("identity", Box::new(Identity::new())),
            ("ae", Box::new(AutoEncoder::new(&mut rng, 64, 6))),
            ("topk", Box::new(TopK::new(n / 20))),
            ("randk", Box::new(RandomK::new(n / 20, 7))),
            ("quant2", Box::new(Quantizer::new(2))),
            ("quant8", Box::new(Quantizer::new(8))),
        ];
        for (name, comp) in &mut compressors {
            group.bench_with_input(BenchmarkId::new(*name, n), &x, |b, x| {
                b.iter(|| comp.compress(x))
            });
        }
    }
    group.finish();
}

fn bench_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_trip");
    let n = 65_536;
    let x = activation(n);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut compressors: Vec<(&str, Box<dyn Compressor>)> = vec![
        ("ae", Box::new(AutoEncoder::new(&mut rng, 64, 6))),
        ("topk", Box::new(TopK::new(n / 20))),
        ("quant4", Box::new(Quantizer::new(4))),
    ];
    for (name, comp) in &mut compressors {
        group.bench_function(*name, |b| b.iter(|| comp.round_trip(&x)));
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_round_trip);
criterion_main!(benches);
