//! Criterion benchmarks of the tensor kernels backing the training stack.

use actcomp_tensor::{init, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let a = init::randn(&mut rng, [n, n], 1.0);
        let b = init::randn(&mut rng, [n, n], 1.0);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(
            BenchmarkId::new("nn", n),
            &(a.clone(), b.clone()),
            |bch, (a, b)| bch.iter(|| a.matmul(b)),
        );
        group.bench_with_input(
            BenchmarkId::new("tn", n),
            &(a.clone(), b.clone()),
            |bch, (a, b)| bch.iter(|| a.matmul_tn(b)),
        );
        group.bench_with_input(BenchmarkId::new("nt", n), &(a, b), |bch, (a, b)| {
            bch.iter(|| a.matmul_nt(b))
        });
    }
    group.finish();
}

fn bench_softmax_and_svd(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let x = init::randn(&mut rng, [128, 128], 1.0);
    c.bench_function("softmax_rows_128", |b| b.iter(|| x.softmax_rows()));
    let small = init::randn(&mut rng, [32, 32], 1.0);
    c.bench_function("jacobi_svd_32", |b| {
        b.iter(|| actcomp_tensor::linalg::singular_values(&small))
    });
    let _ = Tensor::ones([1]);
}

criterion_group!(benches, bench_matmul, bench_softmax_and_svd);
criterion_main!(benches);
