//! Criterion benchmarks of the cluster simulator's collective models and
//! the numerically-real compressed all-reduce.

use actcomp_compress::{AutoEncoder, Compressor, Identity, TopK};
use actcomp_distsim::collective::{allgather_time, allreduce_time};
use actcomp_distsim::LinkSpec;
use actcomp_mp::CompressedAllReduce;
use actcomp_tensor::init;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_cost_models(c: &mut Criterion) {
    let link = LinkSpec::nvlink();
    c.bench_function("allreduce_cost_model", |b| {
        b.iter(|| allreduce_time(&link, 4, 33_554_432))
    });
    c.bench_function("allgather_cost_model", |b| {
        b.iter(|| allgather_time(&link, 4, 1_638_400))
    });
}

fn bench_real_reduce(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let partials: Vec<_> = (0..4)
        .map(|_| init::randn(&mut rng, [64, 64], 1.0))
        .collect();

    let mut id_reduce = CompressedAllReduce::new(
        (0..4)
            .map(|_| Box::new(Identity::new()) as Box<dyn Compressor>)
            .collect(),
    );
    c.bench_function("reduce_identity_4x4096", |b| {
        b.iter(|| id_reduce.forward(&partials))
    });

    let mut ae_reduce = CompressedAllReduce::new(
        (0..4)
            .map(|_| {
                let mut r = ChaCha8Rng::seed_from_u64(1);
                Box::new(AutoEncoder::new(&mut r, 64, 6)) as Box<dyn Compressor>
            })
            .collect(),
    );
    c.bench_function("reduce_ae_4x4096", |b| {
        b.iter(|| ae_reduce.forward(&partials))
    });

    let mut tk_reduce = CompressedAllReduce::new(
        (0..4)
            .map(|_| Box::new(TopK::new(200)) as Box<dyn Compressor>)
            .collect(),
    );
    c.bench_function("reduce_topk_4x4096", |b| {
        b.iter(|| tk_reduce.forward(&partials))
    });
}

criterion_group!(benches, bench_cost_models, bench_real_reduce);
criterion_main!(benches);
