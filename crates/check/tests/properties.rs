//! Validator soundness: any configuration `actcomp-check` accepts must
//! run one simulated training iteration without panicking, and the
//! numbers it produces must be finite. This is the property that makes
//! the static checker trustworthy — "no diagnostics" has to mean "safe
//! to spend compute on".

use actcomp_check::{check, ExperimentConfig, Severity};
use actcomp_compress::cost::CostModel;
use actcomp_distsim::calibration;
use actcomp_distsim::iteration::{simulate_iteration, TrainSetup};
use actcomp_distsim::topology::Parallelism;
use actcomp_distsim::workload::ModelShape;
use proptest::prelude::*;

/// Builds the dynamic `TrainSetup` the simulator consumes from a config
/// the checker has already accepted (so every `expect` here is backed by
/// a diagnostic that would otherwise have fired).
fn to_setup(cfg: &ExperimentConfig) -> TrainSetup {
    TrainSetup {
        model: ModelShape {
            layers: cfg.model.layers,
            hidden: cfg.model.hidden,
            vocab: cfg.model.vocab,
            max_seq: cfg.model.max_seq,
        },
        seq: cfg.batch.seq,
        micro_batch: cfg.batch.micro_batch,
        num_micro_batches: cfg.batch.num_micro_batches,
        parallelism: Parallelism::new(cfg.parallelism.tp, cfg.parallelism.pp),
        cluster: cfg.resolve_cluster().expect("accepted preset resolves"),
        gpu: calibration::v100_finetune(),
        plan: cfg.resolve_plan().expect("accepted spec resolves"),
        cost: CostModel::v100(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accepted_configs_simulate_without_panicking(
        layers in prop::sample::select(vec![2usize, 4, 8, 12, 24]),
        hidden in prop::sample::select(vec![256usize, 512, 1024]),
        heads in prop::sample::select(vec![4usize, 8, 16]),
        tp in prop::sample::select(vec![1usize, 2, 4]),
        pp in prop::sample::select(vec![1usize, 2, 4]),
        preset in prop::sample::select(vec!["p3_8xlarge", "local_no_nvlink", "p3_cluster"]),
        nodes in prop::sample::select(vec![1usize, 2, 4]),
        spec in prop::sample::select(vec!["w/o", "A1", "A2", "T1", "T3", "R2", "Q1", "Q2", "Z9"]),
        kind in prop::sample::select(vec!["gpipe", "1f1b"]),
        micro_batch in prop::sample::select(vec![1usize, 8, 32]),
        seq in prop::sample::select(vec![32usize, 128, 512]),
        m in prop::sample::select(vec![1usize, 2, 4]),
        error_feedback in prop::sample::select(vec![false, true]),
    ) {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.model.layers = layers;
        cfg.model.hidden = hidden;
        cfg.model.heads = heads;
        cfg.model.ff_hidden = 4 * hidden;
        cfg.parallelism.tp = tp;
        cfg.parallelism.pp = pp;
        cfg.cluster.preset = preset.to_string();
        cfg.cluster.nodes = nodes;
        cfg.plan.spec = spec.to_string();
        cfg.plan.error_feedback = error_feedback;
        cfg.schedule.kind = kind.to_string();
        cfg.batch.micro_batch = micro_batch;
        cfg.batch.seq = seq;
        cfg.batch.num_micro_batches = m;
        cfg.memory.device_gb = 32.0;

        let diags = check(&cfg);
        if diags.iter().any(|d| d.severity == Severity::Error) {
            // Rejected configs are out of scope here; dedicated unit tests
            // pin each rejection class.
            return Ok(());
        }

        // The checker accepted it: the simulator must not panic, and the
        // breakdown must be finite and positive.
        let breakdown = simulate_iteration(&to_setup(&cfg));
        prop_assert!(breakdown.total_ms.is_finite() && breakdown.total_ms > 0.0);
        prop_assert!(breakdown.forward_ms.is_finite() && breakdown.forward_ms >= 0.0);
        prop_assert!(breakdown.backward_ms.is_finite() && breakdown.backward_ms >= 0.0);
        prop_assert!(breakdown.wait_pp_ms.is_finite() && breakdown.wait_pp_ms >= 0.0);
        for b in &breakdown.boundary_per_mb_ms {
            prop_assert!(b.is_finite() && *b >= 0.0);
        }
    }

    #[test]
    fn paper_defaults_stay_accepted_under_spec_swaps(
        spec in prop::sample::select(vec!["w/o", "A1", "A2", "T1", "T2", "T3", "T4",
                                          "R1", "R2", "R3", "R4", "Q1", "Q2", "Q3"]),
    ) {
        // Every Table 1 spec dropped into the paper-default geometry is a
        // valid experiment; the simulator must accept all of them too.
        let mut cfg = ExperimentConfig::paper_default();
        cfg.plan.spec = spec.to_string();
        let diags = check(&cfg);
        prop_assert!(
            !diags.iter().any(|d| d.severity == Severity::Error),
            "spec {} rejected: {:?}", spec, diags
        );
        let breakdown = simulate_iteration(&to_setup(&cfg));
        prop_assert!(breakdown.total_ms.is_finite() && breakdown.total_ms > 0.0);
    }
}
