//! The experiment-configuration schema `actcomp check` validates.
//!
//! An [`ExperimentConfig`] is the static description of one model-parallel
//! training run: model geometry, `(TP, PP)` degrees, the cluster it is
//! placed on, batch geometry, the pipeline schedule, and the compression
//! plan. It deliberately mirrors `distsim::TrainSetup` but stays in the
//! "stringly" domain (spec labels, preset names) so that *resolution
//! failures are diagnostics, not panics* — the whole point of a static
//! validator.

use actcomp_compress::plan::CompressionPlan;
use actcomp_compress::spec::CompressorSpec;
use actcomp_distsim::hardware::ClusterSpec;
use serde::{Deserialize, Serialize};

/// Transformer geometry (the shape algebra's input).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSection {
    /// Encoder layers.
    pub layers: usize,
    /// Hidden width `h`.
    pub hidden: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Feed-forward inner width.
    pub ff_hidden: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Position-table size.
    pub max_seq: usize,
}

/// `(TP, PP)` degrees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelismSection {
    /// Tensor model-parallel degree.
    pub tp: usize,
    /// Pipeline model-parallel degree.
    pub pp: usize,
}

/// The cluster the job is placed on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSection {
    /// Hardware preset: `p3_8xlarge`, `local_no_nvlink`, or `p3_cluster`.
    pub preset: String,
    /// Node count (`p3_cluster` honours it; single-node presets require 1).
    pub nodes: usize,
}

/// Batch geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchSection {
    /// Sequences per micro-batch.
    pub micro_batch: usize,
    /// Sequence length.
    pub seq: usize,
    /// Micro-batches per iteration.
    pub num_micro_batches: usize,
}

/// One forward/backward op in a custom pipeline schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpSpec {
    /// Micro-batch index.
    pub mb: usize,
    /// Pipeline stage the op runs on.
    pub stage: usize,
    /// Backward (true) or forward (false).
    pub backward: bool,
}

/// Pipeline schedule selection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleSection {
    /// `gpipe`, `1f1b`, or `custom`.
    pub kind: String,
    /// For `custom`: each stage's op order. Stage `s` owns `orders[s]`.
    pub orders: Option<Vec<Vec<OpSpec>>>,
}

/// Compression placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSection {
    /// Table 1 spec label (`w/o`, `A1`, `T3`, `Q2`, …).
    pub spec: String,
    /// First compressed layer; both `start_layer` and `num_layers` omitted
    /// means the paper's default (last half of the layers).
    pub start_layer: Option<usize>,
    /// Number of compressed layers.
    pub num_layers: Option<usize>,
    /// Auto-encoder code-dimension override (the paper's Figure 5
    /// bandwidth sweep). Only meaningful for AE-family specs.
    pub code_dim: Option<usize>,
    /// The compression ratio the experiment claims (e.g. copied from
    /// Table 1); checked against the actual wire-byte arithmetic.
    pub claimed_ratio: Option<f64>,
    /// Wrap compressors in error feedback (§3.3 extension hook).
    pub error_feedback: bool,
}

/// Per-device memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySection {
    /// Device memory in GB (16.0 for the paper's V100s).
    pub device_gb: f64,
}

/// Execution-backend selection for `actcomp-runtime`.
///
/// Absent means "serial executor, whole-batch steps" — the historical
/// behaviour — so existing configs keep validating unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeSection {
    /// Execution backend: `threads` (one OS thread per rank), `serial`,
    /// or `procs` (one OS process per rank over sockets).
    pub backend: String,
    /// Worker-thread count; when given it must equal `tp * pp` (the
    /// threaded engine spawns exactly one thread per rank).
    pub threads: Option<usize>,
    /// Micro-batches per engine step (omitted: 1); must divide
    /// `batch.micro_batch`.
    pub micro_batches: Option<usize>,
    /// Optional rank→thread placement; must be a bijection over
    /// `0..tp*pp`.
    pub rank_map: Option<Vec<usize>>,
    /// Compute-kernel pool size *per rank* (the GEMM worker count, not
    /// the rank-thread count). Omitted: the engine resolves it from the
    /// `ACTCOMP_THREADS` environment variable, then available
    /// parallelism. Must be at least 1 when given.
    pub kernel_threads: Option<usize>,
    /// Rows per chunk in ring collectives. Omitted: the engine resolves
    /// it from `ACTCOMP_CHUNK_ROWS`, then splits each collective into
    /// four chunks. Must be at least 1 when given.
    pub chunk_rows: Option<usize>,
    /// Maximum reduce chunks the ring pipeline keeps in flight ahead of
    /// the broadcasts it has consumed. Omitted: 4. Must be at least 1
    /// when given.
    pub pipeline_depth: Option<usize>,
    /// Data-plane wire for the `procs` backend: `uds` (default) or
    /// `tcp`; `mpsc` is the in-process trait backend and cannot cross
    /// processes. Meaningless for other backends.
    pub transport: Option<String>,
    /// Outgoing per-rank bandwidth cap in Mbit/s; requires the `tcp`
    /// transport (the token bucket models a NIC, and only TCP runs on
    /// one).
    pub link_mbps: Option<f64>,
    /// Worker-process count for the `procs` backend; when given it must
    /// equal `tp * pp` (one process per rank).
    pub world_size: Option<usize>,
    /// Explicit per-rank listen addresses (`host:port` for `tcp`,
    /// filesystem paths for `uds`). Omitted: every rank binds an
    /// ephemeral address. When given, one address per rank, no
    /// collisions.
    pub listen: Option<Vec<String>>,
    /// Record comm events for conformance auditing (`actcomp run
    /// --audit`). Only the in-process backends can trace; the `procs`
    /// backend rejects it.
    pub trace: Option<bool>,
    /// Per-step response deadline in seconds for the `procs` launcher
    /// (omitted: 600). Must be positive and finite.
    pub step_timeout_s: Option<f64>,
    /// Worker rendezvous deadline in seconds for the `procs` launcher
    /// (omitted: 120). Must be positive and finite.
    pub rendezvous_timeout_s: Option<f64>,
    /// Deterministic fault-injection spec (`actcomp run --fault`
    /// grammar, e.g. `kill:rank=1@step=3` or `corrupt:frame=2,seed=7`).
    /// Only the `procs` backend injects faults.
    pub fault: Option<String>,
    /// Take a distributed checkpoint every N steps (`procs` backend
    /// only). Must be at least 1 when given.
    pub checkpoint_every: Option<usize>,
    /// Directory for checkpoint shards and the recovery manifest.
    pub checkpoint_dir: Option<String>,
    /// Worker-generation restarts the supervisor may attempt before
    /// giving up (`procs` backend only).
    pub max_restarts: Option<usize>,
    /// `actcomp serve`: most requests coalesced into one engine batch
    /// (omitted: 8). Must be at least 1 when given; serving requires
    /// the `threads` or `procs` backend.
    pub max_batch: Option<usize>,
    /// `actcomp serve`: microseconds the dispatcher waits to fill a
    /// batch beyond the first queued request (omitted: 200).
    pub batch_window_us: Option<u64>,
    /// Dense-activation precision on framed transports: `f32` (default,
    /// bit-exact) or `f16` (half the dense wire bytes, ~1e-3 relative
    /// rounding). Ignored by in-process typed channels.
    pub wire_dtype: Option<String>,
}

impl RuntimeSection {
    /// The threaded-backend default: thread count inferred from the
    /// parallelism degrees, one micro-batch, identity placement.
    pub fn threads_default() -> Self {
        RuntimeSection {
            backend: "threads".to_string(),
            threads: None,
            micro_batches: None,
            rank_map: None,
            kernel_threads: None,
            chunk_rows: None,
            pipeline_depth: None,
            transport: None,
            link_mbps: None,
            world_size: None,
            listen: None,
            trace: None,
            step_timeout_s: None,
            rendezvous_timeout_s: None,
            fault: None,
            checkpoint_every: None,
            checkpoint_dir: None,
            max_restarts: None,
            max_batch: None,
            batch_window_us: None,
            wire_dtype: None,
        }
    }

    /// Micro-batches per engine step after defaulting (omitted means 1).
    pub fn micro_batches(&self) -> usize {
        self.micro_batches.unwrap_or(1)
    }
}

/// A complete, statically checkable experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Transformer geometry.
    pub model: ModelSection,
    /// `(TP, PP)` degrees.
    pub parallelism: ParallelismSection,
    /// Target cluster.
    pub cluster: ClusterSection,
    /// Batch geometry.
    pub batch: BatchSection,
    /// Pipeline schedule.
    pub schedule: ScheduleSection,
    /// Compression placement.
    pub plan: PlanSection,
    /// Device memory budget.
    pub memory: MemorySection,
    /// Execution backend (absent: serial executor, whole-batch steps).
    pub runtime: Option<RuntimeSection>,
}

impl ExperimentConfig {
    /// The paper's fine-tuning default: BERT-Large, TP=2 / PP=2 on the
    /// PCIe machine, batch 32 / seq 512, A1 on the last 12 layers.
    pub fn paper_default() -> Self {
        ExperimentConfig {
            model: ModelSection {
                layers: 24,
                hidden: 1024,
                heads: 16,
                ff_hidden: 4096,
                vocab: 30_522,
                max_seq: 512,
            },
            parallelism: ParallelismSection { tp: 2, pp: 2 },
            cluster: ClusterSection {
                preset: "local_no_nvlink".to_string(),
                nodes: 1,
            },
            batch: BatchSection {
                micro_batch: 32,
                seq: 512,
                num_micro_batches: 1,
            },
            schedule: ScheduleSection {
                kind: "gpipe".to_string(),
                orders: None,
            },
            plan: PlanSection {
                spec: "A1".to_string(),
                start_layer: None,
                num_layers: None,
                code_dim: None,
                claimed_ratio: None,
                error_feedback: false,
            },
            memory: MemorySection { device_gb: 16.0 },
            runtime: None,
        }
    }

    /// The paper's pre-training setup: TP=4 / PP=4 across 4 p3.8xlarge
    /// nodes, micro-batch 128 / seq 128 / 8 micro-batches, A2 on the last
    /// 12 layers.
    pub fn paper_pretrain() -> Self {
        let mut cfg = Self::paper_default();
        cfg.parallelism = ParallelismSection { tp: 4, pp: 4 };
        cfg.cluster = ClusterSection {
            preset: "p3_cluster".to_string(),
            nodes: 4,
        };
        cfg.batch = BatchSection {
            micro_batch: 128,
            seq: 128,
            num_micro_batches: 8,
        };
        cfg.plan.spec = "A2".to_string();
        cfg
    }

    /// Parses a config from JSON text.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Serializes the config as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }

    /// Resolves the compressor spec label, if it names a Table 1 entry.
    pub fn resolve_spec(&self) -> Option<CompressorSpec> {
        resolve_spec_label(&self.plan.spec)
    }

    /// Resolves the compression plan, when the spec label resolves. The
    /// placement may still be out of bounds — that is the checker's job to
    /// report, so no bounds are enforced here.
    pub fn resolve_plan(&self) -> Option<CompressionPlan> {
        let spec = self.resolve_spec()?;
        if spec == CompressorSpec::Baseline {
            return Some(CompressionPlan::none());
        }
        let (start, num) = self.resolved_window();
        Some(CompressionPlan::window(spec, start, num))
    }

    /// The `(start_layer, num_layers)` compression window after defaulting:
    /// both omitted means the paper's last-half placement; a lone
    /// `num_layers` starts at layer 0; a lone `start_layer` covers half
    /// the model.
    pub fn resolved_window(&self) -> (usize, usize) {
        match (self.plan.start_layer, self.plan.num_layers) {
            (None, None) => {
                let n = self.model.layers / 2;
                (self.model.layers.saturating_sub(n), n)
            }
            (start, num) => (start.unwrap_or(0), num.unwrap_or(self.model.layers / 2)),
        }
    }

    /// Resolves the cluster preset, if recognized.
    pub fn resolve_cluster(&self) -> Option<ClusterSpec> {
        match self.cluster.preset.as_str() {
            "p3_8xlarge" => Some(ClusterSpec::p3_8xlarge()),
            "local_no_nvlink" => Some(ClusterSpec::local_no_nvlink()),
            "p3_cluster" => Some(ClusterSpec::p3_cluster(self.cluster.nodes.max(1))),
            _ => None,
        }
    }

    /// Device memory budget in bytes.
    pub fn device_bytes(&self) -> f64 {
        self.memory.device_gb * 1e9
    }
}

/// Looks up a Table 1 spec by its paper label (case-insensitive).
pub fn resolve_spec_label(label: &str) -> Option<CompressorSpec> {
    CompressorSpec::all()
        .into_iter()
        .find(|s| s.label().eq_ignore_ascii_case(label))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips_through_json() {
        let cfg = ExperimentConfig::paper_default();
        let json = cfg.to_json();
        let back = ExperimentConfig::from_json(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn optional_plan_fields_may_be_omitted() {
        // All Option-typed keys (start_layer, num_layers, code_dim,
        // claimed_ratio, orders) are absent from this document.
        let json = r#"{
            "model": {"layers": 24, "hidden": 1024, "heads": 16,
                      "ff_hidden": 4096, "vocab": 30522, "max_seq": 512},
            "parallelism": {"tp": 2, "pp": 2},
            "cluster": {"preset": "local_no_nvlink", "nodes": 1},
            "batch": {"micro_batch": 32, "seq": 512, "num_micro_batches": 1},
            "schedule": {"kind": "gpipe"},
            "plan": {"spec": "A1", "error_feedback": false},
            "memory": {"device_gb": 16.0}
        }"#;
        let cfg = ExperimentConfig::from_json(json).expect("omitted optionals parse");
        assert_eq!(cfg, ExperimentConfig::paper_default());
        assert_eq!(cfg.plan.start_layer, None);
        assert_eq!(cfg.plan.claimed_ratio, None);
    }

    #[test]
    fn runtime_section_defaults_and_round_trips() {
        // Absent section: old documents keep parsing, field stays None.
        let cfg = ExperimentConfig::paper_default();
        assert_eq!(cfg.runtime, None);

        let mut cfg = cfg;
        cfg.runtime = Some(RuntimeSection::threads_default());
        let back = ExperimentConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);

        // micro_batches defaults to 1 when omitted from the document.
        let json = r#"{"backend": "threads"}"#;
        let section: RuntimeSection = serde_json::from_str(json).unwrap();
        assert_eq!(section.micro_batches(), 1);
        assert_eq!(section.threads, None);
        assert_eq!(section.rank_map, None);
        assert_eq!(section.kernel_threads, None);
    }

    #[test]
    fn spec_labels_resolve_case_insensitively() {
        assert_eq!(resolve_spec_label("a1"), Some(CompressorSpec::A1));
        assert_eq!(resolve_spec_label("w/o"), Some(CompressorSpec::Baseline));
        assert_eq!(resolve_spec_label("Q2"), Some(CompressorSpec::Q2));
        assert_eq!(resolve_spec_label("Z9"), None);
    }

    #[test]
    fn default_plan_is_last_half() {
        let plan = ExperimentConfig::paper_default().resolve_plan().unwrap();
        assert_eq!(plan.start_layer, 12);
        assert_eq!(plan.num_layers, 12);
    }

    #[test]
    fn cluster_presets_resolve() {
        let mut cfg = ExperimentConfig::paper_default();
        assert!(cfg.resolve_cluster().is_some());
        cfg.cluster.preset = "dgx_h100".to_string();
        assert!(cfg.resolve_cluster().is_none());
        cfg.cluster.preset = "p3_cluster".to_string();
        cfg.cluster.nodes = 4;
        assert_eq!(cfg.resolve_cluster().unwrap().total_gpus(), 16);
    }
}
