//! The stable diagnostic-code registry.
//!
//! Codes are grouped by check pass: `AC00xx` shape algebra, `AC01xx`
//! compression-plan placement, `AC02xx` schedule/topology/memory,
//! `AC03xx` execution runtime, `AC04xx` kernel thread-pool
//! configuration, `AC05xx` ring-collective chunking, `AC06xx`
//! comm-protocol analysis (message-flow graph, deadlock-freedom,
//! trace conformance), `AC07xx` multi-process transport
//! configuration, `AC08xx` fault injection and recovery, `AC09xx`
//! op-graph plans (cycle / shape mismatch / illegal fusion), `AC10xx`
//! serving engine and wire-precision configuration. Codes are
//! append-only — once published in a diagnostic they keep their meaning
//! so scripts can match on them.

/// Hidden width not divisible by the head count.
pub const HIDDEN_NOT_DIVISIBLE_BY_HEADS: &str = "AC0001";
/// Head count not divisible by the tensor-parallel degree.
pub const HEADS_NOT_DIVISIBLE_BY_TP: &str = "AC0002";
/// Feed-forward width not divisible by the tensor-parallel degree.
pub const FF_NOT_DIVISIBLE_BY_TP: &str = "AC0003";
/// Auto-encoder code dimension incompatible with the hidden width.
pub const BAD_CODE_DIM: &str = "AC0004";
/// Sequence length exceeds the model's position table.
pub const SEQ_EXCEEDS_MAX_SEQ: &str = "AC0005";
/// A structural dimension is zero.
pub const ZERO_DIMENSION: &str = "AC0006";
/// Vocabulary not divisible by the tensor-parallel degree (warning:
/// the embedding shard must be padded).
pub const VOCAB_NOT_DIVISIBLE_BY_TP: &str = "AC0007";

/// Compression window reaches past the last layer.
pub const PLAN_WINDOW_OUT_OF_BOUNDS: &str = "AC0101";
/// Compressor spec label does not name a Table 1 entry.
pub const UNRESOLVABLE_SPEC: &str = "AC0102";
/// Claimed compression ratio disagrees with the wire-byte arithmetic.
pub const RATIO_MISMATCH: &str = "AC0103";
/// Error feedback requested for an unbiased (or absent) compressor.
pub const ERROR_FEEDBACK_ON_UNBIASED: &str = "AC0104";
/// An active compressor spec covers zero layers (warning).
pub const PLAN_COVERS_NOTHING: &str = "AC0105";

/// The pipeline schedule deadlocks (cyclic send/recv dependencies).
pub const SCHEDULE_DEADLOCK: &str = "AC0201";
/// `tp · pp` exceeds the cluster's GPU count.
pub const TOO_FEW_GPUS: &str = "AC0202";
/// More pipeline stages than layers.
pub const PP_EXCEEDS_LAYERS: &str = "AC0203";
/// Weights + peak activations exceed the device memory budget.
pub const MEMORY_BUDGET_EXCEEDED: &str = "AC0204";
/// A custom schedule's per-stage orders are malformed.
pub const MALFORMED_CUSTOM_ORDER: &str = "AC0205";
/// Tensor-parallel group spans nodes (warning: catastrophic bandwidth).
pub const TP_SPANS_NODES: &str = "AC0206";
/// Unknown cluster preset or schedule kind.
pub const UNKNOWN_PRESET_OR_KIND: &str = "AC0207";

/// Unknown execution backend (not `threads` or `serial`).
pub const UNKNOWN_BACKEND: &str = "AC0301";
/// Thread count disagrees with the model-parallel world size.
pub const THREADS_NOT_WORLD: &str = "AC0302";
/// Runtime micro-batch count does not divide the batch.
pub const MICROBATCH_NOT_DIVIDING_BATCH: &str = "AC0303";
/// Rank map is not a bijection over `0..tp*pp`.
pub const RANK_MAP_NOT_BIJECTION: &str = "AC0304";

/// `runtime.kernel_threads` is not a positive thread count.
pub const KERNEL_THREADS_INVALID: &str = "AC0401";
/// The `ACTCOMP_THREADS` environment variable does not parse as a
/// positive thread count.
pub const ENV_THREADS_INVALID: &str = "AC0402";

/// `runtime.chunk_rows` is not a positive row count.
pub const CHUNK_ROWS_INVALID: &str = "AC0501";
/// `runtime.pipeline_depth` is not a positive chunk count.
pub const PIPELINE_DEPTH_INVALID: &str = "AC0502";
/// The `ACTCOMP_CHUNK_ROWS` environment variable does not parse as a
/// positive row count.
pub const ENV_CHUNK_ROWS_INVALID: &str = "AC0503";

/// A message is sent but no rank ever receives it.
pub const COMM_ORPHAN_SEND: &str = "AC0601";
/// A rank blocks receiving a message no rank ever sends.
pub const COMM_STARVED_RECV: &str = "AC0602";
/// The blocking-dependency graph of the comm protocol has a cycle.
pub const COMM_DEADLOCK_CYCLE: &str = "AC0603";
/// Event-sum wire bytes disagree with the closed-form `ring_bytes`
/// accounting the runtime counters implement.
pub const COMM_BYTE_MISMATCH: &str = "AC0604";
/// A recorded runtime trace does not conform to the static graph.
pub const COMM_TRACE_NONCONFORMANT: &str = "AC0605";
/// Two in-flight messages on one channel are indistinguishable to the
/// receiver's selective-receive stash (duplicate message identity).
pub const COMM_AMBIGUOUS_MESSAGE: &str = "AC0606";

/// `runtime.transport` does not name a known wire (`mpsc`, `uds`,
/// `tcp`), or names one the backend cannot use (`mpsc` with `procs`).
pub const TRANSPORT_UNKNOWN: &str = "AC0701";
/// A transport option is set for a backend that never opens a
/// transport.
pub const TRANSPORT_WRONG_BACKEND: &str = "AC0702";
/// `runtime.link_mbps` without the TCP transport, or not a positive
/// finite bandwidth.
pub const THROTTLE_WITHOUT_TCP: &str = "AC0703";
/// Two ranks listen on the same port or socket path (or the address
/// list does not cover the world).
pub const LISTEN_ADDR_COLLISION: &str = "AC0704";
/// Comm tracing/auditing with the `procs` backend (trace events cannot
/// cross process boundaries).
pub const PROCS_TRACE_UNSUPPORTED: &str = "AC0705";
/// `runtime.world_size` disagrees with `tp * pp` in procs mode.
pub const PROCS_WORLD_MISMATCH: &str = "AC0706";

/// `runtime.fault` does not parse under the fault-spec grammar.
pub const FAULT_SPEC_INVALID: &str = "AC0801";
/// Fault-injection or recovery options on a backend that is not
/// `procs` (in-process backends have no processes to kill or respawn).
pub const FAULT_WRONG_BACKEND: &str = "AC0802";
/// `runtime.step_timeout_s` or `runtime.rendezvous_timeout_s` is not a
/// positive finite duration.
pub const TIMEOUT_INVALID: &str = "AC0803";
/// A `kill` fault names a rank outside `0..tp*pp` (it would never
/// fire).
pub const FAULT_RANK_OUT_OF_WORLD: &str = "AC0804";
/// `runtime.checkpoint_every` is zero (checkpoints must be at least
/// one step apart).
pub const CHECKPOINT_INTERVAL_INVALID: &str = "AC0805";

/// An op-graph plan's dependency relation has a cycle — no
/// def-before-use execution order exists.
pub const GRAPH_CYCLE: &str = "AC0901";
/// An op-graph node's operand shapes disagree with its declared shape
/// (or an operand/output id does not exist).
pub const GRAPH_SHAPE_MISMATCH: &str = "AC0902";
/// A fusion the plan requires (`FusePolicy::Forced`) is not legal under
/// the epilogue-fusion rules.
pub const GRAPH_ILLEGAL_FUSION: &str = "AC0903";

/// `runtime.max_batch` is zero (the serving dispatcher cannot build
/// empty engine batches).
pub const SERVE_BATCH_INVALID: &str = "AC1001";
/// Serving options on the serial backend (serving needs resident rank
/// workers; `serial` has none).
pub const SERVE_WRONG_BACKEND: &str = "AC1002";
/// `runtime.wire_dtype` is not `f32` or `f16`.
pub const WIRE_DTYPE_UNKNOWN: &str = "AC1003";

/// One registry row: code, summary, whether it can only warn.
pub struct CodeInfo {
    /// The `ACxxxx` code.
    pub code: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// True when the code is advisory (never fails validation).
    pub warning_only: bool,
}

/// Every registered code, in numeric order.
pub fn registry() -> Vec<CodeInfo> {
    let row = |code, summary, warning_only| CodeInfo {
        code,
        summary,
        warning_only,
    };
    vec![
        row(
            HIDDEN_NOT_DIVISIBLE_BY_HEADS,
            "hidden width not divisible by head count",
            false,
        ),
        row(
            HEADS_NOT_DIVISIBLE_BY_TP,
            "attention heads not divisible by tensor-parallel degree",
            false,
        ),
        row(
            FF_NOT_DIVISIBLE_BY_TP,
            "feed-forward width not divisible by tensor-parallel degree",
            false,
        ),
        row(
            BAD_CODE_DIM,
            "auto-encoder code dimension incompatible with hidden width",
            false,
        ),
        row(
            SEQ_EXCEEDS_MAX_SEQ,
            "sequence length exceeds the position table",
            false,
        ),
        row(ZERO_DIMENSION, "structural dimension is zero", false),
        row(
            VOCAB_NOT_DIVISIBLE_BY_TP,
            "vocabulary not divisible by tensor-parallel degree (shard padding)",
            true,
        ),
        row(
            PLAN_WINDOW_OUT_OF_BOUNDS,
            "compression window reaches past the last layer",
            false,
        ),
        row(
            UNRESOLVABLE_SPEC,
            "compressor spec label does not name a Table 1 entry",
            false,
        ),
        row(
            RATIO_MISMATCH,
            "claimed compression ratio disagrees with wire-byte arithmetic",
            false,
        ),
        row(
            ERROR_FEEDBACK_ON_UNBIASED,
            "error feedback on an unbiased or absent compressor",
            false,
        ),
        row(
            PLAN_COVERS_NOTHING,
            "active compressor spec covers zero layers",
            true,
        ),
        row(
            SCHEDULE_DEADLOCK,
            "pipeline schedule has cyclic send/recv dependencies",
            false,
        ),
        row(
            TOO_FEW_GPUS,
            "tp x pp exceeds the cluster's GPU count",
            false,
        ),
        row(PP_EXCEEDS_LAYERS, "more pipeline stages than layers", false),
        row(
            MEMORY_BUDGET_EXCEEDED,
            "weights + peak activations exceed the device budget",
            false,
        ),
        row(
            MALFORMED_CUSTOM_ORDER,
            "custom schedule orders are malformed",
            false,
        ),
        row(
            TP_SPANS_NODES,
            "tensor-parallel group spans nodes (severe slowdown)",
            true,
        ),
        row(
            UNKNOWN_PRESET_OR_KIND,
            "unknown cluster preset or schedule kind",
            false,
        ),
        row(
            UNKNOWN_BACKEND,
            "unknown execution backend (known: threads, serial)",
            false,
        ),
        row(
            THREADS_NOT_WORLD,
            "thread count disagrees with tp x pp world size",
            false,
        ),
        row(
            MICROBATCH_NOT_DIVIDING_BATCH,
            "runtime micro-batch count does not divide the batch",
            false,
        ),
        row(
            RANK_MAP_NOT_BIJECTION,
            "rank map is not a bijection over 0..tp*pp",
            false,
        ),
        row(
            KERNEL_THREADS_INVALID,
            "runtime.kernel_threads is not a positive thread count",
            false,
        ),
        row(
            ENV_THREADS_INVALID,
            "ACTCOMP_THREADS does not parse as a positive thread count",
            false,
        ),
        row(
            CHUNK_ROWS_INVALID,
            "runtime.chunk_rows is not a positive row count",
            false,
        ),
        row(
            PIPELINE_DEPTH_INVALID,
            "runtime.pipeline_depth is not a positive chunk count",
            false,
        ),
        row(
            ENV_CHUNK_ROWS_INVALID,
            "ACTCOMP_CHUNK_ROWS does not parse as a positive row count",
            false,
        ),
        row(
            COMM_ORPHAN_SEND,
            "comm graph has a send no rank ever receives",
            false,
        ),
        row(
            COMM_STARVED_RECV,
            "comm graph has a recv no rank ever sends",
            false,
        ),
        row(
            COMM_DEADLOCK_CYCLE,
            "comm blocking-dependency graph has a cycle (deadlock)",
            false,
        ),
        row(
            COMM_BYTE_MISMATCH,
            "event-sum wire bytes disagree with ring_bytes accounting",
            false,
        ),
        row(
            COMM_TRACE_NONCONFORMANT,
            "recorded runtime trace deviates from the static comm graph",
            false,
        ),
        row(
            COMM_AMBIGUOUS_MESSAGE,
            "two concurrent messages share one selective-receive identity",
            false,
        ),
        row(
            TRANSPORT_UNKNOWN,
            "runtime.transport is not a usable wire for the backend",
            false,
        ),
        row(
            TRANSPORT_WRONG_BACKEND,
            "transport options set for a backend that opens no transport",
            false,
        ),
        row(
            THROTTLE_WITHOUT_TCP,
            "link_mbps throttle without the tcp transport, or not positive",
            false,
        ),
        row(
            LISTEN_ADDR_COLLISION,
            "listen addresses collide or do not cover the world",
            false,
        ),
        row(
            PROCS_TRACE_UNSUPPORTED,
            "comm tracing cannot cross process boundaries (procs backend)",
            false,
        ),
        row(
            PROCS_WORLD_MISMATCH,
            "runtime.world_size disagrees with tp x pp in procs mode",
            false,
        ),
        row(
            FAULT_SPEC_INVALID,
            "runtime.fault does not parse under the fault-spec grammar",
            false,
        ),
        row(
            FAULT_WRONG_BACKEND,
            "fault/recovery options on a backend without processes",
            false,
        ),
        row(
            TIMEOUT_INVALID,
            "step/rendezvous timeout is not a positive finite duration",
            false,
        ),
        row(
            FAULT_RANK_OUT_OF_WORLD,
            "kill fault names a rank outside the world (never fires)",
            false,
        ),
        row(
            CHECKPOINT_INTERVAL_INVALID,
            "checkpoint interval is zero",
            false,
        ),
        row(GRAPH_CYCLE, "op-graph plan has a dependency cycle", false),
        row(
            GRAPH_SHAPE_MISMATCH,
            "op-graph node shapes disagree with their operands",
            false,
        ),
        row(
            GRAPH_ILLEGAL_FUSION,
            "required GEMM-epilogue fusion is illegal",
            false,
        ),
        row(
            SERVE_BATCH_INVALID,
            "serving max_batch is zero (dispatcher cannot batch)",
            false,
        ),
        row(
            SERVE_WRONG_BACKEND,
            "serving options on a backend without resident workers",
            false,
        ),
        row(
            WIRE_DTYPE_UNKNOWN,
            "runtime.wire_dtype is not f32 or f16",
            false,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        let codes: Vec<&str> = registry().iter().map(|r| r.code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "codes must be unique and in numeric order");
        assert!(codes.iter().all(|c| c.starts_with("AC") && c.len() == 6));
    }

    #[test]
    fn registry_families_are_contiguous() {
        // Within a family `ACffnn`, the two-digit indices must run
        // 1..=max with no holes.
        use std::collections::BTreeMap;
        let mut families: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        for info in registry() {
            let family = info.code[2..4].to_string();
            let idx: u32 = info.code[4..6].parse().expect("numeric code suffix");
            families.entry(family).or_default().push(idx);
        }
        for (family, mut indices) in families {
            indices.sort_unstable();
            let want: Vec<u32> = (1..=indices.len() as u32).collect();
            assert_eq!(indices, want, "family AC{family}xx has holes");
        }
    }

    fn scan_dir(dir: &std::path::Path, found: &mut std::collections::BTreeSet<String>) {
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(_) => return,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && name != "vendor" && !name.starts_with('.') {
                    scan_dir(&path, found);
                }
            } else if name.ends_with(".rs") {
                if let Ok(text) = std::fs::read_to_string(&path) {
                    scan_text(&text, found);
                }
            }
        }
    }

    fn scan_text(text: &str, found: &mut std::collections::BTreeSet<String>) {
        let bytes = text.as_bytes();
        let mut i = 0;
        while i + 6 <= bytes.len() {
            if bytes[i] == b'A'
                && bytes[i + 1] == b'C'
                && bytes[i + 2..i + 6].iter().all(u8::is_ascii_digit)
                && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric())
                && (i + 6 == bytes.len() || !bytes[i + 6].is_ascii_alphanumeric())
            {
                found.insert(text[i..i + 6].to_string());
                i += 6;
            } else {
                i += 1;
            }
        }
    }

    /// Scans every workspace `.rs` file for `ACnnnn` literals and
    /// asserts each one is registered — a code emitted by any pass can
    /// never drift away from the registry table the docs and CLI print.
    #[test]
    fn every_emitted_code_is_registered() {
        use std::collections::BTreeSet;
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        let mut found: BTreeSet<String> = BTreeSet::new();
        scan_dir(&root.join("crates"), &mut found);
        let registered: BTreeSet<String> = registry().iter().map(|r| r.code.to_string()).collect();
        assert!(
            found.len() >= 20,
            "scanner should see most of the registry, found {found:?}"
        );
        for code in &found {
            assert!(
                registered.contains(code),
                "{code} appears in the workspace but is not in codes::registry()"
            );
        }
    }
}
