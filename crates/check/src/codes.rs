//! The stable diagnostic-code registry.
//!
//! Codes are grouped by check pass: `AC00xx` shape algebra, `AC01xx`
//! compression-plan placement, `AC02xx` schedule/topology/memory,
//! `AC03xx` execution runtime, `AC04xx` kernel thread-pool
//! configuration, `AC05xx` ring-collective chunking. Codes are
//! append-only — once published
//! in a diagnostic they keep their meaning so scripts can match on them.

/// Hidden width not divisible by the head count.
pub const HIDDEN_NOT_DIVISIBLE_BY_HEADS: &str = "AC0001";
/// Head count not divisible by the tensor-parallel degree.
pub const HEADS_NOT_DIVISIBLE_BY_TP: &str = "AC0002";
/// Feed-forward width not divisible by the tensor-parallel degree.
pub const FF_NOT_DIVISIBLE_BY_TP: &str = "AC0003";
/// Auto-encoder code dimension incompatible with the hidden width.
pub const BAD_CODE_DIM: &str = "AC0004";
/// Sequence length exceeds the model's position table.
pub const SEQ_EXCEEDS_MAX_SEQ: &str = "AC0005";
/// A structural dimension is zero.
pub const ZERO_DIMENSION: &str = "AC0006";
/// Vocabulary not divisible by the tensor-parallel degree (warning:
/// the embedding shard must be padded).
pub const VOCAB_NOT_DIVISIBLE_BY_TP: &str = "AC0007";

/// Compression window reaches past the last layer.
pub const PLAN_WINDOW_OUT_OF_BOUNDS: &str = "AC0101";
/// Compressor spec label does not name a Table 1 entry.
pub const UNRESOLVABLE_SPEC: &str = "AC0102";
/// Claimed compression ratio disagrees with the wire-byte arithmetic.
pub const RATIO_MISMATCH: &str = "AC0103";
/// Error feedback requested for an unbiased (or absent) compressor.
pub const ERROR_FEEDBACK_ON_UNBIASED: &str = "AC0104";
/// An active compressor spec covers zero layers (warning).
pub const PLAN_COVERS_NOTHING: &str = "AC0105";

/// The pipeline schedule deadlocks (cyclic send/recv dependencies).
pub const SCHEDULE_DEADLOCK: &str = "AC0201";
/// `tp · pp` exceeds the cluster's GPU count.
pub const TOO_FEW_GPUS: &str = "AC0202";
/// More pipeline stages than layers.
pub const PP_EXCEEDS_LAYERS: &str = "AC0203";
/// Weights + peak activations exceed the device memory budget.
pub const MEMORY_BUDGET_EXCEEDED: &str = "AC0204";
/// A custom schedule's per-stage orders are malformed.
pub const MALFORMED_CUSTOM_ORDER: &str = "AC0205";
/// Tensor-parallel group spans nodes (warning: catastrophic bandwidth).
pub const TP_SPANS_NODES: &str = "AC0206";
/// Unknown cluster preset or schedule kind.
pub const UNKNOWN_PRESET_OR_KIND: &str = "AC0207";

/// Unknown execution backend (not `threads` or `serial`).
pub const UNKNOWN_BACKEND: &str = "AC0301";
/// Thread count disagrees with the model-parallel world size.
pub const THREADS_NOT_WORLD: &str = "AC0302";
/// Runtime micro-batch count does not divide the batch.
pub const MICROBATCH_NOT_DIVIDING_BATCH: &str = "AC0303";
/// Rank map is not a bijection over `0..tp*pp`.
pub const RANK_MAP_NOT_BIJECTION: &str = "AC0304";

/// `runtime.kernel_threads` is not a positive thread count.
pub const KERNEL_THREADS_INVALID: &str = "AC0401";
/// The `ACTCOMP_THREADS` environment variable does not parse as a
/// positive thread count.
pub const ENV_THREADS_INVALID: &str = "AC0402";

/// `runtime.chunk_rows` is not a positive row count.
pub const CHUNK_ROWS_INVALID: &str = "AC0501";
/// `runtime.pipeline_depth` is not a positive chunk count.
pub const PIPELINE_DEPTH_INVALID: &str = "AC0502";
/// The `ACTCOMP_CHUNK_ROWS` environment variable does not parse as a
/// positive row count.
pub const ENV_CHUNK_ROWS_INVALID: &str = "AC0503";

/// One registry row: code, summary, whether it can only warn.
pub struct CodeInfo {
    /// The `ACxxxx` code.
    pub code: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// True when the code is advisory (never fails validation).
    pub warning_only: bool,
}

/// Every registered code, in numeric order.
pub fn registry() -> Vec<CodeInfo> {
    let row = |code, summary, warning_only| CodeInfo {
        code,
        summary,
        warning_only,
    };
    vec![
        row(
            HIDDEN_NOT_DIVISIBLE_BY_HEADS,
            "hidden width not divisible by head count",
            false,
        ),
        row(
            HEADS_NOT_DIVISIBLE_BY_TP,
            "attention heads not divisible by tensor-parallel degree",
            false,
        ),
        row(
            FF_NOT_DIVISIBLE_BY_TP,
            "feed-forward width not divisible by tensor-parallel degree",
            false,
        ),
        row(
            BAD_CODE_DIM,
            "auto-encoder code dimension incompatible with hidden width",
            false,
        ),
        row(
            SEQ_EXCEEDS_MAX_SEQ,
            "sequence length exceeds the position table",
            false,
        ),
        row(ZERO_DIMENSION, "structural dimension is zero", false),
        row(
            VOCAB_NOT_DIVISIBLE_BY_TP,
            "vocabulary not divisible by tensor-parallel degree (shard padding)",
            true,
        ),
        row(
            PLAN_WINDOW_OUT_OF_BOUNDS,
            "compression window reaches past the last layer",
            false,
        ),
        row(
            UNRESOLVABLE_SPEC,
            "compressor spec label does not name a Table 1 entry",
            false,
        ),
        row(
            RATIO_MISMATCH,
            "claimed compression ratio disagrees with wire-byte arithmetic",
            false,
        ),
        row(
            ERROR_FEEDBACK_ON_UNBIASED,
            "error feedback on an unbiased or absent compressor",
            false,
        ),
        row(
            PLAN_COVERS_NOTHING,
            "active compressor spec covers zero layers",
            true,
        ),
        row(
            SCHEDULE_DEADLOCK,
            "pipeline schedule has cyclic send/recv dependencies",
            false,
        ),
        row(
            TOO_FEW_GPUS,
            "tp x pp exceeds the cluster's GPU count",
            false,
        ),
        row(PP_EXCEEDS_LAYERS, "more pipeline stages than layers", false),
        row(
            MEMORY_BUDGET_EXCEEDED,
            "weights + peak activations exceed the device budget",
            false,
        ),
        row(
            MALFORMED_CUSTOM_ORDER,
            "custom schedule orders are malformed",
            false,
        ),
        row(
            TP_SPANS_NODES,
            "tensor-parallel group spans nodes (severe slowdown)",
            true,
        ),
        row(
            UNKNOWN_PRESET_OR_KIND,
            "unknown cluster preset or schedule kind",
            false,
        ),
        row(
            UNKNOWN_BACKEND,
            "unknown execution backend (known: threads, serial)",
            false,
        ),
        row(
            THREADS_NOT_WORLD,
            "thread count disagrees with tp x pp world size",
            false,
        ),
        row(
            MICROBATCH_NOT_DIVIDING_BATCH,
            "runtime micro-batch count does not divide the batch",
            false,
        ),
        row(
            RANK_MAP_NOT_BIJECTION,
            "rank map is not a bijection over 0..tp*pp",
            false,
        ),
        row(
            KERNEL_THREADS_INVALID,
            "runtime.kernel_threads is not a positive thread count",
            false,
        ),
        row(
            ENV_THREADS_INVALID,
            "ACTCOMP_THREADS does not parse as a positive thread count",
            false,
        ),
        row(
            CHUNK_ROWS_INVALID,
            "runtime.chunk_rows is not a positive row count",
            false,
        ),
        row(
            PIPELINE_DEPTH_INVALID,
            "runtime.pipeline_depth is not a positive chunk count",
            false,
        ),
        row(
            ENV_CHUNK_ROWS_INVALID,
            "ACTCOMP_CHUNK_ROWS does not parse as a positive row count",
            false,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        let codes: Vec<&str> = registry().iter().map(|r| r.code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "codes must be unique and in numeric order");
        assert!(codes.iter().all(|c| c.starts_with("AC") && c.len() == 6));
    }
}
