//! Kernel thread-pool checks (`AC0401`–`AC0402`).
//!
//! The blocked GEMM kernels in `actcomp-tensor` run on a per-call worker
//! pool whose size comes from (highest precedence first) an explicit
//! override, the `ACTCOMP_THREADS` environment variable, or the
//! machine's available parallelism. A pool of zero workers is
//! meaningless — the engine would deadlock before computing anything —
//! so both spellings of that mistake are rejected here: the
//! `runtime.kernel_threads` config field (`AC0401`) and the environment
//! variable itself (`AC0402`, sharing the exact predicate the runtime
//! uses via [`actcomp_tensor::pool::parse_thread_spec`], so the checker
//! and the engine can never disagree on what parses).

use crate::codes;
use crate::config::ExperimentConfig;
use crate::diagnostics::{Diagnostic, Diagnostics};
use actcomp_tensor::pool::parse_thread_spec;

/// The kernel thread-pool pass: validates `runtime.kernel_threads` and
/// the `ACTCOMP_THREADS` environment variable.
pub fn check_kernels(cfg: &ExperimentConfig, diags: &mut Diagnostics) {
    if let Some(rt) = &cfg.runtime {
        check_kernel_threads_field(rt.kernel_threads, diags);
    }
    if let Ok(v) = std::env::var("ACTCOMP_THREADS") {
        check_env_spec(&v, diags);
    }
}

/// Validates the `runtime.kernel_threads` field (`AC0401`).
fn check_kernel_threads_field(kernel_threads: Option<usize>, diags: &mut Diagnostics) {
    if kernel_threads == Some(0) {
        diags.push(
            Diagnostic::error(
                codes::KERNEL_THREADS_INVALID,
                "runtime.kernel_threads",
                "runtime.kernel_threads = 0: the GEMM worker pool needs at least one thread"
                    .to_string(),
            )
            .with_help(
                "use a positive count, or omit the field to resolve it from \
                 ACTCOMP_THREADS / available parallelism",
            ),
        );
    }
}

/// Validates an `ACTCOMP_THREADS` value (`AC0402`). Split from the
/// environment read so tests can exercise it without mutating the
/// process environment.
fn check_env_spec(value: &str, diags: &mut Diagnostics) {
    if let Err(e) = parse_thread_spec(value) {
        diags.push(
            Diagnostic::error(
                codes::ENV_THREADS_INVALID,
                "env.ACTCOMP_THREADS",
                format!("ACTCOMP_THREADS={value:?} is invalid: {e}"),
            )
            .with_help(
                "set a positive integer thread count, or unset the variable \
                 to use available parallelism",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeSection;

    fn codes_of(diags: Diagnostics) -> Vec<&'static str> {
        diags.into_vec().iter().map(|d| d.code).collect()
    }

    #[test]
    fn absent_field_is_clean() {
        let mut diags = Diagnostics::new();
        check_kernel_threads_field(None, &mut diags);
        assert!(diags.into_vec().is_empty());
    }

    #[test]
    fn positive_field_is_clean() {
        let mut diags = Diagnostics::new();
        check_kernel_threads_field(Some(8), &mut diags);
        assert!(diags.into_vec().is_empty());
    }

    #[test]
    fn zero_field_is_rejected() {
        let mut diags = Diagnostics::new();
        check_kernel_threads_field(Some(0), &mut diags);
        assert_eq!(codes_of(diags), vec![codes::KERNEL_THREADS_INVALID]);
    }

    #[test]
    fn config_section_feeds_the_pass() {
        let mut cfg = ExperimentConfig::paper_default();
        let mut rt = RuntimeSection::threads_default();
        rt.kernel_threads = Some(0);
        cfg.runtime = Some(rt);
        let mut diags = Diagnostics::new();
        check_kernels(&cfg, &mut diags);
        assert!(codes_of(diags).contains(&codes::KERNEL_THREADS_INVALID));
    }

    #[test]
    fn env_specs_share_the_runtime_predicate() {
        for bad in ["0", "", "  ", "eight", "-2", "1.5"] {
            let mut diags = Diagnostics::new();
            check_env_spec(bad, &mut diags);
            assert_eq!(
                codes_of(diags),
                vec![codes::ENV_THREADS_INVALID],
                "expected {bad:?} to be rejected"
            );
        }
        for good in ["1", "8", " 4 "] {
            let mut diags = Diagnostics::new();
            check_env_spec(good, &mut diags);
            assert!(diags.into_vec().is_empty(), "expected {good:?} to pass");
        }
    }
}
