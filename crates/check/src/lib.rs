//! `actcomp-check`: static validation for parallel execution configs.
//!
//! The paper's experiments weave together three things that can silently
//! disagree: the transformer's *shape algebra* (can the tensors be
//! TP-sharded at all?), the *compression plan* (does the spec resolve,
//! does its placement fit, does the wire math add up?), and the
//! *schedule/topology* (does the pipeline deadlock, do the degrees fit
//! the cluster, does everything fit in device memory?). This crate checks
//! all of it **before** any simulation or training runs, collecting every
//! violation — not just the first — into rustc-style diagnostics.
//!
//! ```
//! use actcomp_check::{check, ExperimentConfig};
//!
//! let mut cfg = ExperimentConfig::paper_default();
//! assert!(check(&cfg).is_empty());
//!
//! cfg.parallelism.tp = 3; // 16 heads and ff 4096 don't shard by 3
//! let diags = check(&cfg);
//! assert!(diags.iter().any(|d| d.code == "AC0002"));
//! ```

pub mod codes;
pub mod collectives;
pub mod comm_graph;
pub mod config;
pub mod diagnostics;
pub mod graph;
pub mod kernels;
pub mod plan;
pub mod runtime;
pub mod schedule;
pub mod shape;

pub use comm_graph::{
    analyze, audit_trace, build_comm_graph, check_comm_protocol, ChannelId, CommEvent, CommGraph,
    Dir, ExpectedCounters, MsgId, Phase, TraceEvent,
};
pub use config::{
    resolve_spec_label, BatchSection, ClusterSection, ExperimentConfig, MemorySection,
    ModelSection, OpSpec, ParallelismSection, PlanSection, RuntimeSection, ScheduleSection,
};
pub use diagnostics::{render_report, Diagnostic, Diagnostics, Severity};
pub use shape::{shape_trace, ShapeStep};

/// A rejected configuration: the full diagnostic set plus its rendering.
#[derive(Debug, Clone)]
pub struct CheckError {
    /// Every finding, errors and warnings alike.
    pub diagnostics: Vec<Diagnostic>,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&render_report(&self.diagnostics))
    }
}

impl std::error::Error for CheckError {}

/// Runs every check pass, returning all findings in pass order
/// (shape, plan, schedule, runtime, kernels, collectives, graph). An
/// empty vector means the config is clean.
pub fn check(cfg: &ExperimentConfig) -> Vec<Diagnostic> {
    let mut diags = Diagnostics::new();
    shape::check_shapes(cfg, &mut diags);
    plan::check_plan(cfg, &mut diags);
    schedule::check_schedule(cfg, &mut diags);
    runtime::check_runtime(cfg, &mut diags);
    kernels::check_kernels(cfg, &mut diags);
    collectives::check_collectives(cfg, &mut diags);
    graph::check_graph(cfg, &mut diags);
    diags.into_vec()
}

/// Validates a config: `Ok(warnings)` when runnable (warnings may remain),
/// `Err` carrying every diagnostic when any error was found.
pub fn validate(cfg: &ExperimentConfig) -> Result<Vec<Diagnostic>, Box<CheckError>> {
    let diags = check(cfg);
    if diags.iter().any(|d| d.severity == Severity::Error) {
        Err(Box::new(CheckError { diagnostics: diags }))
    } else {
        Ok(diags)
    }
}

/// Validates or panics with the rendered report — the guard simulator and
/// benchmark entry points call this so a broken config dies with the full
/// diagnosis instead of a mid-run assertion.
///
/// # Panics
///
/// Panics when the config has any error-severity diagnostic.
pub fn assert_valid(cfg: &ExperimentConfig) {
    if let Err(e) = validate(cfg) {
        panic!("invalid experiment configuration\n{e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_clean() {
        assert_eq!(check(&ExperimentConfig::paper_default()), vec![]);
        assert!(validate(&ExperimentConfig::paper_default()).is_ok());
    }

    #[test]
    fn paper_pretrain_has_no_errors() {
        // tp=4 pads the 30522-entry vocab: warning only.
        let warnings = validate(&ExperimentConfig::paper_pretrain()).unwrap();
        assert!(warnings.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn every_pass_contributes_to_one_report() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.parallelism.tp = 3; // shape: AC0002 + AC0003 (+ AC0007 warning)
        cfg.plan.spec = "Z9".to_string(); // plan: AC0102
        cfg.cluster.preset = "dgx".to_string(); // schedule: AC0207
        let mut rt = RuntimeSection::threads_default();
        rt.backend = "mpi".to_string(); // runtime: AC0301
        rt.kernel_threads = Some(0); // kernels: AC0401
        rt.chunk_rows = Some(0); // collectives: AC0501
        rt.pipeline_depth = Some(0); // collectives: AC0502
        cfg.runtime = Some(rt);
        let diags = check(&cfg);
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        for expected in [
            "AC0002", "AC0003", "AC0102", "AC0207", "AC0301", "AC0401", "AC0501", "AC0502",
        ] {
            assert!(codes.contains(&expected), "missing {expected} in {codes:?}");
        }
        let err = validate(&cfg).unwrap_err();
        let report = err.to_string();
        assert!(report.contains("configuration rejected"));
    }

    #[test]
    #[should_panic(expected = "invalid experiment configuration")]
    fn assert_valid_panics_with_report() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.parallelism.pp = 30;
        assert_valid(&cfg);
    }

    #[test]
    fn every_registered_code_is_used_consistently() {
        // The registry's warning-only flags must agree with what the
        // passes actually emit for representative violations.
        let warning_only: Vec<&str> = codes::registry()
            .iter()
            .filter(|r| r.warning_only)
            .map(|r| r.code)
            .collect();
        assert_eq!(warning_only, vec!["AC0007", "AC0105", "AC0206"]);
    }
}
