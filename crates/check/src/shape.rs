//! Shape algebra: propagate activation shapes through one TP-sharded
//! transformer layer and reject geometries that cannot be sharded.
//!
//! Megatron-style tensor parallelism (the paper's §2.2) splits the fused
//! QKV projection and the MLP up-projection column-wise and the attention
//! output / MLP down-projections row-wise. That only works when the head
//! count and the feed-forward width divide by the TP degree, and attention
//! itself requires the hidden width to divide by the head count. This pass
//! walks the symbolic shapes `[b, s, ·]` through one layer and reports
//! every divisibility violation, plus the compressor bottleneck width when
//! the plan inserts an auto-encoder at the layer boundary.

use crate::codes;
use crate::config::ExperimentConfig;
use crate::diagnostics::{Diagnostic, Diagnostics};
use actcomp_compress::spec::Family;

/// One step of the symbolic shape walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeStep {
    /// Which tensor this is (e.g. `qkv (column-parallel)`).
    pub site: &'static str,
    /// Its per-rank shape, `[b, s, width]` or `[b, heads/tp, s, s]`.
    pub dims: Vec<usize>,
}

/// Propagates `[micro_batch, seq, hidden]` through one TP-sharded layer.
///
/// Returns the per-rank shape at each named site. Only call after the
/// divisibility checks pass (the walk divides by `tp`, `heads`, …);
/// [`check_shapes`] guards this itself.
pub fn shape_trace(cfg: &ExperimentConfig) -> Vec<ShapeStep> {
    let m = &cfg.model;
    let b = cfg.batch.micro_batch;
    let s = cfg.batch.seq;
    let tp = cfg.parallelism.tp;
    let head_dim = m.hidden / m.heads;
    let heads_per_rank = m.heads / tp;

    let mut trace = vec![
        ShapeStep {
            site: "embedding output",
            dims: vec![b, s, m.hidden],
        },
        ShapeStep {
            site: "qkv (column-parallel)",
            dims: vec![b, s, 3 * heads_per_rank * head_dim],
        },
        ShapeStep {
            site: "attention scores (per-rank heads)",
            dims: vec![b, heads_per_rank, s, s],
        },
        ShapeStep {
            site: "attention output (row-parallel, post all-reduce)",
            dims: vec![b, s, m.hidden],
        },
        ShapeStep {
            site: "mlp up (column-parallel)",
            dims: vec![b, s, m.ff_hidden / tp],
        },
        ShapeStep {
            site: "mlp down (row-parallel, post all-reduce)",
            dims: vec![b, s, m.hidden],
        },
    ];
    if let Some(spec) = cfg.resolve_spec() {
        if spec.family() == Family::AutoEncoder {
            let code = cfg.plan.code_dim.unwrap_or_else(|| spec.code_dim(m.hidden));
            trace.push(ShapeStep {
                site: "layer boundary (auto-encoder code)",
                dims: vec![b, s, code],
            });
        }
    }
    trace.push(ShapeStep {
        site: "layer boundary",
        dims: vec![b, s, m.hidden],
    });
    trace
}

/// The shape pass: zero-dimension, divisibility, position-table, and
/// compressor code-width checks (`AC0001`–`AC0007`).
pub fn check_shapes(cfg: &ExperimentConfig, diags: &mut Diagnostics) {
    let m = &cfg.model;
    let tp = cfg.parallelism.tp;

    let zeros: [(&str, usize); 11] = [
        ("model.layers", m.layers),
        ("model.hidden", m.hidden),
        ("model.heads", m.heads),
        ("model.ff_hidden", m.ff_hidden),
        ("model.vocab", m.vocab),
        ("model.max_seq", m.max_seq),
        ("parallelism.tp", tp),
        ("parallelism.pp", cfg.parallelism.pp),
        ("batch.micro_batch", cfg.batch.micro_batch),
        ("batch.seq", cfg.batch.seq),
        ("batch.num_micro_batches", cfg.batch.num_micro_batches),
    ];
    let mut any_zero = false;
    for (span, v) in zeros {
        if v == 0 {
            any_zero = true;
            diags.push(
                Diagnostic::error(codes::ZERO_DIMENSION, span, format!("{span} is zero"))
                    .with_help("every structural dimension must be positive"),
            );
        }
    }
    // The divisibility algebra below divides by these; a zero field already
    // has its own diagnostic, so stop before dividing by it.
    if any_zero {
        return;
    }

    if !m.hidden.is_multiple_of(m.heads) {
        diags.push(
            Diagnostic::error(
                codes::HIDDEN_NOT_DIVISIBLE_BY_HEADS,
                "model.heads",
                format!(
                    "hidden width {} is not divisible by {} attention heads",
                    m.hidden, m.heads
                ),
            )
            .with_help(format!(
                "attention splits the hidden width evenly across heads; \
                 nearest working head counts are {} and {}",
                nearest_divisor_below(m.hidden, m.heads),
                nearest_divisor_above(m.hidden, m.heads)
            )),
        );
    }
    if !m.heads.is_multiple_of(tp) {
        diags.push(
            Diagnostic::error(
                codes::HEADS_NOT_DIVISIBLE_BY_TP,
                "parallelism.tp",
                format!(
                    "{} attention heads cannot be sharded across tp={} ranks",
                    m.heads, tp
                ),
            )
            .with_help(
                "the column-parallel QKV projection assigns whole heads to ranks; \
                 choose tp dividing the head count",
            ),
        );
    }
    if !m.ff_hidden.is_multiple_of(tp) {
        diags.push(
            Diagnostic::error(
                codes::FF_NOT_DIVISIBLE_BY_TP,
                "model.ff_hidden",
                format!(
                    "feed-forward width {} is not divisible by tp={}",
                    m.ff_hidden, tp
                ),
            )
            .with_help("the column-parallel MLP up-projection shards the inner width"),
        );
    }
    if !m.vocab.is_multiple_of(tp) {
        diags.push(
            Diagnostic::warning(
                codes::VOCAB_NOT_DIVISIBLE_BY_TP,
                "model.vocab",
                format!("vocabulary {} is not divisible by tp={}", m.vocab, tp),
            )
            .with_help(format!(
                "the embedding shard will be padded to {} rows per rank",
                m.vocab.div_ceil(tp)
            )),
        );
    }
    if cfg.batch.seq > m.max_seq {
        diags.push(
            Diagnostic::error(
                codes::SEQ_EXCEEDS_MAX_SEQ,
                "batch.seq",
                format!(
                    "sequence length {} exceeds the position table ({})",
                    cfg.batch.seq, m.max_seq
                ),
            )
            .with_help("shorten batch.seq or enlarge model.max_seq"),
        );
    }

    // Compressor code-width compatibility (the plan pass owns placement;
    // the *shape* constraint — code vs hidden — lives here).
    if let (Some(spec), Some(code)) = (cfg.resolve_spec(), cfg.plan.code_dim) {
        if spec.family() == Family::AutoEncoder {
            if code == 0 || code >= m.hidden {
                diags.push(
                    Diagnostic::error(
                        codes::BAD_CODE_DIM,
                        "plan.code_dim",
                        format!(
                            "auto-encoder code dimension {} is incompatible with hidden width {}",
                            code, m.hidden
                        ),
                    )
                    .with_help(format!(
                        "the code must satisfy 1 <= c < hidden to compress; \
                         {} uses c = {} at h = {}",
                        spec.label(),
                        spec.code_dim(m.hidden),
                        m.hidden
                    )),
                );
            }
        } else {
            diags.push(
                Diagnostic::warning(
                    codes::BAD_CODE_DIM,
                    "plan.code_dim",
                    format!(
                        "code_dim is set but spec {} is not an auto-encoder; it is ignored",
                        spec.label()
                    ),
                )
                .with_help("remove plan.code_dim or switch to an A-family spec"),
            );
        }
    }
}

fn nearest_divisor_below(n: usize, from: usize) -> usize {
    (1..=from.min(n))
        .rev()
        .find(|d| n.is_multiple_of(*d))
        .unwrap_or(1)
}

fn nearest_divisor_above(n: usize, from: usize) -> usize {
    (from..=n).find(|d| n.is_multiple_of(*d)).unwrap_or(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    fn run(cfg: &ExperimentConfig) -> Vec<Diagnostic> {
        let mut diags = Diagnostics::new();
        check_shapes(cfg, &mut diags);
        diags.into_vec()
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn paper_default_is_clean() {
        assert!(run(&ExperimentConfig::paper_default()).is_empty());
    }

    #[test]
    fn rejects_indivisible_heads() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.model.heads = 13;
        let diags = run(&cfg);
        assert!(codes_of(&diags).contains(&codes::HIDDEN_NOT_DIVISIBLE_BY_HEADS));
        // 13 heads across tp=2 also fails head sharding.
        assert!(codes_of(&diags).contains(&codes::HEADS_NOT_DIVISIBLE_BY_TP));
    }

    #[test]
    fn rejects_indivisible_tp_shard() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.parallelism.tp = 3;
        let diags = run(&cfg);
        let cs = codes_of(&diags);
        assert!(cs.contains(&codes::HEADS_NOT_DIVISIBLE_BY_TP));
        assert!(cs.contains(&codes::FF_NOT_DIVISIBLE_BY_TP));
    }

    #[test]
    fn rejects_bad_code_dim() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.plan.code_dim = Some(0);
        assert_eq!(codes_of(&run(&cfg)), vec![codes::BAD_CODE_DIM]);
        cfg.plan.code_dim = Some(1024);
        assert_eq!(codes_of(&run(&cfg)), vec![codes::BAD_CODE_DIM]);
        cfg.plan.code_dim = Some(50);
        assert!(run(&cfg).is_empty());
    }

    #[test]
    fn code_dim_on_sparsifier_is_warning() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.plan.spec = "T1".to_string();
        cfg.plan.code_dim = Some(50);
        let diags = run(&cfg);
        assert_eq!(codes_of(&diags), vec![codes::BAD_CODE_DIM]);
        assert_eq!(diags[0].severity, crate::diagnostics::Severity::Warning);
    }

    #[test]
    fn rejects_seq_overflow_and_zero_dims() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.batch.seq = 1024;
        assert!(codes_of(&run(&cfg)).contains(&codes::SEQ_EXCEEDS_MAX_SEQ));
        cfg.model.hidden = 0;
        // Zero-dim short-circuits the divisibility walk.
        assert_eq!(codes_of(&run(&cfg)), vec![codes::ZERO_DIMENSION]);
    }

    #[test]
    fn vocab_padding_is_warning_only() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.parallelism.tp = 4;
        let diags = run(&cfg);
        assert_eq!(codes_of(&diags), vec![codes::VOCAB_NOT_DIVISIBLE_BY_TP]);
        assert!(!diags
            .iter()
            .any(|d| d.severity == crate::diagnostics::Severity::Error));
    }

    #[test]
    fn trace_walks_one_layer() {
        let cfg = ExperimentConfig::paper_default();
        let trace = shape_trace(&cfg);
        // tp=2: QKV per-rank width 3·1024/2, MLP up 4096/2.
        assert_eq!(trace[1].dims, vec![32, 512, 1536]);
        assert_eq!(trace[4].dims, vec![32, 512, 2048]);
        // A1 inserts a [b, s, 50] bottleneck before the boundary.
        let ae = trace.iter().find(|s| s.site.contains("auto-encoder"));
        assert_eq!(ae.unwrap().dims, vec![32, 512, 50]);
        assert_eq!(trace.last().unwrap().dims, vec![32, 512, 1024]);
    }
}
