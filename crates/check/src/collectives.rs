//! Ring-collective chunking checks (`AC0501`–`AC0503`).
//!
//! The threaded runtime's ring collectives split tensors into row
//! chunks and pipeline them (`actcomp-runtime`'s `RingTuning`). Both
//! knobs are "at least one" quantities: zero rows per chunk or a
//! zero-deep pipeline would make the schedule degenerate, and the
//! engine panics on either. This pass rejects the config spellings
//! (`runtime.chunk_rows` = 0 → `AC0501`, `runtime.pipeline_depth` = 0
//! → `AC0502`) and the environment spelling (`ACTCOMP_CHUNK_ROWS`,
//! `AC0503`) — the latter via the exact predicate the runtime uses,
//! [`actcomp_tensor::pool::parse_count_spec`], so the checker and the
//! engine can never disagree on what parses.

use crate::codes;
use crate::config::ExperimentConfig;
use crate::diagnostics::{Diagnostic, Diagnostics};
use actcomp_tensor::pool::parse_count_spec;

/// The ring-collective pass: validates `runtime.chunk_rows`,
/// `runtime.pipeline_depth`, and the `ACTCOMP_CHUNK_ROWS` environment
/// variable.
pub fn check_collectives(cfg: &ExperimentConfig, diags: &mut Diagnostics) {
    if let Some(rt) = &cfg.runtime {
        check_chunk_rows_field(rt.chunk_rows, diags);
        check_pipeline_depth_field(rt.pipeline_depth, diags);
    }
    if let Ok(v) = std::env::var("ACTCOMP_CHUNK_ROWS") {
        check_env_spec(&v, diags);
    }
}

/// Validates the `runtime.chunk_rows` field (`AC0501`).
fn check_chunk_rows_field(chunk_rows: Option<usize>, diags: &mut Diagnostics) {
    if chunk_rows == Some(0) {
        diags.push(
            Diagnostic::error(
                codes::CHUNK_ROWS_INVALID,
                "runtime.chunk_rows",
                "runtime.chunk_rows = 0: a ring collective chunk needs at least one row"
                    .to_string(),
            )
            .with_help(
                "use a positive row count, or omit the field to resolve it from \
                 ACTCOMP_CHUNK_ROWS / automatic chunking",
            ),
        );
    }
}

/// Validates the `runtime.pipeline_depth` field (`AC0502`).
fn check_pipeline_depth_field(pipeline_depth: Option<usize>, diags: &mut Diagnostics) {
    if pipeline_depth == Some(0) {
        diags.push(
            Diagnostic::error(
                codes::PIPELINE_DEPTH_INVALID,
                "runtime.pipeline_depth",
                "runtime.pipeline_depth = 0: the ring pipeline needs at least one chunk \
                 in flight"
                    .to_string(),
            )
            .with_help("use a positive depth, or omit the field for the default of 4"),
        );
    }
}

/// Validates an `ACTCOMP_CHUNK_ROWS` value (`AC0503`). Split from the
/// environment read so tests can exercise it without mutating the
/// process environment.
fn check_env_spec(value: &str, diags: &mut Diagnostics) {
    if let Err(e) = parse_count_spec(value, "chunk row count") {
        diags.push(
            Diagnostic::error(
                codes::ENV_CHUNK_ROWS_INVALID,
                "env.ACTCOMP_CHUNK_ROWS",
                format!("ACTCOMP_CHUNK_ROWS={value:?} is invalid: {e}"),
            )
            .with_help(
                "set a positive integer row count, or unset the variable to use \
                 automatic chunking",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeSection;

    fn codes_of(diags: Diagnostics) -> Vec<&'static str> {
        diags.into_vec().iter().map(|d| d.code).collect()
    }

    #[test]
    fn absent_fields_are_clean() {
        let mut diags = Diagnostics::new();
        check_chunk_rows_field(None, &mut diags);
        check_pipeline_depth_field(None, &mut diags);
        assert!(diags.into_vec().is_empty());
    }

    #[test]
    fn positive_fields_are_clean() {
        let mut diags = Diagnostics::new();
        check_chunk_rows_field(Some(16), &mut diags);
        check_pipeline_depth_field(Some(2), &mut diags);
        assert!(diags.into_vec().is_empty());
    }

    #[test]
    fn zero_fields_are_rejected() {
        let mut diags = Diagnostics::new();
        check_chunk_rows_field(Some(0), &mut diags);
        check_pipeline_depth_field(Some(0), &mut diags);
        assert_eq!(
            codes_of(diags),
            vec![codes::CHUNK_ROWS_INVALID, codes::PIPELINE_DEPTH_INVALID]
        );
    }

    #[test]
    fn config_section_feeds_the_pass() {
        let mut cfg = ExperimentConfig::paper_default();
        let mut rt = RuntimeSection::threads_default();
        rt.chunk_rows = Some(0);
        rt.pipeline_depth = Some(0);
        cfg.runtime = Some(rt);
        let mut diags = Diagnostics::new();
        check_collectives(&cfg, &mut diags);
        let got = codes_of(diags);
        assert!(got.contains(&codes::CHUNK_ROWS_INVALID));
        assert!(got.contains(&codes::PIPELINE_DEPTH_INVALID));
    }

    #[test]
    fn env_specs_share_the_runtime_predicate() {
        for bad in ["0", "", "  ", "four", "-8", "2.5"] {
            let mut diags = Diagnostics::new();
            check_env_spec(bad, &mut diags);
            assert_eq!(
                codes_of(diags),
                vec![codes::ENV_CHUNK_ROWS_INVALID],
                "expected {bad:?} to be rejected"
            );
        }
        for good in ["1", "64", " 16 "] {
            let mut diags = Diagnostics::new();
            check_env_spec(good, &mut diags);
            assert!(diags.into_vec().is_empty(), "expected {good:?} to pass");
        }
    }
}
