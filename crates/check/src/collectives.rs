//! Ring-collective chunking checks (`AC0501`–`AC0503`).
//!
//! The threaded runtime's ring collectives split tensors into row
//! chunks and pipeline them (`actcomp-runtime`'s `RingTuning`). Both
//! knobs are "at least one" quantities: zero rows per chunk or a
//! zero-deep pipeline would make the schedule degenerate, and the
//! engine panics on either. This pass rejects the config spellings
//! (`runtime.chunk_rows` = 0 → `AC0501`, `runtime.pipeline_depth` = 0
//! → `AC0502`) and the environment spelling (`ACTCOMP_CHUNK_ROWS`,
//! `AC0503`) — the latter via the exact predicate the runtime uses,
//! [`actcomp_tensor::pool::parse_count_spec`], so the checker and the
//! engine can never disagree on what parses.

use crate::codes;
use crate::config::ExperimentConfig;
use crate::diagnostics::{Diagnostic, Diagnostics};
use actcomp_tensor::pool::parse_count_spec;

/// Chunk count used when no explicit row count is configured — mirrors
/// the runtime's `DEFAULT_CHUNKS`.
pub const DEFAULT_CHUNKS: usize = 4;

/// Default reduce chunks in flight — mirrors the runtime's
/// `DEFAULT_PIPELINE_DEPTH`.
pub const DEFAULT_PIPELINE_DEPTH: usize = 4;

/// The exact chunk plan the runtime's ring collectives use for a tensor
/// with `rows` rows: greedy row tiling at the configured chunk size, or
/// an even four-way split when unset. Mirrors `RingTuning::plan` in
/// `actcomp-runtime`; a cross-crate test over a tuning grid pins the
/// two implementations together.
pub fn ring_chunk_plan(chunk_rows: Option<usize>, rows: usize) -> Vec<usize> {
    if rows == 0 {
        return vec![0];
    }
    let per = chunk_rows.unwrap_or(rows.div_ceil(DEFAULT_CHUNKS)).max(1);
    let mut plan = Vec::with_capacity(rows.div_ceil(per));
    let mut done = 0;
    while done < rows {
        let take = per.min(rows - done);
        plan.push(take);
        done += take;
    }
    plan
}

/// Resolves `(chunk_rows, pipeline_depth)` for a config the way the
/// engine does: explicit `runtime` fields first, then the
/// `ACTCOMP_CHUNK_ROWS` environment variable (chunk rows only), then
/// automatic chunking and the default depth. An unparsable environment
/// value is ignored here — `check_collectives` reports it as `AC0503`.
pub fn resolved_ring_tuning(cfg: &ExperimentConfig) -> (Option<usize>, usize) {
    let rt = cfg.runtime.as_ref();
    let chunk = rt.and_then(|r| r.chunk_rows).or_else(|| {
        std::env::var("ACTCOMP_CHUNK_ROWS")
            .ok()
            .and_then(|v| parse_count_spec(&v, "chunk row count").ok())
    });
    let depth = rt
        .and_then(|r| r.pipeline_depth)
        .unwrap_or(DEFAULT_PIPELINE_DEPTH);
    (chunk, depth)
}

/// The ring-collective pass: validates `runtime.chunk_rows`,
/// `runtime.pipeline_depth`, and the `ACTCOMP_CHUNK_ROWS` environment
/// variable.
pub fn check_collectives(cfg: &ExperimentConfig, diags: &mut Diagnostics) {
    if let Some(rt) = &cfg.runtime {
        check_chunk_rows_field(rt.chunk_rows, diags);
        check_pipeline_depth_field(rt.pipeline_depth, diags);
    }
    if let Ok(v) = std::env::var("ACTCOMP_CHUNK_ROWS") {
        check_env_spec(&v, diags);
    }
}

/// Validates the `runtime.chunk_rows` field (`AC0501`).
fn check_chunk_rows_field(chunk_rows: Option<usize>, diags: &mut Diagnostics) {
    if chunk_rows == Some(0) {
        diags.push(
            Diagnostic::error(
                codes::CHUNK_ROWS_INVALID,
                "runtime.chunk_rows",
                "runtime.chunk_rows = 0: a ring collective chunk needs at least one row"
                    .to_string(),
            )
            .with_help(
                "use a positive row count, or omit the field to resolve it from \
                 ACTCOMP_CHUNK_ROWS / automatic chunking",
            ),
        );
    }
}

/// Validates the `runtime.pipeline_depth` field (`AC0502`).
fn check_pipeline_depth_field(pipeline_depth: Option<usize>, diags: &mut Diagnostics) {
    if pipeline_depth == Some(0) {
        diags.push(
            Diagnostic::error(
                codes::PIPELINE_DEPTH_INVALID,
                "runtime.pipeline_depth",
                "runtime.pipeline_depth = 0: the ring pipeline needs at least one chunk \
                 in flight"
                    .to_string(),
            )
            .with_help("use a positive depth, or omit the field for the default of 4"),
        );
    }
}

/// Validates an `ACTCOMP_CHUNK_ROWS` value (`AC0503`). Split from the
/// environment read so tests can exercise it without mutating the
/// process environment.
fn check_env_spec(value: &str, diags: &mut Diagnostics) {
    if let Err(e) = parse_count_spec(value, "chunk row count") {
        diags.push(
            Diagnostic::error(
                codes::ENV_CHUNK_ROWS_INVALID,
                "env.ACTCOMP_CHUNK_ROWS",
                format!("ACTCOMP_CHUNK_ROWS={value:?} is invalid: {e}"),
            )
            .with_help(
                "set a positive integer row count, or unset the variable to use \
                 automatic chunking",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeSection;

    fn codes_of(diags: Diagnostics) -> Vec<&'static str> {
        diags.into_vec().iter().map(|d| d.code).collect()
    }

    #[test]
    fn absent_fields_are_clean() {
        let mut diags = Diagnostics::new();
        check_chunk_rows_field(None, &mut diags);
        check_pipeline_depth_field(None, &mut diags);
        assert!(diags.into_vec().is_empty());
    }

    #[test]
    fn positive_fields_are_clean() {
        let mut diags = Diagnostics::new();
        check_chunk_rows_field(Some(16), &mut diags);
        check_pipeline_depth_field(Some(2), &mut diags);
        assert!(diags.into_vec().is_empty());
    }

    #[test]
    fn zero_fields_are_rejected() {
        let mut diags = Diagnostics::new();
        check_chunk_rows_field(Some(0), &mut diags);
        check_pipeline_depth_field(Some(0), &mut diags);
        assert_eq!(
            codes_of(diags),
            vec![codes::CHUNK_ROWS_INVALID, codes::PIPELINE_DEPTH_INVALID]
        );
    }

    #[test]
    fn config_section_feeds_the_pass() {
        let mut cfg = ExperimentConfig::paper_default();
        let mut rt = RuntimeSection::threads_default();
        rt.chunk_rows = Some(0);
        rt.pipeline_depth = Some(0);
        cfg.runtime = Some(rt);
        let mut diags = Diagnostics::new();
        check_collectives(&cfg, &mut diags);
        let got = codes_of(diags);
        assert!(got.contains(&codes::CHUNK_ROWS_INVALID));
        assert!(got.contains(&codes::PIPELINE_DEPTH_INVALID));
    }

    #[test]
    fn ring_chunk_plan_tiles_exactly() {
        assert_eq!(ring_chunk_plan(None, 0), vec![0]);
        assert_eq!(ring_chunk_plan(None, 8), vec![2, 2, 2, 2]);
        assert_eq!(ring_chunk_plan(None, 9), vec![3, 3, 3]);
        assert_eq!(ring_chunk_plan(Some(4), 10), vec![4, 4, 2]);
        assert_eq!(ring_chunk_plan(Some(100), 10), vec![10]);
        for rows in 1..64usize {
            for chunk in [None, Some(1), Some(3), Some(7), Some(64)] {
                let plan = ring_chunk_plan(chunk, rows);
                assert_eq!(plan.iter().sum::<usize>(), rows, "{chunk:?} rows={rows}");
                assert!(plan.iter().all(|&c| c > 0));
            }
        }
    }

    #[test]
    fn tuning_resolves_fields_before_defaults() {
        let mut cfg = ExperimentConfig::paper_default();
        // No runtime section: automatic chunking, default depth. The
        // chunk side may still pick up ACTCOMP_CHUNK_ROWS from the test
        // environment, so only the depth is pinned here.
        assert_eq!(resolved_ring_tuning(&cfg).1, DEFAULT_PIPELINE_DEPTH);
        let mut rt = RuntimeSection::threads_default();
        rt.chunk_rows = Some(16);
        rt.pipeline_depth = Some(2);
        cfg.runtime = Some(rt);
        assert_eq!(resolved_ring_tuning(&cfg), (Some(16), 2));
    }

    #[test]
    fn env_specs_share_the_runtime_predicate() {
        for bad in ["0", "", "  ", "four", "-8", "2.5"] {
            let mut diags = Diagnostics::new();
            check_env_spec(bad, &mut diags);
            assert_eq!(
                codes_of(diags),
                vec![codes::ENV_CHUNK_ROWS_INVALID],
                "expected {bad:?} to be rejected"
            );
        }
        for good in ["1", "64", " 16 "] {
            let mut diags = Diagnostics::new();
            check_env_spec(good, &mut diags);
            assert!(diags.into_vec().is_empty(), "expected {good:?} to pass");
        }
    }
}
