//! Schedule, topology, and memory checks (`AC0201`–`AC0207`).
//!
//! A pipeline schedule is a per-stage order of forward/backward
//! micro-batch ops. Execution is feasible iff the DAG formed by
//! (intra-stage sequencing) ∪ (cross-stage transfer edges) is acyclic:
//! `F(mb, s) → F(mb, s+1)` for activation sends, `B(mb, s+1) → B(mb, s)`
//! for gradient sends, and `F(mb, last) → B(mb, last)` for the loss turn-
//! around. Built-in schedules (GPipe, 1F1B) are constructed and verified
//! through the same path a custom order takes, so the deadlock check is
//! exercised — not assumed — on every run.

use crate::codes;
use crate::config::{ExperimentConfig, OpSpec};
use crate::diagnostics::{Diagnostic, Diagnostics};
use actcomp_distsim::memory::{activation_memory, peak_activation_bytes, Schedule};
use actcomp_distsim::schedule::{gpipe_order, one_f_one_b_order, Op};
use actcomp_distsim::topology::Parallelism;
use actcomp_distsim::workload::ModelShape;
use std::collections::HashMap;

/// Mixed-precision Adam training state per parameter: fp16 weight + grad,
/// fp32 master weight + two moments (2 + 2 + 4 + 4 + 4 = 16), plus ~2
/// bytes of allocator/comm slack — Megatron's usual ≈18 bytes/param rule.
pub const BYTES_PER_PARAM: usize = 18;

/// Builds each stage's op order for the configured schedule kind.
/// `None` when the kind is unknown, or `custom` without orders.
pub fn stage_orders(cfg: &ExperimentConfig) -> Option<Vec<Vec<OpSpec>>> {
    let p = cfg.parallelism.pp;
    let m = cfg.batch.num_micro_batches;
    let from_builtin = |order: fn(usize, usize, usize) -> Vec<Op>| -> Vec<Vec<OpSpec>> {
        (0..p)
            .map(|stage| {
                order(p, m, stage)
                    .into_iter()
                    .map(|op| OpSpec {
                        mb: op.mb,
                        stage: op.stage,
                        backward: op.backward,
                    })
                    .collect()
            })
            .collect()
    };
    match cfg.schedule.kind.as_str() {
        "gpipe" => Some(from_builtin(gpipe_order)),
        "1f1b" => Some(from_builtin(one_f_one_b_order)),
        "custom" => cfg.schedule.orders.clone(),
        _ => None,
    }
}

/// Checks each stage's order is a permutation of exactly its own
/// `{F, B} × {0..m}` ops. Returns false (after reporting) when malformed —
/// the deadlock check requires well-formed orders.
fn check_order_multiset(orders: &[Vec<OpSpec>], m: usize, diags: &mut Diagnostics) -> bool {
    let mut ok = true;
    for (stage, order) in orders.iter().enumerate() {
        let mut seen: HashMap<(usize, bool), usize> = HashMap::new();
        for op in order {
            if op.stage != stage {
                diags.push(
                    Diagnostic::error(
                        codes::MALFORMED_CUSTOM_ORDER,
                        format!("schedule.orders[{stage}]"),
                        format!(
                            "stage {stage}'s order contains an op for stage {}",
                            op.stage
                        ),
                    )
                    .with_help("orders[s] must list only stage s's own ops"),
                );
                ok = false;
            }
            *seen.entry((op.mb, op.backward)).or_insert(0) += 1;
        }
        for mb in 0..m {
            for backward in [false, true] {
                let count = seen.remove(&(mb, backward)).unwrap_or(0);
                if count != 1 {
                    let dir = if backward { "backward" } else { "forward" };
                    diags.push(
                        Diagnostic::error(
                            codes::MALFORMED_CUSTOM_ORDER,
                            format!("schedule.orders[{stage}]"),
                            format!(
                                "stage {stage} lists the {dir} of micro-batch {mb} \
                                 {count} times (expected exactly once)"
                            ),
                        )
                        .with_help(format!(
                            "each stage must run every micro-batch's forward and \
                             backward exactly once ({m} micro-batches configured)"
                        )),
                    );
                    ok = false;
                }
            }
        }
        // Anything left in `seen` is an op outside 0..m (same-stage case;
        // wrong-stage ops were reported above).
        for ((mb, backward), _) in seen.iter().filter(|((mb, _), _)| *mb >= m) {
            let dir = if *backward { "backward" } else { "forward" };
            diags.push(
                Diagnostic::error(
                    codes::MALFORMED_CUSTOM_ORDER,
                    format!("schedule.orders[{stage}]"),
                    format!(
                        "stage {stage} schedules the {dir} of micro-batch {mb}, \
                         but only {m} micro-batches are configured"
                    ),
                )
                .with_help("micro-batch indices must lie in 0..batch.num_micro_batches"),
            );
            ok = false;
        }
    }
    ok
}

/// Kahn's algorithm over the schedule DAG. Returns `Err(op)` with one op
/// on a cycle when the schedule deadlocks.
fn toposort(orders: &[Vec<OpSpec>], m: usize) -> Result<(), OpSpec> {
    let p = orders.len();
    let id = |op: &OpSpec| (op.stage * m + op.mb) * 2 + usize::from(op.backward);
    let n = p * m * 2;
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    let mut add = |from: usize, to: usize, indeg: &mut Vec<usize>| {
        adj[from].push(to);
        indeg[to] += 1;
    };
    // Intra-stage sequencing: each rank runs its order serially.
    for order in orders {
        for pair in order.windows(2) {
            add(id(&pair[0]), id(&pair[1]), &mut indeg);
        }
    }
    for mb in 0..m {
        for stage in 0..p {
            let f = |s| {
                id(&OpSpec {
                    mb,
                    stage: s,
                    backward: false,
                })
            };
            let b = |s| {
                id(&OpSpec {
                    mb,
                    stage: s,
                    backward: true,
                })
            };
            // Activation send F(mb, s) → F(mb, s+1); gradient send
            // B(mb, s+1) → B(mb, s).
            if stage + 1 < p {
                add(f(stage), f(stage + 1), &mut indeg);
                add(b(stage + 1), b(stage), &mut indeg);
            }
        }
        // Loss turn-around on the last stage.
        add(
            id(&OpSpec {
                mb,
                stage: p - 1,
                backward: false,
            }),
            id(&OpSpec {
                mb,
                stage: p - 1,
                backward: true,
            }),
            &mut indeg,
        );
    }
    let mut ready: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut done = 0usize;
    while let Some(v) = ready.pop() {
        done += 1;
        for &w in &adj[v] {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                ready.push(w);
            }
        }
    }
    if done == n {
        Ok(())
    } else {
        // Report one op still waiting — it sits on (or behind) a cycle.
        let v = (0..n).find(|&v| indeg[v] > 0).expect("a blocked op exists");
        Err(OpSpec {
            stage: v / 2 / m,
            mb: v / 2 % m,
            backward: v % 2 == 1,
        })
    }
}

/// The schedule/topology/memory pass.
pub fn check_schedule(cfg: &ExperimentConfig, diags: &mut Diagnostics) {
    let tp = cfg.parallelism.tp;
    let pp = cfg.parallelism.pp;
    let m = cfg.batch.num_micro_batches;
    // Zero degrees already carry AC0006 from the shape pass; everything
    // below divides or indexes by them.
    if tp == 0 || pp == 0 || m == 0 {
        return;
    }

    // --- topology (AC0202 / AC0203 / AC0206 / AC0207) -----------------
    let cluster = cfg.resolve_cluster();
    match &cluster {
        None => {
            diags.push(
                Diagnostic::error(
                    codes::UNKNOWN_PRESET_OR_KIND,
                    "cluster.preset",
                    format!("unknown cluster preset `{}`", cfg.cluster.preset),
                )
                .with_help("known presets: p3_8xlarge, local_no_nvlink, p3_cluster"),
            );
        }
        Some(c) => {
            if tp * pp > c.total_gpus() {
                diags.push(
                    Diagnostic::error(
                        codes::TOO_FEW_GPUS,
                        "parallelism",
                        format!(
                            "tp={tp} x pp={pp} needs {} GPUs but `{}` ({} node{}) has {}",
                            tp * pp,
                            cfg.cluster.preset,
                            c.nodes,
                            if c.nodes == 1 { "" } else { "s" },
                            c.total_gpus()
                        ),
                    )
                    .with_help("shrink the degrees or add nodes (cluster.nodes)"),
                );
            } else if tp > c.machine.gpus {
                diags.push(
                    Diagnostic::warning(
                        codes::TP_SPANS_NODES,
                        "parallelism.tp",
                        format!(
                            "tp={tp} exceeds the {} GPUs per node, so every all-reduce \
                             crosses the inter-node network",
                            c.machine.gpus
                        ),
                    )
                    .with_help(
                        "the paper's Table 6 shows TP across nodes is catastrophically \
                         slow; prefer tp <= GPUs/node and put pp across nodes",
                    ),
                );
            }
        }
    }
    if pp > cfg.model.layers {
        diags.push(
            Diagnostic::error(
                codes::PP_EXCEEDS_LAYERS,
                "parallelism.pp",
                format!(
                    "pp={pp} pipeline stages but the model has only {} layers",
                    cfg.model.layers
                ),
            )
            .with_help("every stage needs at least one layer"),
        );
    }

    // --- schedule feasibility (AC0201 / AC0205 / AC0207) ---------------
    match stage_orders(cfg) {
        None => {
            let (code, msg, help): (_, String, _) = match cfg.schedule.kind.as_str() {
                "custom" => (
                    codes::MALFORMED_CUSTOM_ORDER,
                    "schedule kind is `custom` but no orders are given".to_string(),
                    "provide schedule.orders: one op list per stage",
                ),
                other => (
                    codes::UNKNOWN_PRESET_OR_KIND,
                    format!("unknown schedule kind `{other}`"),
                    "known kinds: gpipe, 1f1b, custom",
                ),
            };
            diags.push(Diagnostic::error(code, "schedule.kind", msg).with_help(help));
        }
        Some(orders) => {
            let well_formed = if orders.len() != pp {
                diags.push(
                    Diagnostic::error(
                        codes::MALFORMED_CUSTOM_ORDER,
                        "schedule.orders",
                        format!(
                            "{} stage orders given but pp={pp} stages configured",
                            orders.len()
                        ),
                    )
                    .with_help("provide exactly one order per pipeline stage"),
                );
                false
            } else {
                check_order_multiset(&orders, m, diags)
            };
            if well_formed {
                if let Err(op) = toposort(&orders, m) {
                    let dir = if op.backward { "backward" } else { "forward" };
                    diags.push(
                        Diagnostic::error(
                            codes::SCHEDULE_DEADLOCK,
                            "schedule.orders",
                            format!(
                                "the schedule deadlocks: the {dir} of micro-batch {} on \
                                 stage {} can never become ready",
                                op.mb, op.stage
                            ),
                        )
                        .with_help(
                            "send/recv dependencies form a cycle; a stage is waiting for \
                             an op that (transitively) waits on it — reorder so every \
                             forward precedes later stages' needs",
                        ),
                    );
                }
            }
        }
    }

    // --- memory budget (AC0204) ----------------------------------------
    // Needs a feasible layering and a resolved plan; those failures carry
    // their own diagnostics above.
    let Some(plan) = cfg.resolve_plan() else {
        return;
    };
    if pp > cfg.model.layers || plan.end_layer() > cfg.model.layers {
        return;
    }
    let shape = ModelShape {
        layers: cfg.model.layers,
        hidden: cfg.model.hidden,
        vocab: cfg.model.vocab,
        max_seq: cfg.model.max_seq,
    };
    let schedule = match cfg.schedule.kind.as_str() {
        "1f1b" => Schedule::OneFOneB,
        // GPipe's stash-everything discipline is the conservative bound
        // for custom orders.
        _ => Schedule::GPipe,
    };
    let stages = activation_memory(
        &shape,
        Parallelism::new(tp, pp),
        cfg.batch.micro_batch,
        cfg.batch.seq,
        m,
        schedule,
        &plan,
    );
    let weight_bytes = shape.num_params() * BYTES_PER_PARAM / (tp * pp);
    let activation = peak_activation_bytes(&stages);
    let need = weight_bytes + activation;
    let budget = cfg.device_bytes();
    if need as f64 > budget {
        diags.push(
            Diagnostic::error(
                codes::MEMORY_BUDGET_EXCEEDED,
                "memory.device_gb",
                format!(
                    "peak per-GPU memory {:.2} GB (weights+optimizer {:.2} GB, stashed \
                     activations {:.2} GB) exceeds the {:.1} GB device budget",
                    need as f64 / 1e9,
                    weight_bytes as f64 / 1e9,
                    activation as f64 / 1e9,
                    cfg.memory.device_gb
                ),
            )
            .with_help(
                "shrink micro_batch/seq, switch schedule to 1f1b, raise tp/pp, or \
                 compress more layers (compressed stashes are smaller)",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cfg: &ExperimentConfig) -> Vec<Diagnostic> {
        let mut diags = Diagnostics::new();
        check_schedule(cfg, &mut diags);
        diags.into_vec()
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    /// A 4-stage, 4-micro-batch base whose built-in schedules are clean.
    fn base() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_pretrain();
        cfg.batch.num_micro_batches = 4;
        cfg
    }

    #[test]
    fn paper_defaults_have_no_errors() {
        assert!(run(&ExperimentConfig::paper_default()).is_empty());
        // Pretrain carries only the vocab-padding warning (a shape-pass
        // concern); the schedule pass itself is silent.
        assert!(run(&ExperimentConfig::paper_pretrain()).is_empty());
    }

    #[test]
    fn builtin_schedules_pass_the_deadlock_check() {
        let mut cfg = base();
        for kind in ["gpipe", "1f1b"] {
            cfg.schedule.kind = kind.to_string();
            assert!(run(&cfg).is_empty(), "{kind} should be clean");
        }
    }

    #[test]
    fn rejects_deadlocking_custom_schedule() {
        // Start from valid GPipe orders, then make stage 0 demand its
        // backward of micro-batch 0 *first* — which transitively waits on
        // stage 0's own forward: a cycle.
        let mut cfg = base();
        let mut orders = stage_orders(&cfg).unwrap();
        cfg.schedule.kind = "custom".to_string();
        let b0 = orders[0]
            .iter()
            .position(|op| op.backward && op.mb == 0)
            .unwrap();
        let op = orders[0].remove(b0);
        orders[0].insert(0, op);
        cfg.schedule.orders = Some(orders);
        assert_eq!(codes_of(&run(&cfg)), vec![codes::SCHEDULE_DEADLOCK]);
    }

    #[test]
    fn rejects_malformed_custom_orders() {
        let mut cfg = base();
        cfg.schedule.kind = "custom".to_string();
        cfg.schedule.orders = None;
        assert_eq!(codes_of(&run(&cfg)), vec![codes::MALFORMED_CUSTOM_ORDER]);

        // Wrong stage count.
        cfg.schedule.orders = Some(vec![Vec::new(); 2]);
        assert_eq!(codes_of(&run(&cfg)), vec![codes::MALFORMED_CUSTOM_ORDER]);

        // Duplicate one op, drop another: two multiset violations, and the
        // deadlock check is skipped rather than fed garbage.
        cfg.schedule.kind = "gpipe".to_string();
        let mut orders = stage_orders(&cfg).unwrap();
        cfg.schedule.kind = "custom".to_string();
        let dup = orders[1][0];
        orders[1][1] = dup;
        cfg.schedule.orders = Some(orders);
        let diags = run(&cfg);
        assert!(diags.len() >= 2);
        assert!(codes_of(&diags)
            .iter()
            .all(|c| *c == codes::MALFORMED_CUSTOM_ORDER));
    }

    #[test]
    fn rejects_unknown_kind_and_preset() {
        let mut cfg = base();
        cfg.schedule.kind = "interleaved-vpp".to_string();
        cfg.cluster.preset = "dgx_h100".to_string();
        let cs = codes_of(&run(&cfg));
        assert_eq!(
            cs,
            vec![codes::UNKNOWN_PRESET_OR_KIND, codes::UNKNOWN_PRESET_OR_KIND]
        );
    }

    #[test]
    fn rejects_oversubscribed_cluster() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.parallelism = crate::config::ParallelismSection { tp: 4, pp: 4 };
        // local_no_nvlink has 4 GPUs; 16 needed.
        assert!(codes_of(&run(&cfg)).contains(&codes::TOO_FEW_GPUS));
    }

    #[test]
    fn warns_when_tp_spans_nodes() {
        let mut cfg = ExperimentConfig::paper_pretrain();
        cfg.parallelism = crate::config::ParallelismSection { tp: 8, pp: 2 };
        let diags = run(&cfg);
        assert_eq!(codes_of(&diags), vec![codes::TP_SPANS_NODES]);
        assert_eq!(diags[0].severity, crate::diagnostics::Severity::Warning);
    }

    #[test]
    fn rejects_pp_exceeding_layers() {
        let mut cfg = ExperimentConfig::paper_pretrain();
        cfg.model.layers = 3;
        assert!(codes_of(&run(&cfg)).contains(&codes::PP_EXCEEDS_LAYERS));
    }

    #[test]
    fn rejects_memory_budget_overflow() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.memory.device_gb = 1.0;
        let diags = run(&cfg);
        assert_eq!(codes_of(&diags), vec![codes::MEMORY_BUDGET_EXCEEDED]);
        assert!(diags[0].message.contains("1.0 GB device budget"));
    }

    #[test]
    fn compression_and_1f1b_relieve_memory_pressure() {
        // Find a budget the GPipe/baseline config busts but the paper's
        // levers (1F1B stash discipline) fit within.
        let mut cfg = ExperimentConfig::paper_pretrain();
        cfg.plan.spec = "w/o".to_string();
        cfg.memory.device_gb = 4.0;
        assert!(codes_of(&run(&cfg)).contains(&codes::MEMORY_BUDGET_EXCEEDED));
        cfg.schedule.kind = "1f1b".to_string();
        assert!(run(&cfg).is_empty());
    }
}
