//! Op-graph plan checks (`AC0901`–`AC0903`).
//!
//! The nn/mp/runtime layers no longer thread workspace buffers by hand:
//! they emit op-graph segments (`actcomp_tensor::graph`) and execute
//! compiled plans, with elementwise chains fused into GEMM epilogues.
//! That moves a class of failures from "panic mid-layer" to "graph does
//! not compile", so the checker audits them up front, the same way it
//! audits comm protocols before any rank runs:
//!
//! - `AC0901` — the plan's dependency relation has a cycle (no
//!   def-before-use order exists);
//! - `AC0902` — a node's operand shapes disagree with its declared
//!   shape (or an operand/output id does not exist);
//! - `AC0903` — a fusion the plan *requires* (the hot FFN and
//!   projection epilogues) is not legal under the fusion rules.
//!
//! The config pass rebuilds the exact fused segments the runtime
//! executes for this model — QKV/output projection (`bias`), FFN up
//! (`bias + GELU`) and FFN down (`bias + residual`), at the TP-sharded
//! per-rank widths — and compiles them under
//! [`FusePolicy::Forced`], sharing [`Graph::from_raw_nodes`] /
//! [`Graph::compile`] with the engine so the checker and the executor
//! can never disagree on what a legal plan is.

use crate::codes;
use crate::config::ExperimentConfig;
use crate::diagnostics::{Diagnostic, Diagnostics};
use actcomp_tensor::graph::{Graph, GraphError, Node, ValueId};
use actcomp_tensor::plan::FusePolicy;

/// Maps a [`GraphError`] onto its diagnostic, anchored at `span`.
fn graph_diagnostic(span: &str, segment: &str, err: &GraphError) -> Diagnostic {
    match err {
        GraphError::Cycle { node } => Diagnostic::error(
            codes::GRAPH_CYCLE,
            span,
            format!("{segment}: dependency cycle through node {node}"),
        )
        .with_help("an op graph must be a DAG: no value may (transitively) consume itself"),
        GraphError::ShapeMismatch { node, detail } => Diagnostic::error(
            codes::GRAPH_SHAPE_MISMATCH,
            span,
            format!("{segment}: shape mismatch at node {node}: {detail}"),
        )
        .with_help("operand shapes must agree with the node's declared [rows, cols] shape"),
        GraphError::IllegalFusion { gemm, detail } => Diagnostic::error(
            codes::GRAPH_ILLEGAL_FUSION,
            span,
            format!("{segment}: required fusion at gemm node {gemm} is illegal: {detail}"),
        )
        .with_help(
            "a fused chain must be single-consumer elementwise ops directly after the GEMM; \
             stash at most one intermediate",
        ),
    }
}

/// Audits one plan given as raw nodes + outputs (the form external plan
/// descriptions arrive in): structural validation via
/// [`Graph::from_raw_nodes`] (AC0901/AC0902), then fusion legality for
/// the `forced` GEMMs via [`FusePolicy::Forced`] (AC0903). Pushes at
/// most one diagnostic — compilation stops at the first structural
/// error, and a structurally broken graph cannot be fusion-audited.
pub fn audit_raw_plan(
    nodes: Vec<Node>,
    outputs: Vec<ValueId>,
    forced: &[ValueId],
    span: &str,
    segment: &str,
    diags: &mut Diagnostics,
) {
    match Graph::from_raw_nodes(nodes, outputs) {
        Err(e) => diags.push(graph_diagnostic(span, segment, &e)),
        Ok(g) => {
            if let Err(e) = g.compile(FusePolicy::Forced(forced.to_vec())) {
                diags.push(graph_diagnostic(span, segment, &e));
            }
        }
    }
}

/// Builds and force-compiles one `x·W (+bias, +GELU?)` projection
/// segment at `[m, k] × [k, n]`, as the runtime's layer code emits it.
fn audit_projection(
    m: usize,
    k: usize,
    n: usize,
    with_gelu: bool,
    span: &str,
    segment: &str,
    diags: &mut Diagnostics,
) {
    let mut g = Graph::new();
    let x = g.input(m, k);
    let w = g.input(k, n);
    let b = g.input_vec(n);
    let y = g.matmul(x, w);
    let h = g.bias_add(y, b);
    let out = if with_gelu { g.gelu(h) } else { h };
    g.mark_output(out);
    if let Err(e) = g.compile(FusePolicy::Forced(vec![y])) {
        diags.push(graph_diagnostic(span, segment, &e));
    }
}

/// The op-graph pass: audits the fused plan segments the runtime will
/// execute for this model at its TP-sharded per-rank widths.
pub fn check_graph(cfg: &ExperimentConfig, diags: &mut Diagnostics) {
    let tp = cfg.parallelism.tp.max(1);
    let h = cfg.model.hidden;
    let ff = cfg.model.ff_hidden;
    // Per-rank shard widths; divisibility itself is AC0002/AC0003
    // territory, so only audit the graphs when the shards are exact —
    // a half-shard graph would report a misleading shape mismatch on
    // top of the real divisibility error.
    if h == 0 || ff == 0 || !h.is_multiple_of(tp) || !ff.is_multiple_of(tp) {
        return;
    }
    let m = cfg.batch.micro_batch * cfg.batch.seq;
    let span = "model";
    audit_projection(
        m,
        h,
        h / tp,
        false,
        span,
        "attention projection (bias)",
        diags,
    );
    audit_projection(m, h, ff / tp, true, span, "ffn up (bias+gelu)", diags);
    audit_projection(m, ff / tp, h, false, span, "ffn down (bias)", diags);
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_tensor::graph::{EwOp, GemmKind, NodeKind};

    fn codes_of(diags: Diagnostics) -> Vec<&'static str> {
        diags.into_vec().iter().map(|d| d.code).collect()
    }

    fn input(rows: usize, cols: usize) -> Node {
        Node {
            kind: NodeKind::Input,
            shape: (rows, cols),
        }
    }

    #[test]
    fn paper_default_plans_are_clean() {
        let mut diags = Diagnostics::new();
        check_graph(&ExperimentConfig::paper_default(), &mut diags);
        assert!(diags.into_vec().is_empty());
    }

    #[test]
    fn non_divisible_shards_are_left_to_shape_codes() {
        // ff 4096 % tp 3 != 0: the graph pass stays silent so AC0003
        // reports the root cause alone.
        let mut cfg = ExperimentConfig::paper_default();
        cfg.parallelism.tp = 3;
        let mut diags = Diagnostics::new();
        check_graph(&cfg, &mut diags);
        assert!(diags.into_vec().is_empty());
    }

    #[test]
    fn cycle_is_ac0901() {
        // Two Ew nodes consuming each other: no def-before-use order.
        let nodes = vec![
            input(4, 4),
            Node {
                kind: NodeKind::Ew {
                    x: 2,
                    op: EwOp::Relu,
                },
                shape: (4, 4),
            },
            Node {
                kind: NodeKind::Ew {
                    x: 1,
                    op: EwOp::Relu,
                },
                shape: (4, 4),
            },
        ];
        let mut diags = Diagnostics::new();
        audit_raw_plan(nodes, vec![2], &[], "plan", "test segment", &mut diags);
        assert_eq!(codes_of(diags), vec![codes::GRAPH_CYCLE]);
    }

    #[test]
    fn shape_mismatch_is_ac0902() {
        // [4, 8] × [4, 8]: inner dimensions disagree.
        let nodes = vec![
            input(4, 8),
            input(4, 8),
            Node {
                kind: NodeKind::Gemm {
                    kind: GemmKind::NN,
                    a: 0,
                    b: 1,
                },
                shape: (4, 8),
            },
        ];
        let mut diags = Diagnostics::new();
        audit_raw_plan(nodes, vec![2], &[], "plan", "test segment", &mut diags);
        assert_eq!(codes_of(diags), vec![codes::GRAPH_SHAPE_MISMATCH]);
    }

    #[test]
    fn illegal_forced_fusion_is_ac0903() {
        // The GEMM's consumer chain forks (bias_add feeds two readers),
        // so forcing the fusion must fail.
        let mut g = Graph::new();
        let x = g.input(8, 8);
        let w = g.input(8, 8);
        let b = g.input_vec(8);
        let y = g.matmul(x, w);
        let h = g.bias_add(y, b);
        let t = g.tanh(h);
        let r = g.relu(h);
        g.mark_output(t);
        g.mark_output(r);
        let (nodes, outputs) = g.into_raw_nodes();
        let mut diags = Diagnostics::new();
        audit_raw_plan(nodes, outputs, &[y], "plan", "test segment", &mut diags);
        assert_eq!(codes_of(diags), vec![codes::GRAPH_ILLEGAL_FUSION]);
    }

    #[test]
    fn config_pass_feeds_check() {
        let mut diags = Diagnostics::new();
        check_graph(&ExperimentConfig::paper_pretrain(), &mut diags);
        assert!(diags.into_vec().is_empty());
    }
}
