//! The diagnostic data model and rustc-style rendering.
//!
//! Checks never fail fast: every violation in a configuration becomes one
//! [`Diagnostic`], and the collector accumulates all of them so a user
//! fixes a broken config in one round trip instead of replaying
//! edit-run-fail loops.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but runnable (e.g. a layout known to be catastrophically
    /// slow). Does not fail validation.
    Warning,
    /// The configuration cannot run correctly. Fails validation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding against a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`AC0001`…; see [`crate::codes`]).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Dotted config path the finding anchors to (e.g. `parallelism.tp`).
    pub span: String,
    /// What is wrong, with the offending values inline.
    pub message: String,
    /// How to fix it, when a concrete suggestion exists.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(code: &'static str, span: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            span: span.into(),
            message: message.into(),
            help: None,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(
        code: &'static str,
        span: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            span: span.into(),
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a fix suggestion.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Renders this diagnostic rustc-style.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}[{}]: {}\n  --> {}",
            self.severity, self.code, self.message, self.span
        );
        if let Some(help) = &self.help {
            out.push_str("\n  = help: ");
            out.push_str(help);
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Accumulates every violation found during a check pass.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// All findings, in discovery order.
    pub fn items(&self) -> &[Diagnostic] {
        &self.items
    }

    /// Consumes the collector, yielding the findings.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }
}

/// Renders a batch of diagnostics followed by a rustc-style summary line.
pub fn render_report(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render());
        out.push_str("\n\n");
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    let plural = |n: usize, w: &str| {
        if n == 1 {
            format!("1 {w}")
        } else {
            format!("{n} {w}s")
        }
    };
    if errors > 0 {
        out.push_str(&format!(
            "error: configuration rejected: {}",
            plural(errors, "error")
        ));
        if warnings > 0 {
            out.push_str(&format!(", {}", plural(warnings, "warning")));
        }
    } else if warnings > 0 {
        out.push_str(&format!(
            "ok: configuration valid ({})",
            plural(warnings, "warning")
        ));
    } else {
        out.push_str("ok: configuration valid");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rustc_style() {
        let d = Diagnostic::error(
            "AC0001",
            "model.hidden",
            "hidden 10 not divisible by heads 3",
        )
        .with_help("choose heads dividing 10");
        let r = d.render();
        assert!(r.starts_with("error[AC0001]: hidden 10"));
        assert!(r.contains("--> model.hidden"));
        assert!(r.contains("= help: choose heads"));
    }

    #[test]
    fn collector_counts_by_severity() {
        let mut diags = Diagnostics::new();
        assert!(!diags.has_errors());
        diags.push(Diagnostic::warning("AC0206", "parallelism.tp", "slow"));
        assert!(!diags.has_errors());
        diags.push(Diagnostic::error("AC0202", "parallelism", "too big"));
        assert!(diags.has_errors());
        assert_eq!(diags.error_count(), 1);
        assert_eq!(diags.items().len(), 2);
    }

    #[test]
    fn report_summarizes() {
        let report = render_report(&[
            Diagnostic::error("AC0001", "a", "x"),
            Diagnostic::error("AC0002", "b", "y"),
            Diagnostic::warning("AC0206", "c", "z"),
        ]);
        assert!(report.ends_with("error: configuration rejected: 2 errors, 1 warning"));
        assert!(render_report(&[]).ends_with("ok: configuration valid"));
    }
}
