//! Comm-protocol static analysis (`AC0601`–`AC0606`).
//!
//! The threaded rank engine (`actcomp-runtime`) is a real concurrent
//! system: one OS thread per rank, chain-reduce → ring-broadcast
//! collectives over `mpsc` channels, GPipe boundary channels between
//! pipeline stages, and a stash-based selective receive keyed on
//! `(bcast, idx)`. Every send and receive that a `(tp, pp, codec,
//! chunk_rows, pipeline_depth, micro_batches)` plan will perform is
//! fully determined by the configuration — so the protocol can be
//! analyzed *before* a single thread spawns.
//!
//! [`build_comm_graph`] mirrors the engine's schedule generators
//! (`summable_ring`, `gathered_reduce`, `dense_ring`, `all_gather`,
//! the stage broadcast, and the pipeline boundary sends) and emits the
//! complete static message-flow graph: per rank, the ordered sequence
//! of [`CommEvent`]s for one training step. [`analyze`] then proves,
//! or refutes with an `AC06xx` diagnostic:
//!
//! * **send/recv matching** — every send has exactly one receive and
//!   vice versa (`AC0601` orphan send, `AC0602` starved recv,
//!   `AC0606` duplicate identity);
//! * **deadlock-freedom** — the blocking-dependency graph (per-rank
//!   program order, matched send→recv edges, and the driver's
//!   forward/backward phase barrier) is acyclic (`AC0603`, reported
//!   with the blocking cycle). Channels are unbounded, so sends never
//!   block and acyclicity is exactly deadlock-freedom — the rank-0
//!   `pipeline_depth` pacing enters as program-order structure;
//! * **delivery-order safety** — per-channel FIFO order agrees between
//!   sender and receiver wherever the engine receives non-selectively
//!   (gathers, boundary messages, broadcasts), and no two in-flight
//!   chunks can ever share a `(bcast, idx)` stash key (`AC0606`);
//! * **byte-accounting consistency** — the event-sum of wire bytes
//!   matches the closed-form `ring_bytes` / boundary counters the
//!   engine reports (`AC0604`).
//!
//! The same graph doubles as the reference for dynamic conformance
//! auditing: the runtime's trace mode records per-rank [`TraceEvent`]s
//! and [`audit_trace`] replays them against the static graph
//! (`AC0605`). Per-rank consumption order in the engine is
//! deterministic, so conformance is exact sequence equality.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use actcomp_compress::spec::CompressorSpec;
use actcomp_compress::{Compressor, ErrorFeedback};
use actcomp_distsim::schedule::gpipe_order;
use actcomp_mp::stage_offsets;
use actcomp_tensor::Tensor;

use crate::codes;
use crate::collectives::{resolved_ring_tuning, ring_chunk_plan};
use crate::config::ExperimentConfig;
use crate::diagnostics::Diagnostic;
use crate::runtime::uses_threads_backend;

/// At most this many diagnostics are emitted per code before the
/// remainder is folded into one summary finding.
const MAX_PER_CODE: usize = 5;

/// Direction of a communication event, from the acting rank's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// The rank enqueues a message.
    Send,
    /// The rank consumes a message (recorded at consumption, so a
    /// stashed chunk appears where the schedule uses it, not where it
    /// arrived).
    Recv,
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dir::Send => "send",
            Dir::Recv => "recv",
        })
    }
}

/// One directed `mpsc` channel in the engine's plumbing. Every channel
/// has exactly one sender rank and one receiver rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ChannelId {
    /// Ring link `link` of stage `stage`: TP rank `link` sends to TP
    /// rank `(link + 1) % tp`.
    Ring {
        /// Pipeline stage owning the ring.
        stage: usize,
        /// Link index == sending TP rank.
        link: usize,
    },
    /// Stage-input broadcast from the stage's TP rank 0 to `peer`.
    Bcast {
        /// Pipeline stage.
        stage: usize,
        /// Receiving TP rank (`1..tp`).
        peer: usize,
    },
    /// Forward boundary `boundary`: stage `boundary` rank 0 to stage
    /// `boundary + 1` rank 0. Carries activations and the end-of-step
    /// compressor-gradient sync.
    BoundaryFwd {
        /// Boundary index (`0..pp-1`).
        boundary: usize,
    },
    /// Gradient boundary `boundary`: stage `boundary + 1` rank 0 back
    /// to stage `boundary` rank 0.
    BoundaryGrad {
        /// Boundary index (`0..pp-1`).
        boundary: usize,
    },
}

impl ChannelId {
    /// The unique sending rank (global rank id) for a world of `tp`
    /// TP ranks per stage.
    pub fn sender(&self, tp: usize) -> usize {
        match *self {
            ChannelId::Ring { stage, link } => stage * tp + link,
            ChannelId::Bcast { stage, .. } => stage * tp,
            ChannelId::BoundaryFwd { boundary } => boundary * tp,
            ChannelId::BoundaryGrad { boundary } => (boundary + 1) * tp,
        }
    }

    /// The unique receiving rank (global rank id).
    pub fn receiver(&self, tp: usize) -> usize {
        match *self {
            ChannelId::Ring { stage, link } => stage * tp + (link + 1) % tp,
            ChannelId::Bcast { stage, peer } => stage * tp + peer,
            ChannelId::BoundaryFwd { boundary } => (boundary + 1) * tp,
            ChannelId::BoundaryGrad { boundary } => boundary * tp,
        }
    }

    /// Whether this is a ring link (the only channel kind with
    /// selective receive).
    pub fn is_ring(&self) -> bool {
        matches!(self, ChannelId::Ring { .. })
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ChannelId::Ring { stage, link } => write!(f, "ring[stage {stage}, link {link}]"),
            ChannelId::Bcast { stage, peer } => write!(f, "bcast[stage {stage} -> peer {peer}]"),
            ChannelId::BoundaryFwd { boundary } => write!(f, "fwd-boundary[{boundary}]"),
            ChannelId::BoundaryGrad { boundary } => write!(f, "grad-boundary[{boundary}]"),
        }
    }
}

/// The identity of one message on one channel. `(channel, msg)` is the
/// matching key between a send and its receive; the analyzer proves it
/// unique per direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MsgId {
    /// A ring chunk: collective ordinal `coll` (per stage ring, in
    /// program order), reduce (`bcast == false`) or broadcast leg, and
    /// chunk index. The engine's selective receive keys on
    /// `(bcast, idx)` only — the stash-interval analysis proves the
    /// shorter key is unambiguous at every instant.
    Chunk {
        /// Collective ordinal within the stage ring.
        coll: usize,
        /// Broadcast leg (`true`) or reduce leg (`false`).
        bcast: bool,
        /// Chunk index within the collective.
        idx: usize,
    },
    /// A gathered-reduce or grad-sync hop carrying rank `origin`'s
    /// contribution.
    Gather {
        /// Collective ordinal within the stage ring.
        coll: usize,
        /// Rank whose payload this hop carries.
        origin: usize,
    },
    /// Stage-input broadcast number `seq` (per rank, per step).
    Bcast {
        /// Broadcast ordinal within the step.
        seq: usize,
    },
    /// Forward boundary activation for micro-batch `mb`.
    Activation {
        /// Micro-batch index.
        mb: usize,
    },
    /// Backward boundary gradient for micro-batch `mb`.
    Grad {
        /// Micro-batch index.
        mb: usize,
    },
    /// End-of-step compressor-gradient sync message.
    GradSync,
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MsgId::Chunk { coll, bcast, idx } => {
                let leg = if bcast { "bcast" } else { "reduce" };
                write!(f, "chunk(coll {coll}, {leg}, idx {idx})")
            }
            MsgId::Gather { coll, origin } => write!(f, "gather(coll {coll}, origin {origin})"),
            MsgId::Bcast { seq } => write!(f, "bcast(seq {seq})"),
            MsgId::Activation { mb } => write!(f, "activation(mb {mb})"),
            MsgId::Grad { mb } => write!(f, "grad(mb {mb})"),
            MsgId::GradSync => f.write_str("grad-sync"),
        }
    }
}

/// The driver-visible phase an event belongs to. The driver barriers
/// between the forward and backward commands; the compressor-gradient
/// sync runs inside the backward command (no barrier before it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Forward pass of micro-batch `mb`.
    Forward {
        /// Micro-batch index.
        mb: usize,
    },
    /// Backward pass of micro-batch `mb`.
    Backward {
        /// Micro-batch index.
        mb: usize,
    },
    /// End-of-step compressor-gradient synchronisation.
    Sync,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Phase::Forward { mb } => write!(f, "forward mb {mb}"),
            Phase::Backward { mb } => write!(f, "backward mb {mb}"),
            Phase::Sync => f.write_str("sync"),
        }
    }
}

/// One static send/recv event in a rank's per-step program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommEvent {
    /// Send or receive.
    pub dir: Dir,
    /// The channel acted on.
    pub channel: ChannelId,
    /// The message's matching identity.
    pub msg: MsgId,
    /// Wire bytes, on the sends the engine's byte counters meter
    /// (ring chunks, gather codes, boundary activations); `None` on
    /// receives and unmetered messages.
    pub bytes: Option<usize>,
    /// Driver phase, for the barrier edges and diagnostics.
    pub phase: Phase,
}

impl CommEvent {
    /// Projects the event to its runtime-observable form.
    pub fn to_trace(self) -> TraceEvent {
        TraceEvent {
            dir: self.dir,
            channel: self.channel,
            msg: self.msg,
            bytes: self.bytes,
        }
    }
}

impl fmt::Display for CommEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} on {} [{}]",
            self.dir, self.msg, self.channel, self.phase
        )
    }
}

/// One recorded runtime event — a [`CommEvent`] minus the phase, which
/// the runtime does not label. Receives are recorded at consumption,
/// matching the static graph's convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Send or receive.
    pub dir: Dir,
    /// The channel acted on.
    pub channel: ChannelId,
    /// The message's matching identity.
    pub msg: MsgId,
    /// Wire bytes on metered sends, `None` otherwise.
    pub bytes: Option<usize>,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} on {}", self.dir, self.msg, self.channel)
    }
}

/// Closed-form per-rank byte counters for one step, mirroring the
/// engine's `RankReport` fields. `AC0604` cross-checks these against
/// the event-sum of the graph's metered sends; the conformance tests
/// check both against the live engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpectedCounters {
    /// Serial-matching reduce accounting, wire bytes (`TpGroup::bytes`).
    pub reduce_wire: usize,
    /// Serial-matching reduce accounting, dense-equivalent bytes.
    pub reduce_dense: usize,
    /// Actual ring traffic, wire bytes (`TpGroup::ring_bytes`).
    pub ring_wire: usize,
    /// Gather-equivalent baseline for the ring comparison.
    pub ring_dense: usize,
    /// Boundary activation traffic, wire bytes (sender side only).
    pub boundary_wire: usize,
    /// Boundary activation traffic, dense bytes.
    pub boundary_dense: usize,
}

/// The complete static message-flow graph for one training step of a
/// threads-backend plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommGraph {
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Pipeline-parallel degree.
    pub pp: usize,
    /// Micro-batches per step.
    pub micro_batches: usize,
    /// Per-rank ordered event programs, indexed by global rank
    /// (`stage * tp + tp_index`).
    pub events: Vec<Vec<CommEvent>>,
    /// Per-rank expected byte counters for the step.
    pub expected: Vec<ExpectedCounters>,
}

impl CommGraph {
    /// Total rank count.
    pub fn world(&self) -> usize {
        self.tp * self.pp
    }

    /// Total send + recv events across all ranks.
    pub fn event_count(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }

    /// Number of distinct messages (send events).
    pub fn message_count(&self) -> usize {
        self.events
            .iter()
            .flatten()
            .filter(|e| e.dir == Dir::Send)
            .count()
    }

    /// Number of distinct channels touched.
    pub fn channel_count(&self) -> usize {
        self.events
            .iter()
            .flatten()
            .map(|e| e.channel)
            .collect::<BTreeSet<_>>()
            .len()
    }
}

/// Per-layer communication profile, read off the layer's actual codec.
struct LayerComm {
    /// Compressed-domain summable (chain-reduce path) vs gathered.
    summable: bool,
    /// Wire bytes per reduce/broadcast chunk (summable path). One
    /// entry when the codec is not chunkable.
    chunk_bytes: Vec<usize>,
    /// Whole-message wire bytes (gathered path).
    msg_bytes: usize,
}

/// Per-rank event generator: a faithful mirror of the engine's
/// schedule generators, emitting events instead of messages.
struct Gen {
    tp: usize,
    stage: usize,
    tpi: usize,
    hidden: usize,
    chunk_rows: Option<usize>,
    depth: usize,
    /// Collective ordinal within this stage's ring; advances in the
    /// same order on every rank of the stage.
    coll: usize,
    /// Stage-broadcast ordinal; advances at every broadcast point even
    /// when `tp == 1` so all ranks stay in lockstep.
    bseq: usize,
    phase: Phase,
    events: Vec<CommEvent>,
    exp: ExpectedCounters,
}

impl Gen {
    fn push(&mut self, dir: Dir, channel: ChannelId, msg: MsgId, bytes: Option<usize>) {
        self.events.push(CommEvent {
            dir,
            channel,
            msg,
            bytes,
            phase: self.phase,
        });
    }

    fn ring_send(&self) -> ChannelId {
        ChannelId::Ring {
            stage: self.stage,
            link: self.tpi,
        }
    }

    fn ring_recv(&self) -> ChannelId {
        ChannelId::Ring {
            stage: self.stage,
            link: (self.tpi + self.tp - 1) % self.tp,
        }
    }

    fn send_chunk(&mut self, coll: usize, bcast: bool, idx: usize, bytes: usize) {
        self.push(
            Dir::Send,
            self.ring_send(),
            MsgId::Chunk { coll, bcast, idx },
            Some(bytes),
        );
    }

    fn recv_chunk(&mut self, coll: usize, bcast: bool, idx: usize) {
        self.push(
            Dir::Recv,
            self.ring_recv(),
            MsgId::Chunk { coll, bcast, idx },
            None,
        );
    }

    /// The chain-reduce → ring-broadcast schedule (`summable_ring` /
    /// `dense_ring`), including the rank-0 `pipeline_depth` pacing.
    fn chunk_ring(&mut self, chunk_bytes: &[usize]) {
        let p = self.tp;
        debug_assert!(p > 1, "chunk_ring on a solo ring");
        let coll = self.coll;
        self.coll += 1;
        let total = chunk_bytes.len();
        let r = self.tpi;
        if r == 0 {
            let mut sent = 0;
            while sent < self.depth.min(total) {
                self.send_chunk(coll, false, sent, chunk_bytes[sent]);
                sent += 1;
            }
            for idx in 0..total {
                self.recv_chunk(coll, true, idx);
                if p > 2 {
                    self.send_chunk(coll, true, idx, chunk_bytes[idx]);
                }
                if sent < total {
                    self.send_chunk(coll, false, sent, chunk_bytes[sent]);
                    sent += 1;
                }
            }
        } else if r < p - 1 {
            for (idx, &bytes) in chunk_bytes.iter().enumerate() {
                self.recv_chunk(coll, false, idx);
                self.send_chunk(coll, false, idx, bytes);
            }
            for (idx, &bytes) in chunk_bytes.iter().enumerate() {
                self.recv_chunk(coll, true, idx);
                if r != p - 2 {
                    self.send_chunk(coll, true, idx, bytes);
                }
            }
        } else {
            for (idx, &bytes) in chunk_bytes.iter().enumerate() {
                self.recv_chunk(coll, false, idx);
                self.send_chunk(coll, true, idx, bytes);
            }
        }
        // Closed-form wire bytes for this rank's sends; `AC0604`
        // cross-checks it against the event-sum above.
        let own: usize = chunk_bytes.iter().sum();
        self.exp.ring_wire += if r == 0 {
            if p > 2 {
                2 * own
            } else {
                own
            }
        } else if r == p - 1 || r == p - 2 {
            own
        } else {
            2 * own
        };
    }

    /// The gather ring (`gathered_reduce` / `all_gather`): both emit
    /// the identical send/recv interleave, differing only in whether
    /// the sends are metered.
    fn gather_ring(&mut self, bytes: Option<usize>) {
        let p = self.tp;
        if p == 1 {
            return;
        }
        let coll = self.coll;
        self.coll += 1;
        let r = self.tpi;
        for j in 0..p - 1 {
            let send_origin = (r + p - j) % p;
            let recv_origin = (r + p - 1 - j) % p;
            self.push(
                Dir::Send,
                self.ring_send(),
                MsgId::Gather {
                    coll,
                    origin: send_origin,
                },
                bytes,
            );
            self.push(
                Dir::Recv,
                self.ring_recv(),
                MsgId::Gather {
                    coll,
                    origin: recv_origin,
                },
                None,
            );
        }
    }

    /// A compressed all-reduce over `[rows, hidden]` with the layer's
    /// codec (`compressed_all_reduce`).
    fn car(&mut self, lc: &LayerComm, len: usize) {
        let p = self.tp;
        if p == 1 {
            return;
        }
        if lc.summable {
            let chunk_bytes = lc.chunk_bytes.clone();
            self.chunk_ring(&chunk_bytes);
            let own: usize = chunk_bytes.iter().sum();
            self.exp.reduce_wire += 2 * (p - 1) * own / p;
            self.exp.reduce_dense += 2 * (p - 1) * (len * 2) / p;
            self.exp.ring_dense += (p - 1) * own;
        } else {
            self.gather_ring(Some(lc.msg_bytes));
            let gathered = p * lc.msg_bytes;
            let sent = (p - 1) * lc.msg_bytes;
            self.exp.reduce_wire += gathered * (p - 1) / p;
            self.exp.reduce_dense += 2 * (p - 1) * (len * 2) / p;
            self.exp.ring_wire += sent;
            self.exp.ring_dense += sent;
        }
    }

    /// A dense all-reduce over `[rows, hidden]` (`dense_all_reduce`).
    fn dense_ar(&mut self, rows: usize) {
        if self.tp == 1 {
            return;
        }
        let plan = ring_chunk_plan(self.chunk_rows, rows);
        let chunk_bytes: Vec<usize> = plan.iter().map(|&r| r * self.hidden * 2).collect();
        self.chunk_ring(&chunk_bytes);
        self.exp.ring_dense += (self.tp - 1) * rows * self.hidden * 2;
    }

    /// A stage-input broadcast point (`stage_broadcast`). The ordinal
    /// advances on every rank even when nothing travels.
    fn bcast_point(&mut self) {
        let seq = self.bseq;
        self.bseq += 1;
        if self.tp == 1 {
            return;
        }
        if self.tpi == 0 {
            for peer in 1..self.tp {
                self.push(
                    Dir::Send,
                    ChannelId::Bcast {
                        stage: self.stage,
                        peer,
                    },
                    MsgId::Bcast { seq },
                    None,
                );
            }
        } else {
            self.push(
                Dir::Recv,
                ChannelId::Bcast {
                    stage: self.stage,
                    peer: self.tpi,
                },
                MsgId::Bcast { seq },
                None,
            );
        }
    }
}

/// Builds the static message-flow graph for one training step, or
/// `None` when the config does not select the threaded engine or is
/// too broken to model (those defects carry their own `AC0xxx` codes
/// from the earlier passes; run the full [`crate::check`] first).
pub fn build_comm_graph(cfg: &ExperimentConfig) -> Option<CommGraph> {
    if !uses_threads_backend(cfg) {
        return None;
    }
    let rt = cfg.runtime.as_ref()?;
    let tp = cfg.parallelism.tp;
    let pp = cfg.parallelism.pp;
    let layers = cfg.model.layers;
    let h = cfg.model.hidden;
    let m = rt.micro_batches();
    if tp == 0 || pp == 0 || h == 0 || m == 0 || layers < pp {
        return None;
    }
    let tokens = cfg.batch.micro_batch.checked_mul(cfg.batch.seq)?;
    if tokens == 0 || !tokens.is_multiple_of(m) {
        return None;
    }
    let plan = cfg.resolve_plan()?;
    let (chunk_rows, depth) = resolved_ring_tuning(cfg);
    if chunk_rows == Some(0) || depth == 0 {
        return None;
    }

    let world = tp * pp;
    let mb_tokens = tokens / m;
    let n = mb_tokens * h;
    // `stage_offsets` yields the pp start offsets; append the end
    // sentinel so `offsets[s]..offsets[s + 1]` is stage `s`'s range.
    let mut offsets = stage_offsets(layers, pp);
    offsets.push(layers);
    let ef = cfg.plan.error_feedback;

    // Build each distinct codec once (mirroring the engine's seeding
    // structure; message sizes are data- and seed-independent) and
    // size messages by compressing zero tensors.
    let build_layer_codec = |covered: bool| -> Box<dyn Compressor> {
        let spec = if covered && tp > 1 {
            plan.spec
        } else {
            CompressorSpec::Baseline
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let c = spec.build(&mut rng, n, h);
        if ef && spec != CompressorSpec::Baseline {
            Box::new(ErrorFeedback::new(c))
        } else {
            c
        }
    };
    let mut wire_cache: BTreeMap<(bool, usize), usize> = BTreeMap::new();
    let mut layer_profile = |covered: bool| -> LayerComm {
        let mut comp = build_layer_codec(covered);
        let chunks = if comp.chunkable() {
            ring_chunk_plan(chunk_rows, mb_tokens)
        } else {
            vec![mb_tokens]
        };
        let summable = comp.summable();
        let mut sized = |rows: usize| -> usize {
            *wire_cache
                .entry((covered, rows))
                .or_insert_with(|| comp.compress(&Tensor::zeros(vec![rows, h])).wire_bytes(2))
        };
        let chunk_bytes: Vec<usize> = if summable && tp > 1 {
            chunks.iter().map(|&rows| sized(rows)).collect()
        } else {
            Vec::new()
        };
        let msg_bytes = if !summable && tp > 1 {
            sized(mb_tokens)
        } else {
            0
        };
        LayerComm {
            summable,
            chunk_bytes,
            msg_bytes,
        }
    };
    let covered_profile = layer_profile(true);
    let uncovered_profile = layer_profile(false);
    let profile_of = |l: usize| -> &LayerComm {
        if plan.covers(l) {
            &covered_profile
        } else {
            &uncovered_profile
        }
    };

    // Boundary codecs compress regardless of tp (they serve pipeline
    // parallelism); uncovered boundaries use the identity.
    let boundary_bytes: Vec<usize> = (0..pp.saturating_sub(1))
        .map(|b| {
            if plan.covers(offsets[b + 1]) {
                let mut rng = ChaCha8Rng::seed_from_u64(0);
                let built = plan.spec.build(&mut rng, n, h);
                let mut comp: Box<dyn Compressor> = if ef {
                    Box::new(ErrorFeedback::new(built))
                } else {
                    built
                };
                comp.compress(&Tensor::zeros(vec![mb_tokens, h]))
                    .wire_bytes(2)
            } else {
                mb_tokens * h * 2
            }
        })
        .collect();

    let mut events = Vec::with_capacity(world);
    let mut expected = Vec::with_capacity(world);
    for stage in 0..pp {
        let (lo, hi) = (offsets[stage], offsets[stage + 1]);
        let last = stage + 1 == pp;
        for tpi in 0..tp {
            let mut g = Gen {
                tp,
                stage,
                tpi,
                hidden: h,
                chunk_rows,
                depth,
                coll: 0,
                bseq: 0,
                phase: Phase::Sync,
                events: Vec::new(),
                exp: ExpectedCounters::default(),
            };

            // Forward command: GPipe forward micro-batches in order.
            for op in gpipe_order(pp, m, stage)
                .into_iter()
                .filter(|o| !o.backward)
            {
                g.phase = Phase::Forward { mb: op.mb };
                if stage > 0 {
                    if tpi == 0 {
                        g.push(
                            Dir::Recv,
                            ChannelId::BoundaryFwd {
                                boundary: stage - 1,
                            },
                            MsgId::Activation { mb: op.mb },
                            None,
                        );
                    }
                    g.bcast_point();
                }
                for l in lo..hi {
                    // Attention then feed-forward partial-sum reduces.
                    g.car(profile_of(l), n);
                    g.car(profile_of(l), n);
                }
                if !last && tpi == 0 {
                    g.push(
                        Dir::Send,
                        ChannelId::BoundaryFwd { boundary: stage },
                        MsgId::Activation { mb: op.mb },
                        Some(boundary_bytes[stage]),
                    );
                    g.exp.boundary_wire += boundary_bytes[stage];
                    g.exp.boundary_dense += n * 2;
                }
            }

            // Backward command: GPipe backward micro-batches, then the
            // compressor-gradient sync (same command, no barrier).
            for op in gpipe_order(pp, m, stage).into_iter().filter(|o| o.backward) {
                g.phase = Phase::Backward { mb: op.mb };
                if !last {
                    if tpi == 0 {
                        g.push(
                            Dir::Recv,
                            ChannelId::BoundaryGrad { boundary: stage },
                            MsgId::Grad { mb: op.mb },
                            None,
                        );
                    }
                    g.bcast_point();
                }
                for _l in (lo..hi).rev() {
                    // Feed-forward input-grad reduce, then the fused
                    // dQ/dK/dV reduce.
                    g.dense_ar(mb_tokens);
                    g.dense_ar(3 * mb_tokens);
                }
                if stage > 0 && tpi == 0 {
                    g.push(
                        Dir::Send,
                        ChannelId::BoundaryGrad {
                            boundary: stage - 1,
                        },
                        MsgId::Grad { mb: op.mb },
                        None,
                    );
                }
            }

            g.phase = Phase::Sync;
            for _l in lo..hi {
                // Attention then feed-forward compressor-grad gathers.
                g.gather_ring(None);
                g.gather_ring(None);
            }
            if tpi == 0 && !last {
                g.push(
                    Dir::Send,
                    ChannelId::BoundaryFwd { boundary: stage },
                    MsgId::GradSync,
                    None,
                );
            }
            if tpi == 0 && stage > 0 {
                g.push(
                    Dir::Recv,
                    ChannelId::BoundaryFwd {
                        boundary: stage - 1,
                    },
                    MsgId::GradSync,
                    None,
                );
            }

            events.push(g.events);
            expected.push(g.exp);
        }
    }

    Some(CommGraph {
        tp,
        pp,
        micro_batches: m,
        events,
        expected,
    })
}

/// Emits up to [`MAX_PER_CODE`] diagnostics from `items`, folding any
/// remainder into one summary finding with the same code.
fn capped(
    diags: &mut Vec<Diagnostic>,
    code: &'static str,
    span: &str,
    items: Vec<String>,
    help: &str,
) {
    let total = items.len();
    for msg in items.into_iter().take(MAX_PER_CODE) {
        diags.push(Diagnostic::error(code, span, msg).with_help(help.to_string()));
    }
    if total > MAX_PER_CODE {
        diags.push(Diagnostic::error(
            code,
            span,
            format!(
                "… and {} more finding(s) with this code (shown: {MAX_PER_CODE})",
                total - MAX_PER_CODE
            ),
        ));
    }
}

/// Analyzes a static message-flow graph, returning every protocol
/// violation as an `AC06xx` diagnostic. An empty vector is a proof —
/// under the blocking model documented on this module — that the plan
/// matches every send to exactly one receive, cannot deadlock, cannot
/// hit a mis-kinded or ambiguous receive, and meters exactly the bytes
/// its counters claim.
pub fn analyze(graph: &CommGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let world = graph.world();
    let mut base = vec![0usize; world + 1];
    for r in 0..world {
        base[r + 1] = base[r] + graph.events[r].len();
    }
    let n = base[world];
    let locate = |id: usize| -> (usize, usize) {
        let r = base.partition_point(|&b| b <= id) - 1;
        (r, id - base[r])
    };
    let describe = |id: usize| -> String {
        let (r, i) = locate(id);
        format!("rank {r} event {i}: {}", graph.events[r][i])
    };

    // --- send/recv matching (AC0601, AC0602, AC0606) -------------------
    let mut table: BTreeMap<(ChannelId, MsgId), (Vec<usize>, Vec<usize>)> = BTreeMap::new();
    for (r, events) in graph.events.iter().enumerate() {
        for (i, e) in events.iter().enumerate() {
            let entry = table.entry((e.channel, e.msg)).or_default();
            match e.dir {
                Dir::Send => entry.0.push(base[r] + i),
                Dir::Recv => entry.1.push(base[r] + i),
            }
        }
    }
    let mut orphans = Vec::new();
    let mut starved = Vec::new();
    let mut dups = Vec::new();
    for ((ch, msg), (sends, recvs)) in &table {
        if sends.len() > 1 || recvs.len() > 1 {
            dups.push(format!(
                "message {msg} on {ch} has {} send(s) and {} recv(s); \
                 matching requires exactly one of each (first send: {})",
                sends.len(),
                recvs.len(),
                sends
                    .first()
                    .or_else(|| recvs.first())
                    .map(|&id| describe(id))
                    .unwrap_or_default(),
            ));
        } else if recvs.is_empty() {
            orphans.push(format!("{} is never received on {ch}", describe(sends[0])));
        } else if sends.is_empty() {
            starved.push(format!("{} is never sent on {ch}", describe(recvs[0])));
        }
    }
    let matching_clean = orphans.is_empty() && starved.is_empty() && dups.is_empty();
    capped(
        &mut diags,
        codes::COMM_ORPHAN_SEND,
        "comm.graph",
        orphans,
        "every send must have a matching receive on the same channel",
    );
    capped(
        &mut diags,
        codes::COMM_STARVED_RECV,
        "comm.graph",
        starved,
        "a receive with no matching send blocks its rank forever",
    );
    capped(
        &mut diags,
        codes::COMM_AMBIGUOUS_MESSAGE,
        "comm.graph",
        dups,
        "two messages sharing one identity make the selective receive ambiguous",
    );

    // --- blocking-dependency graph -------------------------------------
    // Edges: per-rank program order, matched send -> recv, and the
    // driver's phase barrier (every rank's last forward event precedes
    // every rank's first non-forward event). Channels are unbounded,
    // so sends never block: a cycle is exactly a deadlock.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in 0..world {
        for i in 1..graph.events[r].len() {
            succs[base[r] + i - 1].push(base[r] + i);
            preds[base[r] + i].push(base[r] + i - 1);
        }
    }
    for (sends, recvs) in table.values() {
        if sends.len() == 1 && recvs.len() == 1 {
            succs[sends[0]].push(recvs[0]);
            preds[recvs[0]].push(sends[0]);
        }
    }
    let last_fwd: Vec<Option<usize>> = (0..world)
        .map(|r| {
            graph.events[r]
                .iter()
                .rposition(|e| matches!(e.phase, Phase::Forward { .. }))
                .map(|i| base[r] + i)
        })
        .collect();
    let first_bwd: Vec<Option<usize>> = (0..world)
        .map(|r| {
            graph.events[r]
                .iter()
                .position(|e| !matches!(e.phase, Phase::Forward { .. }))
                .map(|i| base[r] + i)
        })
        .collect();
    for &lf in last_fwd.iter().flatten() {
        for &fb in first_bwd.iter().flatten() {
            if locate(lf).0 != locate(fb).0 {
                succs[lf].push(fb);
                preds[fb].push(lf);
            }
        }
    }

    // --- deadlock-freedom: canonical Kahn order (AC0603) ---------------
    let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut heap: BinaryHeap<Reverse<usize>> =
        (0..n).filter(|&i| indeg[i] == 0).map(Reverse).collect();
    let mut topo = vec![usize::MAX; n];
    let mut placed = 0usize;
    while let Some(Reverse(i)) = heap.pop() {
        topo[i] = placed;
        placed += 1;
        for &s in &succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                heap.push(Reverse(s));
            }
        }
    }
    if placed < n {
        // Extract one concrete cycle: every unplaced node retains an
        // unplaced predecessor, so walking predecessors must repeat.
        let start = (0..n)
            .find(|&i| topo[i] == usize::MAX)
            .expect("an unplaced node exists when placed < n");
        let mut path = vec![start];
        let mut cur = start;
        let cycle = loop {
            let p = preds[cur]
                .iter()
                .copied()
                .find(|&p| topo[p] == usize::MAX)
                .expect("unplaced node keeps an unplaced predecessor");
            if let Some(k) = path.iter().position(|&x| x == p) {
                let mut c: Vec<usize> = path[k..].to_vec();
                c.reverse(); // predecessor walk -> edge direction
                break c;
            }
            path.push(p);
            cur = p;
        };
        let shown: Vec<String> = cycle.iter().take(8).map(|&id| describe(id)).collect();
        let suffix = if cycle.len() > 8 {
            format!(" … ({} events total)", cycle.len())
        } else {
            String::new()
        };
        diags.push(
            Diagnostic::error(
                codes::COMM_DEADLOCK_CYCLE,
                "comm.graph",
                format!(
                    "blocking-dependency cycle ({} rank(s) would deadlock waiting on each \
                     other): {}{suffix}",
                    n - placed,
                    shown.join(" -> "),
                ),
            )
            .with_help(
                "each listed event waits (directly or through program order) on the next; \
                 adjust the plan so the dependency chain is acyclic",
            ),
        );
        // The FIFO/stash analyses need the canonical order; without
        // one, report the cycle and the byte check only.
        byte_check(graph, &mut diags);
        return diags;
    }

    // --- per-channel delivery order (AC0606) ---------------------------
    // Only meaningful once every message matches 1:1 — an unbalanced
    // channel already carries AC0601/AC0602/AC0606 findings above.
    if !matching_clean {
        byte_check(graph, &mut diags);
        return diags;
    }
    let mut order_faults = Vec::new();
    let mut chans: BTreeMap<ChannelId, (Vec<usize>, Vec<usize>)> = BTreeMap::new();
    for (r, events) in graph.events.iter().enumerate() {
        for (i, e) in events.iter().enumerate() {
            let entry = chans.entry(e.channel).or_default();
            match e.dir {
                Dir::Send => entry.0.push(base[r] + i),
                Dir::Recv => entry.1.push(base[r] + i),
            }
        }
    }
    for (ch, (sends, recvs)) in &chans {
        let s_msgs: Vec<MsgId> = sends
            .iter()
            .map(|&id| ev_at(graph, &base, id).msg)
            .collect();
        let r_msgs: Vec<MsgId> = recvs
            .iter()
            .map(|&id| ev_at(graph, &base, id).msg)
            .collect();
        if !ch.is_ring() {
            // Non-ring receives are strictly FIFO (and panic on an
            // unexpected message kind): consumption order must equal
            // send order exactly.
            if s_msgs != r_msgs {
                let k = s_msgs
                    .iter()
                    .zip(&r_msgs)
                    .position(|(a, b)| a != b)
                    .unwrap_or(s_msgs.len().min(r_msgs.len()));
                order_faults.push(format!(
                    "FIFO order mismatch on {ch} at position {k}: sender enqueues {} but \
                     receiver consumes {}",
                    s_msgs
                        .get(k)
                        .map(|m| m.to_string())
                        .unwrap_or_else(|| "nothing".into()),
                    r_msgs
                        .get(k)
                        .map(|m| m.to_string())
                        .unwrap_or_else(|| "nothing".into()),
                ));
            }
            continue;
        }
        // Ring links: gathers are consumed FIFO, chunks selectively.
        let s_gather: Vec<MsgId> = s_msgs
            .iter()
            .copied()
            .filter(|m| matches!(m, MsgId::Gather { .. }))
            .collect();
        let r_gather: Vec<MsgId> = r_msgs
            .iter()
            .copied()
            .filter(|m| matches!(m, MsgId::Gather { .. }))
            .collect();
        if s_gather != r_gather {
            order_faults.push(format!(
                "gather delivery order on {ch} differs between sender and receiver; \
                 the non-selective gather receive would consume a wrong hop"
            ));
        }
        // Collectives must be interleave-free and processed in the
        // same order on both endpoints, or a chunk receive can meet a
        // gather at the head of the queue (a panic in the engine).
        let coll_seq = |msgs: &[MsgId]| -> Vec<usize> {
            let mut out: Vec<usize> = Vec::new();
            for m in msgs {
                let c = match *m {
                    MsgId::Chunk { coll, .. } | MsgId::Gather { coll, .. } => coll,
                    _ => continue,
                };
                if out.last() != Some(&c) {
                    out.push(c);
                }
            }
            out
        };
        if coll_seq(&s_msgs) != coll_seq(&r_msgs) {
            order_faults.push(format!(
                "collective order on {ch} differs between sender and receiver; \
                 a chunk receive could meet a message of the wrong kind"
            ));
        }
        // Stash-key uniqueness: the engine's selective receive keys on
        // (bcast, idx) only. For consecutive messages reusing a key,
        // the earlier receive must precede the later send in the
        // canonical order, so the two are never in flight together.
        let mut by_key: BTreeMap<(bool, usize), Vec<usize>> = BTreeMap::new();
        for &id in sends {
            if let MsgId::Chunk { bcast, idx, .. } = ev_at(graph, &base, id).msg {
                by_key.entry((bcast, idx)).or_default().push(id);
            }
        }
        for ids in by_key.values() {
            for w in ids.windows(2) {
                let (a, b) = (w[0], w[1]);
                let key = (*ch, ev_at(graph, &base, a).msg);
                let Some(&recv_a) = table.get(&key).and_then(|(_, rs)| rs.first()) else {
                    continue; // unmatched sends already carry AC0601
                };
                if topo[recv_a] >= topo[b] {
                    order_faults.push(format!(
                        "stash-key collision on {ch}: {} may still be in flight when {} \
                         is sent; the selective receive could consume the wrong chunk",
                        describe(a),
                        describe(b),
                    ));
                }
            }
        }
    }
    capped(
        &mut diags,
        codes::COMM_AMBIGUOUS_MESSAGE,
        "comm.graph",
        order_faults,
        "sender and receiver must agree on per-channel delivery order",
    );

    byte_check(graph, &mut diags);
    diags
}

/// Event lookup by flat node id.
fn ev_at<'g>(graph: &'g CommGraph, base: &[usize], id: usize) -> &'g CommEvent {
    let r = base.partition_point(|&b| b <= id) - 1;
    &graph.events[r][id - base[r]]
}

/// Cross-checks the event-sum of metered sends against the closed-form
/// per-rank counters (`AC0604`).
fn byte_check(graph: &CommGraph, diags: &mut Vec<Diagnostic>) {
    let mut faults = Vec::new();
    for (r, (events, exp)) in graph.events.iter().zip(&graph.expected).enumerate() {
        let metered = |pred: &dyn Fn(&CommEvent) -> bool| -> usize {
            events
                .iter()
                .filter(|e| e.dir == Dir::Send && pred(e))
                .filter_map(|e| e.bytes)
                .sum()
        };
        let ring_sum = metered(&|e| e.channel.is_ring());
        if ring_sum != exp.ring_wire {
            faults.push(format!(
                "rank {r}: ring send events carry {ring_sum} wire bytes but the \
                 ring_bytes counter accounts {}",
                exp.ring_wire
            ));
        }
        let boundary_sum = metered(&|e| matches!(e.channel, ChannelId::BoundaryFwd { .. }));
        if boundary_sum != exp.boundary_wire {
            faults.push(format!(
                "rank {r}: boundary send events carry {boundary_sum} wire bytes but the \
                 boundary counter accounts {}",
                exp.boundary_wire
            ));
        }
    }
    capped(
        diags,
        codes::COMM_BYTE_MISMATCH,
        "comm.graph",
        faults,
        "the per-event wire bytes and the closed-form counters must agree",
    );
}

/// The comm-protocol pass entry point: builds the graph when the
/// config selects the threaded engine and analyzes it. Configs the
/// graph cannot model (no threads backend, or defects the earlier
/// passes already diagnose) return an empty vector.
pub fn check_comm_protocol(cfg: &ExperimentConfig) -> Vec<Diagnostic> {
    build_comm_graph(cfg)
        .map(|g| analyze(&g))
        .unwrap_or_default()
}

/// Replays a recorded per-rank runtime trace against the static graph
/// (`AC0605`). Per-rank consumption order in the engine is fully
/// deterministic, so conformance is exact sequence equality rank by
/// rank.
pub fn audit_trace(graph: &CommGraph, trace: &[Vec<TraceEvent>]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let world = graph.world();
    if trace.len() != world {
        diags.push(
            Diagnostic::error(
                codes::COMM_TRACE_NONCONFORMANT,
                "comm.trace",
                format!(
                    "trace covers {} rank(s) but the graph has {world}",
                    trace.len()
                ),
            )
            .with_help("record one event stream per rank, indexed by global rank id"),
        );
        return diags;
    }
    let mut faults = Vec::new();
    for (r, (expected, got)) in graph.events.iter().zip(trace).enumerate() {
        let div = expected
            .iter()
            .zip(got.iter())
            .position(|(e, g)| e.to_trace() != *g);
        match div {
            Some(i) => faults.push(format!(
                "rank {r} diverges at event {i}: static graph expects `{}`, trace \
                 records `{}`",
                expected[i].to_trace(),
                got[i],
            )),
            None => {
                if expected.len() != got.len() {
                    faults.push(format!(
                        "rank {r} trace has {} event(s) but the static graph expects {}",
                        got.len(),
                        expected.len(),
                    ));
                }
            }
        }
    }
    capped(
        &mut diags,
        codes::COMM_TRACE_NONCONFORMANT,
        "comm.trace",
        faults,
        "the engine must perform exactly the events the static graph predicts",
    );
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeSection;

    /// Tiny model so codec sizing stays cheap: 4 layers, hidden 16,
    /// 8 tokens per step.
    fn tiny_cfg(
        tp: usize,
        pp: usize,
        spec: &str,
        m: usize,
        chunk_rows: Option<usize>,
        depth: usize,
    ) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.model.layers = 4;
        cfg.model.hidden = 16;
        cfg.model.heads = 4;
        cfg.model.ff_hidden = 32;
        cfg.model.vocab = 32;
        cfg.model.max_seq = 8;
        cfg.parallelism.tp = tp;
        cfg.parallelism.pp = pp;
        cfg.batch.micro_batch = 2;
        cfg.batch.seq = 4;
        cfg.batch.num_micro_batches = 1;
        cfg.plan.spec = spec.to_string();
        let mut rt = RuntimeSection::threads_default();
        rt.threads = None;
        rt.micro_batches = Some(m);
        rt.chunk_rows = chunk_rows;
        rt.pipeline_depth = Some(depth);
        cfg.runtime = Some(rt);
        cfg
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn determinism_grid_is_proved_deadlock_free() {
        // The tp x pp x chunk x depth x codec x micro-batch grid the
        // runtime determinism suite exercises: every point must come
        // back with a clean proof (matching, deadlock-freedom, FIFO
        // safety, byte consistency).
        for tp in [1, 2, 4] {
            for pp in [1, 2] {
                for chunk in [None, Some(1), Some(3)] {
                    for depth in [1, 2, 4] {
                        for spec in ["w/o", "T2"] {
                            for m in [1, 2] {
                                let cfg = tiny_cfg(tp, pp, spec, m, chunk, depth);
                                let graph = build_comm_graph(&cfg)
                                    .expect("threads-backend config must build a graph");
                                let diags = analyze(&graph);
                                assert!(
                                    diags.is_empty(),
                                    "tp={tp} pp={pp} chunk={chunk:?} depth={depth} \
                                     spec={spec} m={m}: {diags:#?}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn graph_shape_is_sane() {
        let graph = build_comm_graph(&tiny_cfg(2, 2, "w/o", 2, None, 4)).expect("graph builds");
        assert_eq!(graph.world(), 4);
        assert_eq!(graph.events.len(), 4);
        assert_eq!(graph.expected.len(), 4);
        // Sends and receives balance globally and per channel.
        let mut per_chan: BTreeMap<ChannelId, (usize, usize)> = BTreeMap::new();
        for e in graph.events.iter().flatten() {
            let entry = per_chan.entry(e.channel).or_default();
            match e.dir {
                Dir::Send => entry.0 += 1,
                Dir::Recv => entry.1 += 1,
            }
        }
        for (ch, (s, r)) in &per_chan {
            assert_eq!(s, r, "unbalanced channel {ch}");
        }
        assert_eq!(per_chan.len(), graph.channel_count());
        assert_eq!(graph.message_count() * 2, graph.event_count());
        // A solo world has no communication at all.
        let solo = build_comm_graph(&tiny_cfg(1, 1, "w/o", 1, None, 4)).expect("solo graph");
        assert_eq!(solo.event_count(), 0);
        assert!(analyze(&solo).is_empty());
    }

    #[test]
    fn non_threads_configs_build_no_graph() {
        // No runtime section at all.
        assert!(build_comm_graph(&ExperimentConfig::paper_default()).is_none());
        // Serial backend.
        let mut cfg = tiny_cfg(2, 1, "w/o", 1, None, 4);
        if let Some(rt) = cfg.runtime.as_mut() {
            rt.backend = "serial".to_string();
        }
        assert!(build_comm_graph(&cfg).is_none());
        assert!(check_comm_protocol(&cfg).is_empty());
        // Degenerate tuning is left to the AC05xx pass.
        let mut cfg = tiny_cfg(2, 1, "w/o", 1, Some(0), 4);
        cfg.runtime.as_mut().expect("runtime").chunk_rows = Some(0);
        assert!(build_comm_graph(&cfg).is_none());
    }

    #[test]
    fn error_feedback_collapses_reduce_chunking() {
        // A2 is summable + chunkable: forward reduces ride multi-chunk
        // rings. Error feedback wraps the codec and disables chunking,
        // so every forward reduce becomes a single-chunk ring.
        // Cover every layer so no Identity (chunkable either way)
        // reduces dilute the signal.
        let mut cfg = tiny_cfg(2, 1, "A2", 1, None, 4);
        cfg.plan.start_layer = Some(0);
        cfg.plan.num_layers = Some(4);
        let chunky = build_comm_graph(&cfg).expect("graph");
        let has_high_idx = |g: &CommGraph| {
            g.events.iter().flatten().any(|e| {
                matches!(e.phase, Phase::Forward { .. })
                    && matches!(e.msg, MsgId::Chunk { idx, .. } if idx > 0)
            })
        };
        assert!(has_high_idx(&chunky), "A2 forward reduces should chunk");
        cfg.plan.error_feedback = true;
        let single = build_comm_graph(&cfg).expect("graph");
        assert!(!has_high_idx(&single), "EF-wrapped A2 must not chunk");
        assert!(analyze(&single).is_empty());
    }

    fn event(dir: Dir, channel: ChannelId, msg: MsgId, bytes: Option<usize>) -> CommEvent {
        CommEvent {
            dir,
            channel,
            msg,
            bytes,
            phase: Phase::Forward { mb: 0 },
        }
    }

    fn two_rank_graph(r0: Vec<CommEvent>, r1: Vec<CommEvent>) -> CommGraph {
        CommGraph {
            tp: 2,
            pp: 1,
            micro_batches: 1,
            events: vec![r0, r1],
            expected: vec![ExpectedCounters::default(); 2],
        }
    }

    #[test]
    fn orphan_and_starved_events_are_reported() {
        let link0 = ChannelId::Ring { stage: 0, link: 0 };
        let chunk = MsgId::Chunk {
            coll: 0,
            bcast: false,
            idx: 0,
        };
        let mut g = two_rank_graph(vec![event(Dir::Send, link0, chunk, Some(4))], vec![]);
        g.expected[0].ring_wire = 4; // keep AC0604 out of the picture
        assert_eq!(codes_of(&analyze(&g)), vec![codes::COMM_ORPHAN_SEND]);

        let g = two_rank_graph(vec![], vec![event(Dir::Recv, link0, chunk, None)]);
        assert_eq!(codes_of(&analyze(&g)), vec![codes::COMM_STARVED_RECV]);
    }

    #[test]
    fn crossed_waits_are_reported_as_deadlock() {
        // rank 0 waits for a chunk from rank 1 before sending its own,
        // and vice versa: the canonical circular wait.
        let link0 = ChannelId::Ring { stage: 0, link: 0 }; // 0 -> 1
        let link1 = ChannelId::Ring { stage: 0, link: 1 }; // 1 -> 0
        let a = MsgId::Chunk {
            coll: 0,
            bcast: false,
            idx: 0,
        };
        let b = MsgId::Chunk {
            coll: 0,
            bcast: false,
            idx: 1,
        };
        let g = two_rank_graph(
            vec![
                event(Dir::Recv, link1, a, None),
                event(Dir::Send, link0, b, None),
            ],
            vec![
                event(Dir::Recv, link0, b, None),
                event(Dir::Send, link1, a, None),
            ],
        );
        let diags = analyze(&g);
        assert_eq!(codes_of(&diags), vec![codes::COMM_DEADLOCK_CYCLE]);
        assert!(diags[0].message.contains("rank 0"));
        assert!(diags[0].message.contains("rank 1"));
    }

    #[test]
    fn duplicate_identities_are_reported() {
        let link0 = ChannelId::Ring { stage: 0, link: 0 };
        let chunk = MsgId::Chunk {
            coll: 0,
            bcast: false,
            idx: 0,
        };
        let g = two_rank_graph(
            vec![
                event(Dir::Send, link0, chunk, None),
                event(Dir::Send, link0, chunk, None),
            ],
            vec![
                event(Dir::Recv, link0, chunk, None),
                event(Dir::Recv, link0, chunk, None),
            ],
        );
        assert_eq!(codes_of(&analyze(&g)), vec![codes::COMM_AMBIGUOUS_MESSAGE]);
    }

    #[test]
    fn fifo_order_mismatch_is_reported() {
        // Boundary channels are consumed strictly FIFO: consuming the
        // two micro-batch activations in swapped order is a protocol
        // violation even though every message matches.
        let ch = ChannelId::BoundaryFwd { boundary: 0 };
        let a0 = MsgId::Activation { mb: 0 };
        let a1 = MsgId::Activation { mb: 1 };
        let g = CommGraph {
            tp: 1,
            pp: 2,
            micro_batches: 2,
            events: vec![
                vec![
                    event(Dir::Send, ch, a0, None),
                    event(Dir::Send, ch, a1, None),
                ],
                vec![
                    event(Dir::Recv, ch, a1, None),
                    event(Dir::Recv, ch, a0, None),
                ],
            ],
            expected: vec![ExpectedCounters::default(); 2],
        };
        let diags = analyze(&g);
        assert!(
            codes_of(&diags).contains(&codes::COMM_AMBIGUOUS_MESSAGE),
            "{diags:#?}"
        );
    }

    #[test]
    fn tampered_counters_are_reported() {
        let mut graph = build_comm_graph(&tiny_cfg(2, 1, "T2", 1, None, 4)).expect("graph");
        assert!(analyze(&graph).is_empty());
        graph.expected[0].ring_wire += 1;
        assert_eq!(codes_of(&analyze(&graph)), vec![codes::COMM_BYTE_MISMATCH]);
    }

    #[test]
    fn conforming_traces_audit_clean() {
        let graph = build_comm_graph(&tiny_cfg(2, 2, "T2", 2, Some(3), 2)).expect("graph");
        let trace: Vec<Vec<TraceEvent>> = graph
            .events
            .iter()
            .map(|evs| evs.iter().map(|e| e.to_trace()).collect())
            .collect();
        assert!(audit_trace(&graph, &trace).is_empty());
    }

    #[test]
    fn deviant_traces_are_reported() {
        let graph = build_comm_graph(&tiny_cfg(2, 1, "w/o", 1, None, 4)).expect("graph");
        let mut trace: Vec<Vec<TraceEvent>> = graph
            .events
            .iter()
            .map(|evs| evs.iter().map(|e| e.to_trace()).collect())
            .collect();
        // Wrong world size.
        let short = trace[..1].to_vec();
        assert_eq!(
            codes_of(&audit_trace(&graph, &short)),
            vec![codes::COMM_TRACE_NONCONFORMANT]
        );
        // A dropped event.
        let cut = trace[0].len() - 1;
        let dropped = trace[0].split_off(cut);
        assert!(!dropped.is_empty());
        let diags = audit_trace(&graph, &trace);
        assert_eq!(codes_of(&diags), vec![codes::COMM_TRACE_NONCONFORMANT]);
        assert!(diags[0].message.contains("rank 0"));
    }

    #[test]
    fn trace_roundtrips_through_json() {
        let graph = build_comm_graph(&tiny_cfg(2, 1, "w/o", 1, None, 4)).expect("graph");
        let trace: Vec<Vec<TraceEvent>> = graph
            .events
            .iter()
            .map(|evs| evs.iter().map(|e| e.to_trace()).collect())
            .collect();
        let json = serde_json::to_string(&trace).expect("serialize");
        let back: Vec<Vec<TraceEvent>> = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(trace, back);
        assert!(audit_trace(&graph, &back).is_empty());
    }
}
