//! Plan placement checks: spec resolution, window bounds, wire-math
//! consistency, and error-feedback applicability (`AC0101`–`AC0105`).
//!
//! The compression ratio a config *claims* (Table 1 copies it around) is
//! cross-checked against the actual arithmetic: a boundary activation is
//! `n = b·s·h` fp16 elements (`2n` dense bytes), an AE sends
//! `(n/h)·c` fp16 codes, a sparsifier sends `k` six-byte (value, index)
//! pairs, a quantizer sends `n·bits/8` packed codes plus its scale/zero
//! header — the `SPARSE_ELEM_BYTES`/`DENSE_ELEM_BYTES` wire model the
//! simulator and the real codecs share.

use crate::codes;
use crate::config::ExperimentConfig;
use crate::diagnostics::{Diagnostic, Diagnostics};
use actcomp_compress::spec::{CompressorSpec, Family, DENSE_ELEM_BYTES, SPARSE_ELEM_BYTES};

/// Relative tolerance when comparing a claimed ratio against the wire
/// math: generous enough for Table 1's two-significant-figure rounding,
/// tight enough to catch a ratio copied from the wrong row.
pub const RATIO_TOLERANCE: f64 = 0.05;

/// Wire bytes the configured plan actually sends for one boundary
/// activation, honouring a `code_dim` override for AE-family specs.
/// `None` when the spec label does not resolve.
pub fn configured_wire_bytes(cfg: &ExperimentConfig) -> Option<usize> {
    let spec = cfg.resolve_spec()?;
    let m = &cfg.model;
    let n = cfg.batch.micro_batch * cfg.batch.seq * m.hidden;
    Some(match (spec.family(), cfg.plan.code_dim) {
        (Family::AutoEncoder, Some(c)) if c > 0 => n / m.hidden * c * DENSE_ELEM_BYTES,
        _ => spec.wire_bytes(n, m.hidden),
    })
}

/// The compression ratio the configured plan actually achieves
/// (dense bytes over wire bytes). `None` when the spec is unresolvable
/// or the wire model degenerates (zero bytes).
pub fn configured_ratio(cfg: &ExperimentConfig) -> Option<f64> {
    let wire = configured_wire_bytes(cfg)?;
    if wire == 0 {
        return None;
    }
    let n = cfg.batch.micro_batch * cfg.batch.seq * cfg.model.hidden;
    Some((n * DENSE_ELEM_BYTES) as f64 / wire as f64)
}

/// The plan pass.
pub fn check_plan(cfg: &ExperimentConfig, diags: &mut Diagnostics) {
    let Some(spec) = cfg.resolve_spec() else {
        let labels: Vec<&str> = CompressorSpec::all().iter().map(|s| s.label()).collect();
        diags.push(
            Diagnostic::error(
                codes::UNRESOLVABLE_SPEC,
                "plan.spec",
                format!(
                    "`{}` does not name a Table 1 compressor spec",
                    cfg.plan.spec
                ),
            )
            .with_help(format!("known specs: {}", labels.join(", "))),
        );
        // Every remaining plan check needs a resolved spec.
        return;
    };

    // --- window bounds (AC0101 / AC0105) -----------------------------
    let layers = cfg.model.layers;
    let (start, num) = cfg.resolved_window();
    if spec != CompressorSpec::Baseline {
        if start >= layers || start + num > layers {
            diags.push(
                Diagnostic::error(
                    codes::PLAN_WINDOW_OUT_OF_BOUNDS,
                    "plan.start_layer",
                    format!(
                        "compression window [{start}, {}) reaches past the last layer \
                         (model has {layers})",
                        start + num
                    ),
                )
                .with_help(format!(
                    "the window must satisfy start + num_layers <= {layers}; \
                     the paper compresses the last half: start_layer = {}, num_layers = {}",
                    layers - layers / 2,
                    layers / 2
                )),
            );
        } else if num == 0 {
            diags.push(
                Diagnostic::warning(
                    codes::PLAN_COVERS_NOTHING,
                    "plan.num_layers",
                    format!("spec {} is active but compresses zero layers", spec.label()),
                )
                .with_help("set num_layers > 0, or use spec `w/o` to disable compression"),
            );
        }
    }

    // --- claimed ratio vs wire math (AC0103) --------------------------
    if let Some(claimed) = cfg.plan.claimed_ratio {
        match configured_ratio(cfg) {
            _ if claimed <= 0.0 => {
                diags.push(
                    Diagnostic::error(
                        codes::RATIO_MISMATCH,
                        "plan.claimed_ratio",
                        format!("claimed compression ratio {claimed} is not positive"),
                    )
                    .with_help("ratios are dense bytes over wire bytes, so >= 1 in practice"),
                );
            }
            Some(actual) if (claimed - actual).abs() / actual > RATIO_TOLERANCE => {
                let n = cfg.batch.micro_batch * cfg.batch.seq * cfg.model.hidden;
                let wire = configured_wire_bytes(cfg).unwrap_or(0);
                diags.push(
                    Diagnostic::error(
                        codes::RATIO_MISMATCH,
                        "plan.claimed_ratio",
                        format!(
                            "claimed ratio {claimed:.2} disagrees with the wire math: \
                             {} sends {wire} bytes for a {}-byte dense activation \
                             (ratio {actual:.2})",
                            spec.label(),
                            n * DENSE_ELEM_BYTES
                        ),
                    )
                    .with_help(format!(
                        "sparse elements cost {SPARSE_ELEM_BYTES} bytes and dense fp16 \
                         elements {DENSE_ELEM_BYTES}; update claimed_ratio to {actual:.2} \
                         or drop the field"
                    )),
                );
            }
            _ => {}
        }
    }

    // --- error feedback needs a biased compressor (AC0104) ------------
    if cfg.plan.error_feedback {
        match spec.family() {
            Family::None => {
                diags.push(
                    Diagnostic::error(
                        codes::ERROR_FEEDBACK_ON_UNBIASED,
                        "plan.error_feedback",
                        "error feedback is enabled but no compressor is configured".to_string(),
                    )
                    .with_help(
                        "error feedback accumulates a compressor's residual; \
                                `w/o` has none",
                    ),
                );
            }
            Family::RandomK => {
                diags.push(
                    Diagnostic::error(
                        codes::ERROR_FEEDBACK_ON_UNBIASED,
                        "plan.error_feedback",
                        format!(
                            "error feedback is enabled for {}, but Random-K is unbiased",
                            spec.label()
                        ),
                    )
                    .with_help(
                        "error feedback corrects systematic bias; applying it to an \
                         unbiased sparsifier reintroduces correlation across steps \
                         — use a Top-K or AE spec instead",
                    ),
                );
            }
            Family::AutoEncoder | Family::TopK | Family::Quantization => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cfg: &ExperimentConfig) -> Vec<Diagnostic> {
        let mut diags = Diagnostics::new();
        check_plan(cfg, &mut diags);
        diags.into_vec()
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn paper_default_is_clean() {
        assert!(run(&ExperimentConfig::paper_default()).is_empty());
    }

    #[test]
    fn rejects_unknown_spec() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.plan.spec = "Z9".to_string();
        let diags = run(&cfg);
        assert_eq!(codes_of(&diags), vec![codes::UNRESOLVABLE_SPEC]);
        assert!(diags[0].help.as_deref().unwrap().contains("A1"));
    }

    #[test]
    fn rejects_out_of_bounds_window() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.plan.start_layer = Some(20);
        cfg.plan.num_layers = Some(8);
        assert_eq!(codes_of(&run(&cfg)), vec![codes::PLAN_WINDOW_OUT_OF_BOUNDS]);
    }

    #[test]
    fn empty_window_is_warning() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.plan.start_layer = Some(12);
        cfg.plan.num_layers = Some(0);
        let diags = run(&cfg);
        assert_eq!(codes_of(&diags), vec![codes::PLAN_COVERS_NOTHING]);
        assert_eq!(diags[0].severity, crate::diagnostics::Severity::Warning);
    }

    #[test]
    fn accepts_table1_ratio_and_rejects_wrong_row() {
        // A1 at h=1024 sends n/1024·50 fp16 codes: ratio 1024/50 = 20.48.
        let mut cfg = ExperimentConfig::paper_default();
        cfg.plan.claimed_ratio = Some(20.48);
        assert!(run(&cfg).is_empty());
        // A2's ratio (10.24) claimed for an A1 plan is a wrong-row copy.
        cfg.plan.claimed_ratio = Some(10.24);
        assert_eq!(codes_of(&run(&cfg)), vec![codes::RATIO_MISMATCH]);
    }

    #[test]
    fn ratio_math_per_family() {
        let n = |cfg: &ExperimentConfig| cfg.batch.micro_batch * cfg.batch.seq * cfg.model.hidden;
        // Ratio-matched sparsifier T3: k = n·50/1024, 6 bytes each.
        let mut cfg = ExperimentConfig::paper_default();
        cfg.plan.spec = "T3".to_string();
        let k = n(&cfg) * 50 / 1024;
        assert_eq!(configured_wire_bytes(&cfg).unwrap(), k * SPARSE_ELEM_BYTES);
        // Quantizer Q2: 4 bits/elem + 8-byte header.
        cfg.plan.spec = "Q2".to_string();
        assert_eq!(configured_wire_bytes(&cfg).unwrap(), n(&cfg) / 2 + 8);
        // AE code-dim override changes the wire bytes proportionally.
        cfg.plan.spec = "A1".to_string();
        cfg.plan.code_dim = Some(100);
        assert_eq!(
            configured_wire_bytes(&cfg).unwrap(),
            n(&cfg) / 1024 * 100 * DENSE_ELEM_BYTES
        );
    }

    #[test]
    fn rejects_error_feedback_on_unbiased() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.plan.error_feedback = true;
        // Biased compressors accept EF.
        assert!(run(&cfg).is_empty());
        cfg.plan.spec = "R1".to_string();
        assert_eq!(
            codes_of(&run(&cfg)),
            vec![codes::ERROR_FEEDBACK_ON_UNBIASED]
        );
        cfg.plan.spec = "w/o".to_string();
        assert_eq!(
            codes_of(&run(&cfg)),
            vec![codes::ERROR_FEEDBACK_ON_UNBIASED]
        );
    }
}
