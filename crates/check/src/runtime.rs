//! Execution-backend checks (`AC0301`–`AC0304`).
//!
//! The threaded engine (`actcomp-runtime`) has its own structural
//! invariants on top of the shape/plan/schedule algebra: the backend
//! label must resolve, the thread count must equal the model-parallel
//! world size `tp * pp` (one OS thread per rank), the engine's
//! micro-batch count must divide the batch it slices, and any explicit
//! rank placement must be a bijection so every rank runs exactly once.
//! All of these die as mid-run panics (or deadlocks) in the engine; the
//! checker turns them into diagnostics first.

use crate::codes;
use crate::config::ExperimentConfig;
use crate::diagnostics::{Diagnostic, Diagnostics};

/// Backend labels the `run` entry point accepts.
pub const KNOWN_BACKENDS: [&str; 2] = ["threads", "serial"];

/// True when the config selects the threaded rank engine — the only
/// backend the comm-protocol analyzer models.
pub fn uses_threads_backend(cfg: &ExperimentConfig) -> bool {
    cfg.runtime
        .as_ref()
        .is_some_and(|rt| rt.backend == "threads")
}

/// The execution-runtime pass. A config without a `runtime` section is
/// vacuously clean — it runs on the serial executor.
pub fn check_runtime(cfg: &ExperimentConfig, diags: &mut Diagnostics) {
    let Some(rt) = &cfg.runtime else {
        return;
    };
    let tp = cfg.parallelism.tp;
    let pp = cfg.parallelism.pp;
    let world = tp * pp;

    // --- backend label (AC0301) ----------------------------------------
    if !KNOWN_BACKENDS.contains(&rt.backend.as_str()) {
        diags.push(
            Diagnostic::error(
                codes::UNKNOWN_BACKEND,
                "runtime.backend",
                format!("unknown execution backend `{}`", rt.backend),
            )
            .with_help("known backends: threads, serial"),
        );
    }

    // --- thread count (AC0302) -----------------------------------------
    // The threaded engine spawns exactly one OS thread per rank, so an
    // explicit count must match the world size. The serial backend runs
    // everything on one thread; a mismatched count there is equally a
    // config error (the field means "rank threads", not a thread pool).
    if let Some(threads) = rt.threads {
        if world > 0 && threads != world {
            diags.push(
                Diagnostic::error(
                    codes::THREADS_NOT_WORLD,
                    "runtime.threads",
                    format!(
                        "runtime.threads = {threads} but tp={tp} x pp={pp} \
                         needs exactly {world} rank threads"
                    ),
                )
                .with_help("omit runtime.threads to infer it from the degrees"),
            );
        }
    }

    // --- micro-batch divisibility (AC0303) -----------------------------
    let m = rt.micro_batches();
    let batch = cfg.batch.micro_batch;
    if m == 0 {
        diags.push(
            Diagnostic::error(
                codes::MICROBATCH_NOT_DIVIDING_BATCH,
                "runtime.micro_batches",
                "runtime.micro_batches is zero; the engine cannot slice the batch".to_string(),
            )
            .with_help("use at least 1 micro-batch per engine step"),
        );
    } else if batch > 0 && !batch.is_multiple_of(m) {
        diags.push(
            Diagnostic::error(
                codes::MICROBATCH_NOT_DIVIDING_BATCH,
                "runtime.micro_batches",
                format!(
                    "runtime.micro_batches = {m} does not divide the batch of \
                     {batch} sequences; micro-batches would be ragged"
                ),
            )
            .with_help(format!(
                "pick a divisor of batch.micro_batch = {batch} (the engine \
                 slices the batch into equal row blocks)"
            )),
        );
    }

    // --- rank map bijection (AC0304) -----------------------------------
    if let Some(map) = &rt.rank_map {
        if world == 0 {
            return; // zero degrees already carry AC0006 from the shape pass
        }
        if map.len() != world {
            diags.push(
                Diagnostic::error(
                    codes::RANK_MAP_NOT_BIJECTION,
                    "runtime.rank_map",
                    format!(
                        "rank_map has {} entries but the world holds {world} ranks",
                        map.len()
                    ),
                )
                .with_help("provide exactly one placement per rank in 0..tp*pp"),
            );
            return;
        }
        let mut seen = vec![false; world];
        for (rank, &slot) in map.iter().enumerate() {
            if slot >= world {
                diags.push(
                    Diagnostic::error(
                        codes::RANK_MAP_NOT_BIJECTION,
                        "runtime.rank_map",
                        format!("rank {rank} maps to slot {slot}, outside 0..{world}"),
                    )
                    .with_help("every slot must name a rank in 0..tp*pp"),
                );
            } else if seen[slot] {
                diags.push(
                    Diagnostic::error(
                        codes::RANK_MAP_NOT_BIJECTION,
                        "runtime.rank_map",
                        format!(
                            "slot {slot} is assigned twice (second time by rank {rank}); \
                             some rank would never run"
                        ),
                    )
                    .with_help("the map must be a permutation of 0..tp*pp"),
                );
            } else {
                seen[slot] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeSection;

    fn run(cfg: &ExperimentConfig) -> Vec<Diagnostic> {
        let mut diags = Diagnostics::new();
        check_runtime(cfg, &mut diags);
        diags.into_vec()
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    fn with_runtime(rt: RuntimeSection) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.runtime = Some(rt);
        cfg
    }

    #[test]
    fn absent_section_is_vacuously_clean() {
        assert!(run(&ExperimentConfig::paper_default()).is_empty());
    }

    #[test]
    fn threads_default_is_clean() {
        assert!(run(&with_runtime(RuntimeSection::threads_default())).is_empty());
    }

    #[test]
    fn explicit_matching_config_is_clean() {
        // paper_default is tp=2 pp=2: 4 ranks, batch 32.
        let mut rt = RuntimeSection::threads_default();
        rt.threads = Some(4);
        rt.micro_batches = Some(8);
        rt.rank_map = Some(vec![3, 2, 1, 0]);
        assert!(run(&with_runtime(rt)).is_empty());
    }

    #[test]
    fn rejects_unknown_backend() {
        let mut rt = RuntimeSection::threads_default();
        rt.backend = "cuda_graphs".to_string();
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::UNKNOWN_BACKEND]
        );
    }

    #[test]
    fn rejects_thread_count_mismatch() {
        let mut rt = RuntimeSection::threads_default();
        rt.threads = Some(3); // world is 4
        let diags = run(&with_runtime(rt));
        assert_eq!(codes_of(&diags), vec![codes::THREADS_NOT_WORLD]);
        assert!(diags[0].message.contains("exactly 4 rank threads"));
    }

    #[test]
    fn rejects_non_dividing_micro_batches() {
        let mut rt = RuntimeSection::threads_default();
        rt.micro_batches = Some(5); // batch.micro_batch is 32
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::MICROBATCH_NOT_DIVIDING_BATCH]
        );

        let mut rt = RuntimeSection::threads_default();
        rt.micro_batches = Some(0);
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::MICROBATCH_NOT_DIVIDING_BATCH]
        );
    }

    #[test]
    fn rejects_broken_rank_maps() {
        // Wrong length.
        let mut rt = RuntimeSection::threads_default();
        rt.rank_map = Some(vec![0, 1, 2]);
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::RANK_MAP_NOT_BIJECTION]
        );

        // Out-of-range slot.
        let mut rt = RuntimeSection::threads_default();
        rt.rank_map = Some(vec![0, 1, 2, 4]);
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::RANK_MAP_NOT_BIJECTION]
        );

        // Duplicate slot: two findings (the dup and the orphan slot are
        // one violation; every duplicate is reported).
        let mut rt = RuntimeSection::threads_default();
        rt.rank_map = Some(vec![0, 1, 1, 0]);
        let diags = run(&with_runtime(rt));
        assert_eq!(diags.len(), 2);
        assert!(codes_of(&diags)
            .iter()
            .all(|c| *c == codes::RANK_MAP_NOT_BIJECTION));
    }

    #[test]
    fn multiple_violations_all_reported() {
        let mut rt = RuntimeSection::threads_default();
        rt.backend = "mpi".to_string();
        rt.threads = Some(16);
        rt.micro_batches = Some(3);
        let diags = run(&with_runtime(rt));
        assert_eq!(
            codes_of(&diags),
            vec![
                codes::UNKNOWN_BACKEND,
                codes::THREADS_NOT_WORLD,
                codes::MICROBATCH_NOT_DIVIDING_BATCH,
            ]
        );
    }
}
