//! Execution-backend checks (`AC0301`–`AC0304`), multi-process
//! transport checks (`AC0701`–`AC0706`), fault-injection / recovery
//! checks (`AC0801`–`AC0805`), and serving / wire-precision checks
//! (`AC1001`–`AC1003`).
//!
//! The threaded engine (`actcomp-runtime`) has its own structural
//! invariants on top of the shape/plan/schedule algebra: the backend
//! label must resolve, the thread count must equal the model-parallel
//! world size `tp * pp` (one OS thread per rank), the engine's
//! micro-batch count must divide the batch it slices, and any explicit
//! rank placement must be a bijection so every rank runs exactly once.
//! The `procs` backend adds a transport layer with its own failure
//! modes: an unknown or in-process-only wire, a bandwidth throttle on a
//! wire that has no NIC, colliding listen addresses, tracing across
//! process boundaries, a world size that disagrees with the degrees.
//! All of these die as mid-run panics (or connect/handshake errors) in
//! the engine; the checker turns them into diagnostics first.

use crate::codes;
use crate::config::{ExperimentConfig, RuntimeSection};
use crate::diagnostics::{Diagnostic, Diagnostics};

/// Backend labels the `run` entry point accepts.
pub const KNOWN_BACKENDS: [&str; 3] = ["threads", "serial", "procs"];

/// Transport labels the net layer accepts.
pub const KNOWN_TRANSPORTS: [&str; 3] = ["mpsc", "uds", "tcp"];

/// True when the config selects the threaded rank engine — the only
/// backend the comm-protocol analyzer models.
pub fn uses_threads_backend(cfg: &ExperimentConfig) -> bool {
    cfg.runtime
        .as_ref()
        .is_some_and(|rt| rt.backend == "threads")
}

/// The execution-runtime pass. A config without a `runtime` section is
/// vacuously clean — it runs on the serial executor.
pub fn check_runtime(cfg: &ExperimentConfig, diags: &mut Diagnostics) {
    let Some(rt) = &cfg.runtime else {
        return;
    };
    let tp = cfg.parallelism.tp;
    let pp = cfg.parallelism.pp;
    let world = tp * pp;

    // --- backend label (AC0301) ----------------------------------------
    if !KNOWN_BACKENDS.contains(&rt.backend.as_str()) {
        diags.push(
            Diagnostic::error(
                codes::UNKNOWN_BACKEND,
                "runtime.backend",
                format!("unknown execution backend `{}`", rt.backend),
            )
            .with_help("known backends: threads, serial, procs"),
        );
    }

    check_transport(cfg, rt, diags);
    check_fault(cfg, rt, diags);
    check_serve(rt, diags);

    // --- thread count (AC0302) -----------------------------------------
    // The threaded engine spawns exactly one OS thread per rank, so an
    // explicit count must match the world size. The serial backend runs
    // everything on one thread; a mismatched count there is equally a
    // config error (the field means "rank threads", not a thread pool).
    if let Some(threads) = rt.threads {
        if world > 0 && threads != world {
            diags.push(
                Diagnostic::error(
                    codes::THREADS_NOT_WORLD,
                    "runtime.threads",
                    format!(
                        "runtime.threads = {threads} but tp={tp} x pp={pp} \
                         needs exactly {world} rank threads"
                    ),
                )
                .with_help("omit runtime.threads to infer it from the degrees"),
            );
        }
    }

    // --- micro-batch divisibility (AC0303) -----------------------------
    let m = rt.micro_batches();
    let batch = cfg.batch.micro_batch;
    if m == 0 {
        diags.push(
            Diagnostic::error(
                codes::MICROBATCH_NOT_DIVIDING_BATCH,
                "runtime.micro_batches",
                "runtime.micro_batches is zero; the engine cannot slice the batch".to_string(),
            )
            .with_help("use at least 1 micro-batch per engine step"),
        );
    } else if batch > 0 && !batch.is_multiple_of(m) {
        diags.push(
            Diagnostic::error(
                codes::MICROBATCH_NOT_DIVIDING_BATCH,
                "runtime.micro_batches",
                format!(
                    "runtime.micro_batches = {m} does not divide the batch of \
                     {batch} sequences; micro-batches would be ragged"
                ),
            )
            .with_help(format!(
                "pick a divisor of batch.micro_batch = {batch} (the engine \
                 slices the batch into equal row blocks)"
            )),
        );
    }

    // --- rank map bijection (AC0304) -----------------------------------
    if let Some(map) = &rt.rank_map {
        if world == 0 {
            return; // zero degrees already carry AC0006 from the shape pass
        }
        if map.len() != world {
            diags.push(
                Diagnostic::error(
                    codes::RANK_MAP_NOT_BIJECTION,
                    "runtime.rank_map",
                    format!(
                        "rank_map has {} entries but the world holds {world} ranks",
                        map.len()
                    ),
                )
                .with_help("provide exactly one placement per rank in 0..tp*pp"),
            );
            return;
        }
        let mut seen = vec![false; world];
        for (rank, &slot) in map.iter().enumerate() {
            if slot >= world {
                diags.push(
                    Diagnostic::error(
                        codes::RANK_MAP_NOT_BIJECTION,
                        "runtime.rank_map",
                        format!("rank {rank} maps to slot {slot}, outside 0..{world}"),
                    )
                    .with_help("every slot must name a rank in 0..tp*pp"),
                );
            } else if seen[slot] {
                diags.push(
                    Diagnostic::error(
                        codes::RANK_MAP_NOT_BIJECTION,
                        "runtime.rank_map",
                        format!(
                            "slot {slot} is assigned twice (second time by rank {rank}); \
                             some rank would never run"
                        ),
                    )
                    .with_help("the map must be a permutation of 0..tp*pp"),
                );
            } else {
                seen[slot] = true;
            }
        }
    }
}

/// The multi-process transport pass (`AC0701`–`AC0706`).
fn check_transport(cfg: &ExperimentConfig, rt: &RuntimeSection, diags: &mut Diagnostics) {
    let procs = rt.backend == "procs";
    let world = cfg.parallelism.tp * cfg.parallelism.pp;
    // The procs default wire; explicit labels override it below.
    let transport = rt.transport.as_deref().unwrap_or("uds");

    // --- transport label (AC0701) --------------------------------------
    if let Some(label) = &rt.transport {
        if !KNOWN_TRANSPORTS.contains(&label.as_str()) {
            diags.push(
                Diagnostic::error(
                    codes::TRANSPORT_UNKNOWN,
                    "runtime.transport",
                    format!("unknown transport `{label}`"),
                )
                .with_help("known transports: mpsc, uds, tcp"),
            );
        } else if procs && label == "mpsc" {
            diags.push(
                Diagnostic::error(
                    codes::TRANSPORT_UNKNOWN,
                    "runtime.transport",
                    "the mpsc transport is in-process and cannot connect separate worker \
                     processes"
                        .to_string(),
                )
                .with_help("use `uds` (same host) or `tcp` for the procs backend"),
            );
        }
    }

    // --- transport options on transport-less backends (AC0702) ---------
    if !procs {
        for (field, set) in [
            ("runtime.transport", rt.transport.is_some()),
            ("runtime.world_size", rt.world_size.is_some()),
            ("runtime.listen", rt.listen.is_some()),
        ] {
            if set {
                diags.push(
                    Diagnostic::error(
                        codes::TRANSPORT_WRONG_BACKEND,
                        field,
                        format!(
                            "{field} is set but backend `{}` opens no transport",
                            rt.backend
                        ),
                    )
                    .with_help("transport options belong to `backend = \"procs\"`"),
                );
            }
        }
    }

    // --- bandwidth throttle (AC0703) -----------------------------------
    if let Some(mbps) = rt.link_mbps {
        if !(mbps.is_finite() && mbps > 0.0) {
            diags.push(
                Diagnostic::error(
                    codes::THROTTLE_WITHOUT_TCP,
                    "runtime.link_mbps",
                    format!("link_mbps = {mbps} is not a positive finite bandwidth"),
                )
                .with_help("give the cap in Mbit/s, e.g. link_mbps = 1000.0"),
            );
        } else if !procs || transport != "tcp" {
            diags.push(
                Diagnostic::error(
                    codes::THROTTLE_WITHOUT_TCP,
                    "runtime.link_mbps",
                    format!(
                        "link_mbps models a NIC, but backend `{}` with transport `{transport}` \
                         never sends on one",
                        rt.backend
                    ),
                )
                .with_help("throttling requires `backend = \"procs\"` with `transport = \"tcp\"`"),
            );
        }
    }

    // --- listen-address collisions (AC0704) ----------------------------
    if let Some(listen) = &rt.listen {
        if procs && world > 0 && listen.len() != world {
            diags.push(
                Diagnostic::error(
                    codes::LISTEN_ADDR_COLLISION,
                    "runtime.listen",
                    format!(
                        "{} listen addresses for a world of {world} ranks",
                        listen.len()
                    ),
                )
                .with_help("give exactly one address per rank, or omit for ephemeral binds"),
            );
        }
        // A collision is the same (normalized) endpoint twice: for TCP
        // the same host:port, for UDS the same filesystem path.
        let mut seen: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for (rank, addr) in listen.iter().enumerate() {
            let key = addr.trim();
            if let Some(&first) = seen.get(key) {
                diags.push(
                    Diagnostic::error(
                        codes::LISTEN_ADDR_COLLISION,
                        "runtime.listen",
                        format!(
                            "ranks {first} and {rank} both listen on `{key}`; the second bind \
                             fails at startup"
                        ),
                    )
                    .with_help(match transport {
                        "tcp" => "every rank needs its own port",
                        _ => "every rank needs its own socket path",
                    }),
                );
            } else {
                seen.insert(key, rank);
            }
        }
    }

    // --- tracing across processes (AC0705) -----------------------------
    if procs && rt.trace == Some(true) {
        diags.push(
            Diagnostic::error(
                codes::PROCS_TRACE_UNSUPPORTED,
                "runtime.trace",
                "comm tracing needs in-process event cells; trace events cannot cross \
                 process boundaries"
                    .to_string(),
            )
            .with_help("audit with `backend = \"threads\"`; the protocol is identical"),
        );
    }

    // --- world size (AC0706) -------------------------------------------
    if let Some(ws) = rt.world_size {
        if procs && world > 0 && ws != world {
            diags.push(
                Diagnostic::error(
                    codes::PROCS_WORLD_MISMATCH,
                    "runtime.world_size",
                    format!(
                        "runtime.world_size = {ws} but tp={} x pp={} needs exactly {world} \
                         worker processes",
                        cfg.parallelism.tp, cfg.parallelism.pp
                    ),
                )
                .with_help("omit runtime.world_size to infer it from the degrees"),
            );
        }
    }
}

/// The fault-injection / recovery pass (`AC0801`–`AC0805`). Every field
/// it checks configures the `procs` launcher's fault-tolerance
/// machinery: injection specs, checkpoint cadence, restart budget, and
/// the detection timeouts. The engine validates the same things at
/// launch (a bad spec or zero interval is a typed `ProcsError`); the
/// checker surfaces them before any process spawns.
fn check_fault(cfg: &ExperimentConfig, rt: &RuntimeSection, diags: &mut Diagnostics) {
    let procs = rt.backend == "procs";
    let world = cfg.parallelism.tp * cfg.parallelism.pp;

    // --- fault/recovery options on in-process backends (AC0802) --------
    if !procs {
        for (field, set) in [
            ("runtime.fault", rt.fault.is_some()),
            ("runtime.checkpoint_every", rt.checkpoint_every.is_some()),
            ("runtime.checkpoint_dir", rt.checkpoint_dir.is_some()),
            ("runtime.max_restarts", rt.max_restarts.is_some()),
            ("runtime.step_timeout_s", rt.step_timeout_s.is_some()),
            (
                "runtime.rendezvous_timeout_s",
                rt.rendezvous_timeout_s.is_some(),
            ),
        ] {
            if set {
                diags.push(
                    Diagnostic::error(
                        codes::FAULT_WRONG_BACKEND,
                        field,
                        format!(
                            "{field} is set but backend `{}` has no worker processes to \
                             kill, time out, or respawn",
                            rt.backend
                        ),
                    )
                    .with_help("fault injection and recovery belong to `backend = \"procs\"`"),
                );
            }
        }
    }

    // --- fault spec grammar (AC0801) + kill target (AC0804) ------------
    if let Some(spec) = &rt.fault {
        match actcomp_net::FaultPlan::parse(spec) {
            Err(e) => {
                diags.push(
                    Diagnostic::error(
                        codes::FAULT_SPEC_INVALID,
                        "runtime.fault",
                        format!("fault spec `{spec}` does not parse: {e}"),
                    )
                    .with_help(
                        "grammar: kill:rank=R@step=K | drop|dup|corrupt|sever:frame=N[,rank=R] \
                         | delay:frame=N,ms=M | <kind>:p=P[,seed=S]",
                    ),
                );
            }
            Ok(plan) => {
                if let Some(kill) = plan.kill() {
                    if world > 0 && kill.rank >= world {
                        diags.push(
                            Diagnostic::error(
                                codes::FAULT_RANK_OUT_OF_WORLD,
                                "runtime.fault",
                                format!(
                                    "kill fault targets rank {} but the world holds ranks \
                                     0..{world}; it would never fire",
                                    kill.rank
                                ),
                            )
                            .with_help("target a rank inside 0..tp*pp"),
                        );
                    }
                }
            }
        }
    }

    // --- detection timeouts (AC0803) -----------------------------------
    for (field, val) in [
        ("runtime.step_timeout_s", rt.step_timeout_s),
        ("runtime.rendezvous_timeout_s", rt.rendezvous_timeout_s),
    ] {
        if let Some(secs) = val {
            if !(secs.is_finite() && secs > 0.0) {
                diags.push(
                    Diagnostic::error(
                        codes::TIMEOUT_INVALID,
                        field,
                        format!("{field} = {secs} is not a positive finite duration"),
                    )
                    .with_help("give the deadline in seconds, e.g. step_timeout_s = 60.0"),
                );
            }
        }
    }

    // --- checkpoint interval (AC0805) ----------------------------------
    if rt.checkpoint_every == Some(0) {
        diags.push(
            Diagnostic::error(
                codes::CHECKPOINT_INTERVAL_INVALID,
                "runtime.checkpoint_every",
                "checkpoint_every is zero; checkpoints must be at least one step apart".to_string(),
            )
            .with_help("use checkpoint_every >= 1, or omit it to disable checkpointing"),
        );
    }
}

/// The serving / wire-precision pass (`AC1001`–`AC1003`). `actcomp
/// serve` keeps rank workers resident behind an admission queue; its
/// knobs only make sense on backends that *have* resident workers, and
/// an empty batch ceiling would stall the dispatcher before the first
/// request.
fn check_serve(rt: &RuntimeSection, diags: &mut Diagnostics) {
    // --- batch ceiling (AC1001) ----------------------------------------
    if rt.max_batch == Some(0) {
        diags.push(
            Diagnostic::error(
                codes::SERVE_BATCH_INVALID,
                "runtime.max_batch",
                "max_batch is zero; the serving dispatcher cannot build empty engine batches"
                    .to_string(),
            )
            .with_help("use max_batch >= 1 (1 disables coalescing, serving one request per batch)"),
        );
    }

    // --- serving options on the serial backend (AC1002) ----------------
    if rt.backend == "serial" {
        for (field, set) in [
            ("runtime.max_batch", rt.max_batch.is_some()),
            ("runtime.batch_window_us", rt.batch_window_us.is_some()),
        ] {
            if set {
                diags.push(
                    Diagnostic::error(
                        codes::SERVE_WRONG_BACKEND,
                        field,
                        format!(
                            "{field} is set but the serial backend keeps no resident rank \
                             workers to serve from"
                        ),
                    )
                    .with_help("serving belongs to `backend = \"threads\"` or `\"procs\"`"),
                );
            }
        }
    }

    // --- wire dtype label (AC1003) -------------------------------------
    if let Some(dtype) = &rt.wire_dtype {
        if dtype != "f32" && dtype != "f16" {
            diags.push(
                Diagnostic::error(
                    codes::WIRE_DTYPE_UNKNOWN,
                    "runtime.wire_dtype",
                    format!("unknown wire dtype `{dtype}`"),
                )
                .with_help("known dtypes: f32 (bit-exact) and f16 (half the dense wire bytes)"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeSection;

    fn run(cfg: &ExperimentConfig) -> Vec<Diagnostic> {
        let mut diags = Diagnostics::new();
        check_runtime(cfg, &mut diags);
        diags.into_vec()
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    fn with_runtime(rt: RuntimeSection) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.runtime = Some(rt);
        cfg
    }

    #[test]
    fn absent_section_is_vacuously_clean() {
        assert!(run(&ExperimentConfig::paper_default()).is_empty());
    }

    #[test]
    fn threads_default_is_clean() {
        assert!(run(&with_runtime(RuntimeSection::threads_default())).is_empty());
    }

    #[test]
    fn explicit_matching_config_is_clean() {
        // paper_default is tp=2 pp=2: 4 ranks, batch 32.
        let mut rt = RuntimeSection::threads_default();
        rt.threads = Some(4);
        rt.micro_batches = Some(8);
        rt.rank_map = Some(vec![3, 2, 1, 0]);
        assert!(run(&with_runtime(rt)).is_empty());
    }

    #[test]
    fn rejects_unknown_backend() {
        let mut rt = RuntimeSection::threads_default();
        rt.backend = "cuda_graphs".to_string();
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::UNKNOWN_BACKEND]
        );
    }

    #[test]
    fn rejects_thread_count_mismatch() {
        let mut rt = RuntimeSection::threads_default();
        rt.threads = Some(3); // world is 4
        let diags = run(&with_runtime(rt));
        assert_eq!(codes_of(&diags), vec![codes::THREADS_NOT_WORLD]);
        assert!(diags[0].message.contains("exactly 4 rank threads"));
    }

    #[test]
    fn rejects_non_dividing_micro_batches() {
        let mut rt = RuntimeSection::threads_default();
        rt.micro_batches = Some(5); // batch.micro_batch is 32
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::MICROBATCH_NOT_DIVIDING_BATCH]
        );

        let mut rt = RuntimeSection::threads_default();
        rt.micro_batches = Some(0);
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::MICROBATCH_NOT_DIVIDING_BATCH]
        );
    }

    #[test]
    fn rejects_broken_rank_maps() {
        // Wrong length.
        let mut rt = RuntimeSection::threads_default();
        rt.rank_map = Some(vec![0, 1, 2]);
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::RANK_MAP_NOT_BIJECTION]
        );

        // Out-of-range slot.
        let mut rt = RuntimeSection::threads_default();
        rt.rank_map = Some(vec![0, 1, 2, 4]);
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::RANK_MAP_NOT_BIJECTION]
        );

        // Duplicate slot: two findings (the dup and the orphan slot are
        // one violation; every duplicate is reported).
        let mut rt = RuntimeSection::threads_default();
        rt.rank_map = Some(vec![0, 1, 1, 0]);
        let diags = run(&with_runtime(rt));
        assert_eq!(diags.len(), 2);
        assert!(codes_of(&diags)
            .iter()
            .all(|c| *c == codes::RANK_MAP_NOT_BIJECTION));
    }

    #[test]
    fn multiple_violations_all_reported() {
        let mut rt = RuntimeSection::threads_default();
        rt.backend = "mpi".to_string();
        rt.threads = Some(16);
        rt.micro_batches = Some(3);
        let diags = run(&with_runtime(rt));
        assert_eq!(
            codes_of(&diags),
            vec![
                codes::UNKNOWN_BACKEND,
                codes::THREADS_NOT_WORLD,
                codes::MICROBATCH_NOT_DIVIDING_BATCH,
            ]
        );
    }

    fn procs_default() -> RuntimeSection {
        let mut rt = RuntimeSection::threads_default();
        rt.backend = "procs".to_string();
        rt
    }

    #[test]
    fn clean_procs_configs_pass() {
        assert!(run(&with_runtime(procs_default())).is_empty());

        let mut rt = procs_default();
        rt.transport = Some("tcp".to_string());
        rt.link_mbps = Some(1000.0);
        rt.world_size = Some(4);
        rt.listen = Some(vec![
            "127.0.0.1:9001".to_string(),
            "127.0.0.1:9002".to_string(),
            "127.0.0.1:9003".to_string(),
            "127.0.0.1:9004".to_string(),
        ]);
        assert!(run(&with_runtime(rt)).is_empty());
    }

    #[test]
    fn rejects_unknown_and_inprocess_transports() {
        let mut rt = procs_default();
        rt.transport = Some("rdma".to_string());
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::TRANSPORT_UNKNOWN]
        );

        // mpsc is a real transport label, but it cannot cross processes.
        let mut rt = procs_default();
        rt.transport = Some("mpsc".to_string());
        let diags = run(&with_runtime(rt));
        assert_eq!(codes_of(&diags), vec![codes::TRANSPORT_UNKNOWN]);
        assert!(diags[0].message.contains("in-process"));
    }

    #[test]
    fn rejects_transport_options_on_transportless_backends() {
        let mut rt = RuntimeSection::threads_default();
        rt.transport = Some("uds".to_string());
        rt.world_size = Some(4);
        let diags = run(&with_runtime(rt));
        assert_eq!(
            codes_of(&diags),
            vec![
                codes::TRANSPORT_WRONG_BACKEND,
                codes::TRANSPORT_WRONG_BACKEND
            ]
        );
    }

    #[test]
    fn rejects_throttle_without_tcp() {
        // procs + uds: no NIC to throttle.
        let mut rt = procs_default();
        rt.link_mbps = Some(1000.0);
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::THROTTLE_WITHOUT_TCP]
        );

        // threads backend: no transport at all.
        let mut rt = RuntimeSection::threads_default();
        rt.link_mbps = Some(1000.0);
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::THROTTLE_WITHOUT_TCP]
        );

        // Nonsense bandwidths are rejected even on tcp.
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let mut rt = procs_default();
            rt.transport = Some("tcp".to_string());
            rt.link_mbps = Some(bad);
            assert_eq!(
                codes_of(&run(&with_runtime(rt))),
                vec![codes::THROTTLE_WITHOUT_TCP],
                "link_mbps = {bad}"
            );
        }
    }

    #[test]
    fn rejects_listen_collisions_and_bad_counts() {
        // Duplicate port.
        let mut rt = procs_default();
        rt.transport = Some("tcp".to_string());
        rt.listen = Some(vec![
            "127.0.0.1:9001".to_string(),
            "127.0.0.1:9002".to_string(),
            "127.0.0.1:9001".to_string(),
            "127.0.0.1:9004".to_string(),
        ]);
        let diags = run(&with_runtime(rt));
        assert_eq!(codes_of(&diags), vec![codes::LISTEN_ADDR_COLLISION]);
        assert!(diags[0].message.contains("ranks 0 and 2"));

        // Duplicate socket path on uds.
        let mut rt = procs_default();
        rt.listen = Some(vec![
            "/tmp/a.sock".to_string(),
            "/tmp/a.sock".to_string(),
            "/tmp/c.sock".to_string(),
            "/tmp/d.sock".to_string(),
        ]);
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::LISTEN_ADDR_COLLISION]
        );

        // Wrong count: world is 4.
        let mut rt = procs_default();
        rt.listen = Some(vec!["/tmp/a.sock".to_string()]);
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::LISTEN_ADDR_COLLISION]
        );
    }

    #[test]
    fn rejects_tracing_across_processes() {
        let mut rt = procs_default();
        rt.trace = Some(true);
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::PROCS_TRACE_UNSUPPORTED]
        );

        // Tracing on threads stays fine.
        let mut rt = RuntimeSection::threads_default();
        rt.trace = Some(true);
        assert!(run(&with_runtime(rt)).is_empty());
    }

    #[test]
    fn rejects_world_size_mismatch() {
        let mut rt = procs_default();
        rt.world_size = Some(3); // world is 4
        let diags = run(&with_runtime(rt));
        assert_eq!(codes_of(&diags), vec![codes::PROCS_WORLD_MISMATCH]);
        assert!(diags[0].message.contains("exactly 4 worker processes"));
    }

    #[test]
    fn clean_fault_and_recovery_configs_pass() {
        let mut rt = procs_default();
        rt.fault = Some("kill:rank=1@step=3".to_string());
        rt.checkpoint_every = Some(2);
        rt.checkpoint_dir = Some("/tmp/ckpt".to_string());
        rt.max_restarts = Some(2);
        rt.step_timeout_s = Some(60.0);
        rt.rendezvous_timeout_s = Some(30.0);
        assert!(run(&with_runtime(rt)).is_empty());
    }

    #[test]
    fn rejects_malformed_fault_specs() {
        let mut rt = procs_default();
        rt.fault = Some("explode:rank=1".to_string());
        let diags = run(&with_runtime(rt));
        assert_eq!(codes_of(&diags), vec![codes::FAULT_SPEC_INVALID]);
        assert!(diags[0].message.contains("does not parse"));
    }

    #[test]
    fn rejects_fault_options_on_in_process_backends() {
        let mut rt = RuntimeSection::threads_default();
        rt.fault = Some("kill:rank=1@step=3".to_string());
        rt.max_restarts = Some(1);
        let diags = run(&with_runtime(rt));
        assert_eq!(diags.len(), 2);
        assert!(codes_of(&diags)
            .iter()
            .all(|c| *c == codes::FAULT_WRONG_BACKEND));
    }

    #[test]
    fn rejects_nonsense_timeouts() {
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let mut rt = procs_default();
            rt.step_timeout_s = Some(bad);
            assert_eq!(
                codes_of(&run(&with_runtime(rt))),
                vec![codes::TIMEOUT_INVALID],
                "step_timeout_s = {bad}"
            );
        }
        let mut rt = procs_default();
        rt.rendezvous_timeout_s = Some(-1.0);
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::TIMEOUT_INVALID]
        );
    }

    #[test]
    fn rejects_kill_rank_outside_world() {
        let mut rt = procs_default();
        rt.fault = Some("kill:rank=7@step=1".to_string()); // world is 4
        let diags = run(&with_runtime(rt));
        assert_eq!(codes_of(&diags), vec![codes::FAULT_RANK_OUT_OF_WORLD]);
        assert!(diags[0].message.contains("never fire"));

        // In-world kill targets are fine.
        let mut rt = procs_default();
        rt.fault = Some("kill:rank=3@step=1".to_string());
        assert!(run(&with_runtime(rt)).is_empty());
    }

    #[test]
    fn rejects_zero_checkpoint_interval() {
        let mut rt = procs_default();
        rt.checkpoint_every = Some(0);
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::CHECKPOINT_INTERVAL_INVALID]
        );
    }

    #[test]
    fn clean_serving_configs_pass() {
        let mut rt = RuntimeSection::threads_default();
        rt.max_batch = Some(8);
        rt.batch_window_us = Some(200);
        rt.wire_dtype = Some("f16".to_string());
        assert!(run(&with_runtime(rt)).is_empty());

        // max_batch = 1 is the one-request-at-a-time baseline, not an
        // error; procs serves too.
        let mut rt = procs_default();
        rt.max_batch = Some(1);
        rt.wire_dtype = Some("f32".to_string());
        assert!(run(&with_runtime(rt)).is_empty());
    }

    #[test]
    fn rejects_zero_max_batch() {
        let mut rt = RuntimeSection::threads_default();
        rt.max_batch = Some(0);
        assert_eq!(
            codes_of(&run(&with_runtime(rt))),
            vec![codes::SERVE_BATCH_INVALID]
        );
    }

    #[test]
    fn rejects_serving_options_on_serial_backend() {
        let mut rt = RuntimeSection::threads_default();
        rt.backend = "serial".to_string();
        rt.max_batch = Some(8);
        rt.batch_window_us = Some(100);
        let diags = run(&with_runtime(rt));
        assert_eq!(diags.len(), 2);
        assert!(codes_of(&diags)
            .iter()
            .all(|c| *c == codes::SERVE_WRONG_BACKEND));
    }

    #[test]
    fn rejects_unknown_wire_dtype() {
        let mut rt = RuntimeSection::threads_default();
        rt.wire_dtype = Some("bf16".to_string());
        let diags = run(&with_runtime(rt));
        assert_eq!(codes_of(&diags), vec![codes::WIRE_DTYPE_UNKNOWN]);
        assert!(diags[0].message.contains("bf16"));
    }
}
