//! Experiment configurations.

use actcomp_compress::plan::CompressionPlan;
use actcomp_compress::spec::CompressorSpec;
use actcomp_nn::BertConfig;
use serde::{Deserialize, Serialize};

/// The scaled-down architecture the accuracy experiments train for real.
///
/// Keeps BERT-Large's *structure* — deep stack, `ff = 4h`, post-LN — at a
/// CPU-trainable size (8 layers, hidden 64). The paper's default
/// "compress the last half of the layers" placement maps to the last 4
/// layers here; §4.5's layer sweeps scan 1–8.
pub fn accuracy_model() -> BertConfig {
    BertConfig {
        vocab: 64,
        hidden: 64,
        layers: 8,
        heads: 4,
        ff_hidden: 256,
        max_seq: 32,
    }
}

/// Configuration of one accuracy experiment (a fine-tuning or pre-training
/// run with real numerics through `actcomp-mp`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyConfig {
    /// Architecture.
    pub bert: BertConfig,
    /// Tensor model-parallel degree.
    pub tp: usize,
    /// Pipeline model-parallel degree.
    pub pp: usize,
    /// Compression setting (Table 1 notation).
    pub spec: CompressorSpec,
    /// Compressed-layer window `(start, count)`; `None` uses the paper's
    /// default of the last half of the layers.
    pub window: Option<(usize, usize)>,
    /// Sequences per training batch.
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
    /// Optimizer steps.
    pub steps: usize,
    /// Adam learning rate (peak; linear warmup precedes it).
    pub lr: f32,
    /// Linear warmup steps (deep post-LN stacks need a short ramp).
    pub warmup: usize,
    /// Wrap every compressor in error feedback (§3.3's extension hook).
    pub error_feedback: bool,
    /// Master seed (data, init, and compressor streams derive from it).
    pub seed: u64,
}

impl AccuracyConfig {
    /// The paper's default accuracy setting: TP=2, PP=2, batch 32/seq 512
    /// scaled to the small model's batch 16/seq 24, last-half compression.
    pub fn paper_default() -> Self {
        AccuracyConfig {
            bert: accuracy_model(),
            tp: 2,
            pp: 2,
            spec: CompressorSpec::Baseline,
            window: None,
            batch: 16,
            seq: 24,
            steps: 200,
            lr: 3e-4,
            warmup: 20,
            error_feedback: false,
            seed: 42,
        }
    }

    /// Same run with a different compressor.
    pub fn with_spec(mut self, spec: CompressorSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Same run compressing `count` layers starting at `start` (§4.5).
    pub fn with_window(mut self, start: usize, count: usize) -> Self {
        self.window = Some((start, count));
        self
    }

    /// Same run with error feedback wrapped around every compressor.
    pub fn with_error_feedback(mut self) -> Self {
        self.error_feedback = true;
        self
    }

    /// Resolves the compression placement.
    pub fn plan(&self) -> CompressionPlan {
        if self.spec == CompressorSpec::Baseline {
            return CompressionPlan::none();
        }
        match self.window {
            Some((start, count)) => CompressionPlan::window(self.spec, start, count),
            None => CompressionPlan::last_layers(self.spec, self.bert.layers, self.bert.layers / 2),
        }
    }

    /// Tokens per forward pass.
    pub fn tokens(&self) -> usize {
        self.batch * self.seq
    }

    /// Typed variant of [`AccuracyConfig::validate`].
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        self.bert.try_validate().map_err(ConfigError::Bert)?;
        if self.seq > self.bert.max_seq {
            return Err(ConfigError::SeqExceedsMaxSeq);
        }
        if self.batch == 0 || self.steps == 0 {
            return Err(ConfigError::ZeroBatchOrSteps);
        }
        if self.lr <= 0.0 {
            return Err(ConfigError::NonPositiveLearningRate);
        }
        if self.plan().end_layer() > self.bert.layers {
            return Err(ConfigError::WindowExceedsLayers);
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent settings.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

/// An inconsistent [`AccuracyConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigError {
    /// The architecture itself is impossible.
    Bert(actcomp_nn::BertConfigError),
    /// Sequence length exceeds the position table.
    SeqExceedsMaxSeq,
    /// Batch size or step count is zero.
    ZeroBatchOrSteps,
    /// The learning rate is not positive.
    NonPositiveLearningRate,
    /// The compression window reaches past the last layer.
    WindowExceedsLayers,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Bert(e) => write!(f, "{e}"),
            ConfigError::SeqExceedsMaxSeq => f.write_str("seq exceeds max_seq"),
            ConfigError::ZeroBatchOrSteps => f.write_str("batch and steps must be positive"),
            ConfigError::NonPositiveLearningRate => f.write_str("non-positive learning rate"),
            ConfigError::WindowExceedsLayers => f.write_str("window exceeds layer count"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Bert(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_last_half() {
        let cfg = AccuracyConfig::paper_default().with_spec(CompressorSpec::A2);
        let plan = cfg.plan();
        assert_eq!(plan.start_layer, 4);
        assert_eq!(plan.num_layers, 4);
    }

    #[test]
    fn baseline_plan_is_none() {
        let cfg = AccuracyConfig::paper_default();
        assert!(!cfg.plan().is_active());
    }

    #[test]
    fn window_override() {
        let cfg = AccuracyConfig::paper_default()
            .with_spec(CompressorSpec::Q2)
            .with_window(0, 3);
        let plan = cfg.plan();
        assert!(plan.covers(0) && plan.covers(2) && !plan.covers(3));
    }

    #[test]
    #[should_panic(expected = "window exceeds")]
    fn validates_window() {
        AccuracyConfig::paper_default()
            .with_spec(CompressorSpec::Q2)
            .with_window(6, 5)
            .validate();
    }
}
