//! Accuracy experiments: real fine-tuning and pre-training through the
//! model-parallel stack (`actcomp-mp`) on the synthetic GLUE suite.
//!
//! These runners regenerate the paper's Tables 5, 8, 15, 16 and Figure 4.

use crate::config::AccuracyConfig;
use actcomp_data::glue::{class_labels, score_labels, Example, GlueTask, Label};
use actcomp_data::pretrain::{mask_tokens, Corpus};
use actcomp_mp::{MpBert, MpConfig};
use actcomp_nn::optim::{self, Adam};
use actcomp_nn::{loss, BertEncoder, ClassifierHead, LrSchedule, MlmHead};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Outcome of fine-tuning one task under one setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinetuneResult {
    /// Task evaluated.
    pub task: GlueTask,
    /// Score under the task's GLUE metric, in the paper's 0–100 scale.
    pub score: f64,
    /// Final training loss (diagnostic).
    pub final_loss: f32,
}

/// Fine-tunes a freshly initialized model on `task` and returns the dev
/// score (0–100 scale, matching the paper's tables).
pub fn finetune(cfg: &AccuracyConfig, task: GlueTask) -> FinetuneResult {
    cfg.validate();
    let mut model_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xF1E2_D3C4);
    let serial = BertEncoder::new(&mut model_rng, cfg.bert.clone());
    finetune_from(cfg, &serial, task)
}

/// Fine-tunes starting from an existing serial checkpoint (the paper's
/// §4.4 pre-train-then-fine-tune pipeline; Table 8).
pub fn finetune_from(cfg: &AccuracyConfig, serial: &BertEncoder, task: GlueTask) -> FinetuneResult {
    cfg.validate();
    let (mut train, dev) = task.generate(cfg.seed, cfg.bert.vocab, cfg.seq);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xA5A5);

    let mp_cfg = MpConfig {
        bert: cfg.bert.clone(),
        tp: cfg.tp,
        pp: cfg.pp,
        plan: cfg.plan(),
        tokens: cfg.tokens(),
        error_feedback: cfg.error_feedback,
    };
    let mut model = MpBert::from_serial(serial, mp_cfg, &mut rng);
    let classes = if task.is_regression() {
        1
    } else {
        task.num_classes()
    };
    let mut head = ClassifierHead::new(&mut rng, cfg.bert.hidden, classes, 0.0, cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let schedule = LrSchedule::Warmup {
        lr: cfg.lr,
        warmup: cfg.warmup,
    };

    train.shuffle(&mut rng);
    let mut cursor = 0usize;
    let mut final_loss = 0.0f32;
    for step in 0..cfg.steps {
        let batch: Vec<&Example> = (0..cfg.batch)
            .map(|i| &train[(cursor + i) % train.len()])
            .collect();
        cursor = (cursor + cfg.batch) % train.len();

        let ids: Vec<usize> = batch
            .iter()
            .flat_map(|e| e.tokens.iter().copied())
            .collect();
        let hidden = model.forward(&ids, cfg.batch, cfg.seq);
        let logits = head.forward(&hidden, cfg.batch, cfg.seq);

        let (l, dlogits) = if task.is_regression() {
            let targets: Vec<f32> = batch
                .iter()
                .map(|e| match e.label {
                    Label::Score(s) => s,
                    Label::Class(_) => unreachable!("regression task"),
                })
                .collect();
            loss::mse(&logits, &targets)
        } else {
            let labels: Vec<usize> = batch
                .iter()
                .map(|e| match e.label {
                    Label::Class(c) => c,
                    Label::Score(_) => unreachable!("classification task"),
                })
                .collect();
            loss::softmax_cross_entropy(&logits, &labels)
        };
        final_loss = l;

        model.zero_grad();
        head.visit_params(&mut |p| p.zero_grad());
        let dhidden = head.backward(&dlogits);
        model.backward(&dhidden);
        opt.lr = schedule.at(step + 1);
        opt.begin_step();
        optim::step(&mut opt, |f| {
            model.visit_all_params(f);
            head.visit_params(f);
        });
    }

    let score = evaluate(&mut model, &mut head, &dev, task, cfg);
    FinetuneResult {
        task,
        score,
        final_loss,
    }
}

/// Evaluates the model on a dev split, returning the task metric × 100.
fn evaluate(
    model: &mut MpBert,
    head: &mut ClassifierHead,
    dev: &[Example],
    task: GlueTask,
    cfg: &AccuracyConfig,
) -> f64 {
    head.set_training(false);
    let mut class_preds = Vec::new();
    let mut score_preds = Vec::new();
    for chunk in dev.chunks(cfg.batch) {
        let ids: Vec<usize> = chunk
            .iter()
            .flat_map(|e| e.tokens.iter().copied())
            .collect();
        let hidden = model.forward(&ids, chunk.len(), cfg.seq);
        let logits = head.forward(&hidden, chunk.len(), cfg.seq);
        if task.is_regression() {
            score_preds.extend_from_slice(logits.as_slice());
        } else {
            class_preds.extend(logits.argmax_rows());
        }
        // Discard cached state so the next forward starts clean.
        let _ = head.backward(&actcomp_tensor::Tensor::zeros_like(&logits));
    }
    head.set_training(true);
    let metric = task.metric();
    let raw = if task.is_regression() {
        metric.eval_scores(&score_preds, &score_labels(dev))
    } else {
        metric.eval_classes(&class_preds, &class_labels(dev))
    };
    100.0 * raw
}

/// Runs the full eight-task suite under one setting (one row of the
/// paper's Table 5 / 8 / 15 / 16).
pub fn glue_suite(cfg: &AccuracyConfig) -> Vec<FinetuneResult> {
    GlueTask::all().iter().map(|t| finetune(cfg, *t)).collect()
}

/// The suite average the paper's "Avg." column reports.
pub fn average(results: &[FinetuneResult]) -> f64 {
    results.iter().map(|r| r.score).sum::<f64>() / results.len() as f64
}

/// Masked-language-model pre-training through the model-parallel stack;
/// returns the serial checkpoint with compressors removed (§4.4).
pub fn pretrain(cfg: &AccuracyConfig, steps: usize) -> BertEncoder {
    cfg.validate();
    let mut model_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x7E57);
    let serial = BertEncoder::new(&mut model_rng, cfg.bert.clone());
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x1234);

    let mp_cfg = MpConfig {
        bert: cfg.bert.clone(),
        tp: cfg.tp,
        pp: cfg.pp,
        plan: cfg.plan(),
        tokens: cfg.tokens(),
        error_feedback: cfg.error_feedback,
    };
    let mut model = MpBert::from_serial(&serial, mp_cfg, &mut rng);
    let mut head = MlmHead::new(&mut rng, cfg.bert.hidden, cfg.bert.vocab);
    let mut opt = Adam::new(cfg.lr);
    let schedule = LrSchedule::Warmup {
        lr: cfg.lr,
        warmup: cfg.warmup,
    };
    let mut corpus = Corpus::new(cfg.seed, cfg.bert.vocab);

    for step in 0..steps {
        let tokens = corpus.sample_batch(cfg.batch, cfg.seq);
        let (input, labels) = mask_tokens(&mut rng, &tokens, cfg.bert.vocab);
        let hidden = model.forward(&input, cfg.batch, cfg.seq);
        let logits = head.forward(&hidden);
        let (_, dlogits) = loss::masked_cross_entropy(&logits, &labels);
        model.zero_grad();
        head.visit_params(&mut |p| p.zero_grad());
        let dhidden = head.backward(&dlogits);
        model.backward(&dhidden);
        opt.lr = schedule.at(step + 1);
        opt.begin_step();
        optim::step(&mut opt, |f| {
            model.visit_all_params(f);
            head.visit_params(f);
        });
    }
    model.to_serial()
}

/// Measures the MLM loss of a checkpoint on freshly sampled corpus data
/// (used to verify pre-training learned something).
pub fn mlm_eval_loss(encoder: &mut BertEncoder, cfg: &AccuracyConfig, batches: usize) -> f32 {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xEEE);
    let mut corpus = Corpus::new(cfg.seed ^ 0xBEEF, cfg.bert.vocab);
    let mut head_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xD00D);
    // Fresh linear probe: measures representation quality, not head reuse.
    let mut head = MlmHead::new(&mut head_rng, cfg.bert.hidden, cfg.bert.vocab);
    let mut opt = Adam::new(5e-3);
    let mut total = 0.0f32;
    // Train the probe briefly, then measure.
    for phase in 0..2 {
        total = 0.0;
        for _ in 0..batches {
            let tokens = corpus.sample_batch(cfg.batch, cfg.seq);
            let (input, labels) = mask_tokens(&mut rng, &tokens, cfg.bert.vocab);
            let hidden = encoder.forward(&input, cfg.batch, cfg.seq);
            let logits = head.forward(&hidden);
            let (l, dlogits) = loss::masked_cross_entropy(&logits, &labels);
            total += l;
            if phase == 0 {
                encoder.zero_grad();
                head.visit_params(&mut |p| p.zero_grad());
                let _ = head.backward(&dlogits);
                opt.begin_step();
                optim::step(&mut opt, |f| head.visit_params(f));
            } else {
                let _ = head.backward(&actcomp_tensor::Tensor::zeros_like(&dlogits));
            }
        }
    }
    total / batches as f32
}
