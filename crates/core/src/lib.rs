//! # actcomp-core
//!
//! Experiment orchestration for the `actcomp` reproduction of *"Does
//! Compressing Activations Help Model Parallel Training?"* (MLSys 2024).
//!
//! This crate ties the substrates together into the paper's experiments:
//!
//! - [`config`]: the scaled-down accuracy model and per-run settings,
//! - [`throughput`]: iteration-time experiments through the cluster
//!   simulator (Tables 2–4, 6, 7, 9, 11–14, Figure 1),
//! - [`accuracy`]: real fine-tuning / pre-training through the
//!   model-parallel stack on the synthetic GLUE suite (Tables 5, 8, 15,
//!   16, Figure 4),
//! - [`lowrank`]: the gradient-vs-activation SVD analysis (Figure 2),
//! - [`report`]: markdown tables and paper-vs-measured JSON records.
//!
//! # Example
//!
//! ```no_run
//! use actcomp_core::throughput::{finetune_breakdown, Machine};
//! use actcomp_compress::spec::CompressorSpec;
//!
//! // One Table 3 cell: A1 on the no-NVLink machine, TP=2/PP=2.
//! let b = finetune_breakdown(Machine::LocalPcie, 2, 2, 32, 512, CompressorSpec::A1);
//! println!("iteration: {:.2} ms", b.total_ms);
//! ```

#![warn(missing_docs)]

pub mod accuracy;
pub mod config;
pub mod lowrank;
pub mod report;
pub mod throughput;

pub use accuracy::{finetune, finetune_from, glue_suite, pretrain, FinetuneResult};
pub use config::{accuracy_model, AccuracyConfig, ConfigError};
pub use lowrank::{analyze, LowRankAnalysis};
pub use report::{Record, Table};
pub use throughput::{finetune_breakdown, pretrain_breakdown, Machine};
