//! Table rendering and paper-vs-measured record export.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// A rendered results table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Title (e.g. `"Table 2 — fine-tune iteration time (ms)"`).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Row cells (each row the same length as the header).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: Vec<String>) -> Self {
        Table {
            title: title.into(),
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Renders GitHub-flavoured markdown.
    pub fn markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.header.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.markdown())
    }
}

/// One paper-vs-measured datapoint, exported to `results/*.json` by the
/// bench harnesses and summarized in EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Experiment id (`"table2"`, `"figure4a"`, …).
    pub experiment: String,
    /// Human-readable setting (`"TP=2,PP=2 A1"`).
    pub setting: String,
    /// The paper's reported value, when one exists.
    pub paper: Option<f64>,
    /// Our measured/simulated value.
    pub measured: f64,
    /// Unit (`"ms"`, `"score"`, `"ratio"`).
    pub unit: String,
}

/// Writes records as pretty JSON, creating parent directories.
///
/// # Errors
///
/// Returns any I/O error from creating directories or writing the file.
pub fn write_records(path: impl AsRef<Path>, records: &[Record]) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    let json = serde_json::to_string_pretty(records).expect("records serialize");
    f.write_all(json.as_bytes())
}

/// Formats a millisecond value the way the paper's tables do
/// (thousands separators, two decimals).
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100_000.0 {
        return ">100,000".to_string();
    }
    let s = format!("{ms:.2}");
    let (int, frac) = s.split_once('.').expect("formatted float");
    let mut grouped = String::new();
    for (i, c) in int.chars().enumerate() {
        if i > 0 && (int.len() - i) % 3 == 0 {
            grouped.push(',');
        }
        grouped.push(c);
    }
    format!("{grouped}.{frac}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Demo", vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("x", vec!["a".into()]).push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn ms_formatting_matches_paper_style() {
        assert_eq!(fmt_ms(591.96), "591.96");
        assert_eq!(fmt_ms(1625.16), "1,625.16");
        assert_eq!(fmt_ms(17117.01), "17,117.01");
        assert_eq!(fmt_ms(150000.0), ">100,000");
    }

    #[test]
    fn records_round_trip_json() {
        let recs = vec![Record {
            experiment: "table2".into(),
            setting: "TP=2,PP=2 A1".into(),
            paper: Some(437.98),
            measured: 435.0,
            unit: "ms".into(),
        }];
        let dir = std::env::temp_dir().join("actcomp_test_records");
        let path = dir.join("t2.json");
        write_records(&path, &recs).unwrap();
        let back: Vec<Record> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, recs);
        let _ = std::fs::remove_dir_all(dir);
    }
}
