//! The paper's Figure 2: gradients are low-rank, activations are not.
//!
//! Trains the small reference model briefly, then compares the singular
//! spectra of (a) a weight gradient and (b) a mid-stack activation matrix.

use crate::config::AccuracyConfig;
use actcomp_data::glue::{class_labels, GlueTask};
use actcomp_nn::optim::{self, Adam};
use actcomp_nn::{loss, BertEncoder, ClassifierHead, Layer};
use actcomp_tensor::{linalg, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One singular-spectrum curve of Figure 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectrumCurve {
    /// Curve label ("gradient" / "activation").
    pub label: String,
    /// Cumulative singular-value energy at each rank prefix (the paper's
    /// "sigma value percentage" axis).
    pub energy: Vec<f32>,
    /// Smallest rank capturing 90% of spectral mass.
    pub rank90: usize,
}

/// Result of the low-rank analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LowRankAnalysis {
    /// Spectrum of a mid-stack feed-forward weight gradient.
    pub gradient: SpectrumCurve,
    /// Spectrum of the mid-stack activation matrix.
    pub activation: SpectrumCurve,
}

impl LowRankAnalysis {
    /// Whether the paper's finding reproduces: the gradient concentrates
    /// its spectrum in far fewer directions than the activation.
    pub fn gradient_is_lower_rank(&self) -> bool {
        self.gradient.rank90 * 2 <= self.activation.rank90
    }
}

/// Runs the Figure 2 analysis: trains briefly on MNLI, then takes SVDs of
/// a mid-layer FF weight gradient and the mid-layer activation.
pub fn analyze(cfg: &AccuracyConfig, train_steps: usize) -> LowRankAnalysis {
    let (gradient, activation) = harvest(cfg, train_steps);
    LowRankAnalysis {
        gradient: curve("gradient", &gradient),
        activation: curve("activation", &activation),
    }
}

/// Trains briefly and returns the raw `(gradient, activation)` matrices
/// Figure 2 inspects — also used by the low-rank compression ablation
/// (`ablation_lowrank`), which needs the matrices themselves.
pub fn harvest(cfg: &AccuracyConfig, train_steps: usize) -> (Tensor, Tensor) {
    cfg.validate();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x10aa);
    let mut model = BertEncoder::new(&mut rng, cfg.bert.clone());
    let task = GlueTask::Mnli;
    let (train, _) = task.generate(cfg.seed, cfg.bert.vocab, cfg.seq);
    let mut head = ClassifierHead::new(&mut rng, cfg.bert.hidden, task.num_classes(), 0.0, 7);
    let mut opt = Adam::new(cfg.lr);

    let batch_ids = |step: usize| -> (Vec<usize>, Vec<usize>) {
        let exs: Vec<_> = (0..cfg.batch)
            .map(|i| &train[(step * cfg.batch + i) % train.len()])
            .collect();
        let ids = exs.iter().flat_map(|e| e.tokens.iter().copied()).collect();
        let labels = class_labels(&exs.iter().map(|e| (*e).clone()).collect::<Vec<_>>());
        (ids, labels)
    };

    for step in 0..train_steps {
        let (ids, labels) = batch_ids(step);
        let hidden = model.forward(&ids, cfg.batch, cfg.seq);
        let logits = head.forward(&hidden, cfg.batch, cfg.seq);
        let (_, dlogits) = loss::softmax_cross_entropy(&logits, &labels);
        model.zero_grad();
        head.visit_params(&mut |p| p.zero_grad());
        let dhidden = head.backward(&dlogits);
        model.backward(&dhidden);
        opt.begin_step();
        optim::step(&mut opt, |f| {
            model.visit_params(f);
            head.visit_params(f);
        });
    }

    // One more pass to populate a fresh gradient and capture the
    // mid-stack activation.
    let (ids, labels) = batch_ids(train_steps);
    let mid = cfg.bert.layers / 2;
    let activation = forward_to_layer(&mut model, &ids, cfg.batch, cfg.seq, mid);
    let hidden = model.forward(&ids, cfg.batch, cfg.seq);
    let logits = head.forward(&hidden, cfg.batch, cfg.seq);
    let (_, dlogits) = loss::softmax_cross_entropy(&logits, &labels);
    model.zero_grad();
    head.visit_params(&mut |p| p.zero_grad());
    let dhidden = head.backward(&dlogits);
    model.backward(&dhidden);
    let gradient = model.layers[mid].ff.fc1.weight.grad.clone();

    (gradient, activation)
}

/// Runs the encoder up to (and including) layer `upto`, returning that
/// layer's output activation `[batch·seq, hidden]`.
fn forward_to_layer(
    model: &mut BertEncoder,
    ids: &[usize],
    batch: usize,
    seq: usize,
    upto: usize,
) -> Tensor {
    let tok = model.tok.forward(ids);
    let pos_ids: Vec<usize> = (0..batch).flat_map(|_| 0..seq).collect();
    let pos = model.pos.forward(&pos_ids);
    let mut x = model.emb_ln.forward(&tok.add(&pos));
    for layer in model.layers.iter_mut().take(upto + 1) {
        x = layer.forward(&x, batch, seq);
    }
    x
}

fn curve(label: &str, matrix: &Tensor) -> SpectrumCurve {
    let sv = linalg::singular_values(matrix);
    let energy = linalg::cumulative_energy(&sv);
    let rank90 = linalg::effective_rank(&sv, 0.9);
    SpectrumCurve {
        label: label.to_string(),
        energy,
        rank90,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape_reproduces() {
        // Needs the full-depth model: the gradient's low-rank structure
        // emerges from the converging deep stack (shallow stacks keep it
        // above the 2x-rank criterion).
        let cfg = AccuracyConfig::paper_default();
        let analysis = analyze(&cfg, 40);
        assert!(
            analysis.gradient_is_lower_rank(),
            "gradient rank90 {} vs activation rank90 {}",
            analysis.gradient.rank90,
            analysis.activation.rank90
        );
        // Energy curves are valid cumulative distributions.
        for c in [&analysis.gradient, &analysis.activation] {
            assert!((c.energy.last().copied().unwrap_or(0.0) - 1.0).abs() < 1e-3);
        }
    }
}
