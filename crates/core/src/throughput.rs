//! Throughput experiments: drives `actcomp-distsim` with the paper's
//! exact configurations (Tables 2–4, 6, 7, 9, 11–14 and Figure 1).

use actcomp_compress::cost::CostModel;
use actcomp_compress::plan::CompressionPlan;
use actcomp_compress::spec::CompressorSpec;
use actcomp_distsim::workload::ModelShape;
use actcomp_distsim::{
    calibration, simulate_iteration, ClusterSpec, IterationBreakdown, Parallelism, TrainSetup,
};
use serde::{Deserialize, Serialize};

/// The machines of the paper's §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Machine {
    /// One AWS p3.8xlarge (4×V100, NVLink).
    AwsP3,
    /// The local 4×V100 machine without NVLink (shared PCIe).
    LocalPcie,
    /// `n` p3.8xlarge instances over 10 Gbps (pre-training cluster).
    AwsCluster(usize),
}

impl Machine {
    fn cluster(&self) -> ClusterSpec {
        match self {
            Machine::AwsP3 => ClusterSpec::p3_8xlarge(),
            Machine::LocalPcie => ClusterSpec::local_no_nvlink(),
            Machine::AwsCluster(n) => ClusterSpec::p3_cluster(*n),
        }
    }

    fn cost_model(&self, pretrain: bool) -> CostModel {
        match (self, pretrain) {
            (Machine::LocalPcie, _) => CostModel::v100(),
            (_, true) => CostModel::v100_pretrain(),
            (_, false) => CostModel::v100_aws(),
        }
    }
}

/// The paper's default compression placement at BERT-Large scale: the
/// last 12 of 24 layers.
pub fn paper_plan(spec: CompressorSpec) -> CompressionPlan {
    if spec == CompressorSpec::Baseline {
        CompressionPlan::none()
    } else {
        CompressionPlan::last_layers(spec, 24, 12)
    }
}

/// Simulates one fine-tuning iteration (BERT-Large, one micro-batch; the
/// Tables 2–4 and 11–14 regime).
pub fn finetune_breakdown(
    machine: Machine,
    tp: usize,
    pp: usize,
    batch: usize,
    seq: usize,
    spec: CompressorSpec,
) -> IterationBreakdown {
    finetune_breakdown_with_plan(machine, tp, pp, batch, seq, paper_plan(spec))
}

/// Fine-tuning iteration with an explicit compression placement (§4.5).
pub fn finetune_breakdown_with_plan(
    machine: Machine,
    tp: usize,
    pp: usize,
    batch: usize,
    seq: usize,
    plan: CompressionPlan,
) -> IterationBreakdown {
    let setup = TrainSetup {
        model: ModelShape::bert_large(),
        seq,
        micro_batch: batch,
        num_micro_batches: 1,
        parallelism: Parallelism::new(tp, pp),
        cluster: machine.cluster(),
        gpu: calibration::v100_finetune(),
        plan,
        cost: machine.cost_model(false),
    };
    simulate_iteration(&setup)
}

/// Simulates one pre-training iteration (4 nodes, micro-batch 128, global
/// batch 1024, sequence 128; the Tables 6/7/9 regime).
pub fn pretrain_breakdown(tp: usize, pp: usize, spec: CompressorSpec) -> IterationBreakdown {
    let machine = Machine::AwsCluster(4);
    let setup = TrainSetup {
        model: ModelShape::bert_large(),
        seq: 128,
        micro_batch: 128,
        num_micro_batches: 8, // 1024 / 128
        parallelism: Parallelism::new(tp, pp),
        cluster: machine.cluster(),
        gpu: calibration::v100_pretrain(),
        plan: paper_plan(spec),
        cost: machine.cost_model(true),
    };
    simulate_iteration(&setup)
}

/// Figure 1's metric: the fraction of iteration time spent in
/// model-parallel communication for BERT-Large on 4 GPUs at `(batch,
/// seq)`, TP=4.
pub fn comm_overhead_fraction(batch: usize, seq: usize) -> f64 {
    let b = finetune_breakdown(Machine::AwsP3, 4, 1, batch, seq, CompressorSpec::Baseline);
    // TP=4, PP=1: all model-parallel traffic is tensor-parallel. The
    // backward pass issues the same all-reduces as the forward.
    (2.0 * b.tensor_comm_ms / b.total_ms).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_communication_is_a_major_share() {
        // The paper's Figure 1 message: model-parallel communication is a
        // substantial fraction of iteration time across (batch, seq)
        // settings on 4 GPUs. The *fraction* shrinks as s grows (compute
        // has an s² term, communication is linear in s) while the
        // *absolute* communication time grows.
        let mut prev_abs = 0.0;
        for (b, s) in [(8, 128), (8, 512), (32, 128), (32, 512)] {
            let frac = comm_overhead_fraction(b, s);
            assert!((0.15..0.85).contains(&frac), "({b},{s}): fraction {frac}");
            let abs = finetune_breakdown(Machine::AwsP3, 4, 1, b, s, CompressorSpec::Baseline)
                .tensor_comm_ms;
            assert!(abs > prev_abs * 0.9, "({b},{s}): abs comm {abs}");
            prev_abs = abs.max(prev_abs);
        }
    }

    #[test]
    fn machines_pick_expected_cost_models() {
        assert_eq!(Machine::LocalPcie.cost_model(false), CostModel::v100());
        assert_eq!(Machine::AwsP3.cost_model(false), CostModel::v100_aws());
        assert_eq!(
            Machine::AwsCluster(4).cost_model(true),
            CostModel::v100_pretrain()
        );
    }

    #[test]
    fn plan_covers_last_half() {
        let p = paper_plan(CompressorSpec::A1);
        assert!(!p.covers(11) && p.covers(12) && p.covers(23));
        assert!(!paper_plan(CompressorSpec::Baseline).is_active());
    }

    #[test]
    fn finetune_and_pretrain_run() {
        let f = finetune_breakdown(Machine::AwsP3, 2, 2, 32, 512, CompressorSpec::A1);
        assert!(f.total_ms > 100.0 && f.total_ms < 1500.0);
        let p = pretrain_breakdown(4, 4, CompressorSpec::A2);
        assert!(p.total_ms > 500.0 && p.total_ms < 5000.0);
        assert_eq!(p.boundary_per_mb_ms.len(), 3);
    }
}
