//! Integration tests of the accuracy runner at small scale: determinism,
//! compression wiring, and the error-feedback path.

use actcomp_compress::spec::CompressorSpec;
use actcomp_core::{accuracy, AccuracyConfig};
use actcomp_data::GlueTask;

fn small() -> AccuracyConfig {
    let mut cfg = AccuracyConfig::paper_default();
    cfg.bert.layers = 4;
    cfg.bert.hidden = 32;
    cfg.bert.ff_hidden = 128;
    cfg.steps = 40;
    cfg.lr = 5e-4;
    cfg.seq = 16;
    cfg
}

#[test]
fn finetune_is_deterministic_per_seed() {
    let cfg = small().with_spec(CompressorSpec::A2);
    let a = accuracy::finetune(&cfg, GlueTask::Sst2);
    let b = accuracy::finetune(&cfg, GlueTask::Sst2);
    assert_eq!(a.score, b.score);
    assert_eq!(a.final_loss, b.final_loss);
}

#[test]
fn different_seeds_change_the_run() {
    let mut cfg = small();
    let a = accuracy::finetune(&cfg, GlueTask::Sst2);
    cfg.seed = 1234;
    let b = accuracy::finetune(&cfg, GlueTask::Sst2);
    assert_ne!(
        (a.score, a.final_loss),
        (b.score, b.final_loss),
        "different seeds should produce different runs"
    );
}

#[test]
fn error_feedback_path_runs_and_differs() {
    let plain = small().with_spec(CompressorSpec::Q1);
    let ef = plain.clone().with_error_feedback();
    let a = accuracy::finetune(&plain, GlueTask::Sst2);
    let b = accuracy::finetune(&ef, GlueTask::Sst2);
    // EF changes the numerics (residual injection), so trajectories split.
    assert_ne!(a.final_loss, b.final_loss);
    assert!(b.score > 50.0, "EF run must still learn: {}", b.score);
}

#[test]
fn window_placement_affects_outcome() {
    let late = small().with_spec(CompressorSpec::T3).with_window(2, 2);
    let early = small().with_spec(CompressorSpec::T3).with_window(0, 2);
    let a = accuracy::finetune(&late, GlueTask::Sst2);
    let b = accuracy::finetune(&early, GlueTask::Sst2);
    assert_ne!(a.score, b.score, "placement must matter");
}

#[test]
fn regression_task_round_trips() {
    let cfg = small();
    let r = accuracy::finetune(&cfg, GlueTask::StsB);
    assert!(r.score.is_finite());
    assert!(r.score > 30.0, "STS-B Spearman too low: {}", r.score);
}
