//! The per-rank worker: one OS thread owning one tensor-parallel shard
//! of one pipeline stage, driven by commands from the runtime and
//! exchanging activations/gradients with its peers over [`MsgTx`] /
//! [`MsgRx`] links (typed channels in the threads backend, framed
//! transport channels for sockets and process mode).

use crate::comm::TpGroup;
use crate::layer::{LayerGrads, RankLayer};
use crate::link::{MsgRx, MsgTx};
use crate::report::{timed, PhaseTimers, RankReport};
use crate::trace::TraceHandle;
use crate::wire::{put_f32, put_string, put_u8, put_usize, Reader, WireError, WireMsg};
use actcomp_check::{ChannelId, Dir, MsgId, TraceEvent};
use actcomp_compress::{Compressed, Compressor};
use actcomp_distsim::schedule::gpipe_order;
use actcomp_mp::CommBytes;
use actcomp_nn::{Embedding, Layer, LayerNorm, LnCache, Parameter};
use actcomp_tensor::{Tensor, Workspace};
use std::sync::mpsc::{channel, Receiver, Sender};

/// Commands the runtime broadcasts to every rank.
#[derive(Debug, Clone)]
pub(crate) enum Command {
    /// Run the GPipe fill (all micro-batch forwards for this stage).
    Forward {
        /// Token ids for the whole batch (stage 0 slices micro-batches).
        ids: Vec<usize>,
        /// Sequences in the batch.
        batch: usize,
        /// Tokens per sequence.
        seq: usize,
    },
    /// Run the GPipe drain (all micro-batch backwards, reversed).
    Backward {
        /// Gradient of the final hidden states for the whole batch.
        dhidden: Tensor,
    },
    /// Zero every owned gradient.
    ZeroGrad,
    /// Apply one SGD step to every owned parameter.
    SgdStep {
        /// Learning rate.
        lr: f32,
    },
    /// Snapshot owned gradients for reassembly by the driver.
    CollectGrads,
    /// Snapshot timers and byte counters.
    Report,
    /// Drain the rank's recorded audit-trace events.
    TakeTrace,
    /// Exit the worker loop.
    Shutdown,
    /// Write this rank's parameter shard to `dir/rank-<r>.ckpt`,
    /// stamped with `step` and the run's config hash `tag`.
    Checkpoint {
        /// Checkpoint directory (shared by all ranks).
        dir: String,
        /// Training step the checkpoint captures.
        step: usize,
        /// Config hash stamped into the shard.
        tag: u64,
    },
    /// Load this rank's parameter shard back from a checkpoint; the
    /// shard must verify (CRC) and carry the expected `step` and `tag`.
    Restore {
        /// Checkpoint directory (shared by all ranks).
        dir: String,
        /// Training step the checkpoint was taken at.
        step: usize,
        /// Config hash the shard must carry.
        tag: u64,
    },
    /// Forward-only inference over a coalesced request batch: one
    /// micro-batch per request (`micro` of them, overriding the
    /// configured training micro-batch count), no caches retained.
    Infer {
        /// Token ids for the whole request batch, request-major.
        ids: Vec<usize>,
        /// Requests in the batch.
        batch: usize,
        /// Tokens per request.
        seq: usize,
        /// Micro-batch count for this batch (the request count: each
        /// request pipelines through the stages independently).
        micro: usize,
    },
}

impl WireMsg for Command {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Command::Forward { ids, batch, seq } => {
                put_u8(out, 0);
                put_usize(out, ids.len());
                for &id in ids {
                    put_usize(out, id);
                }
                put_usize(out, *batch);
                put_usize(out, *seq);
            }
            Command::Backward { dhidden } => {
                put_u8(out, 1);
                dhidden.encode(out);
            }
            Command::ZeroGrad => put_u8(out, 2),
            Command::SgdStep { lr } => {
                put_u8(out, 3);
                put_f32(out, *lr);
            }
            Command::CollectGrads => put_u8(out, 4),
            Command::Report => put_u8(out, 5),
            Command::TakeTrace => put_u8(out, 6),
            Command::Shutdown => put_u8(out, 7),
            Command::Checkpoint { dir, step, tag } => {
                put_u8(out, 8);
                put_string(out, dir);
                put_usize(out, *step);
                crate::wire::put_u64(out, *tag);
            }
            Command::Restore { dir, step, tag } => {
                put_u8(out, 9);
                put_string(out, dir);
                put_usize(out, *step);
                crate::wire::put_u64(out, *tag);
            }
            Command::Infer {
                ids,
                batch,
                seq,
                micro,
            } => {
                put_u8(out, 10);
                put_usize(out, ids.len());
                for &id in ids {
                    put_usize(out, id);
                }
                put_usize(out, *batch);
                put_usize(out, *seq);
                put_usize(out, *micro);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.read_u8("command tag")? {
            0 => {
                let n = r.read_usize("forward id count")?;
                if n > 1 << 28 {
                    return Err(WireError {
                        what: "forward id count",
                    });
                }
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(r.read_usize("forward id")?);
                }
                Command::Forward {
                    ids,
                    batch: r.read_usize("forward batch")?,
                    seq: r.read_usize("forward seq")?,
                }
            }
            1 => Command::Backward {
                dhidden: Tensor::decode(r)?,
            },
            2 => Command::ZeroGrad,
            3 => Command::SgdStep {
                lr: r.read_f32("sgd lr")?,
            },
            4 => Command::CollectGrads,
            5 => Command::Report,
            6 => Command::TakeTrace,
            7 => Command::Shutdown,
            8 => Command::Checkpoint {
                dir: r.read_string("checkpoint dir")?,
                step: r.read_usize("checkpoint step")?,
                tag: r.read_u64("checkpoint tag")?,
            },
            9 => Command::Restore {
                dir: r.read_string("restore dir")?,
                step: r.read_usize("restore step")?,
                tag: r.read_u64("restore tag")?,
            },
            10 => {
                let n = r.read_usize("infer id count")?;
                if n > 1 << 28 {
                    return Err(WireError {
                        what: "infer id count",
                    });
                }
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(r.read_usize("infer id")?);
                }
                Command::Infer {
                    ids,
                    batch: r.read_usize("infer batch")?,
                    seq: r.read_usize("infer seq")?,
                    micro: r.read_usize("infer micro")?,
                }
            }
            _ => {
                return Err(WireError {
                    what: "command tag",
                })
            }
        })
    }
}

/// Responses ranks send back to the runtime.
pub(crate) enum Response {
    /// Command finished on this rank.
    Done,
    /// Final hidden states (sent by the last stage's rank 0 instead of
    /// `Done` for a forward command).
    Output { y: Tensor },
    /// Gradient snapshot.
    Grads { rank: usize, grads: RankGrads },
    /// Timer/byte snapshot.
    Report { report: Box<RankReport> },
    /// Recorded audit-trace events (empty when tracing is off).
    Trace {
        rank: usize,
        events: Vec<TraceEvent>,
    },
}

impl WireMsg for Response {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Done => put_u8(out, 0),
            Response::Output { y } => {
                put_u8(out, 1);
                y.encode(out);
            }
            Response::Grads { rank, grads } => {
                put_u8(out, 2);
                put_usize(out, *rank);
                grads.encode(out);
            }
            Response::Report { report } => {
                put_u8(out, 3);
                // Timers carry no bit-exactness requirement; JSON keeps
                // the codec in one place with the report's disk format.
                put_string(
                    out,
                    &serde_json::to_string(report.as_ref()).expect("report serializes"),
                );
            }
            Response::Trace { rank, events } => {
                // Process mode rejects tracing up front (the audit needs
                // in-process program order), so events are always empty
                // on the wire.
                debug_assert!(events.is_empty(), "trace events cannot cross processes");
                put_u8(out, 4);
                put_usize(out, *rank);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.read_u8("response tag")? {
            0 => Response::Done,
            1 => Response::Output {
                y: Tensor::decode(r)?,
            },
            2 => Response::Grads {
                rank: r.read_usize("grads rank")?,
                grads: RankGrads::decode(r)?,
            },
            3 => {
                let json = r.read_string("report json")?;
                let report: RankReport = serde_json::from_str(&json).map_err(|_| WireError {
                    what: "report json",
                })?;
                Response::Report {
                    report: Box::new(report),
                }
            }
            4 => Response::Trace {
                rank: r.read_usize("trace rank")?,
                events: Vec::new(),
            },
            _ => {
                return Err(WireError {
                    what: "response tag",
                })
            }
        })
    }
}

/// A message crossing a pipeline boundary in the forward direction.
pub(crate) enum FwdMsg {
    /// A compressed micro-batch activation.
    Activation(Compressed),
    /// Boundary-compressor parameter gradients, sent after the drain so
    /// the receiver's decode replica applies the identical SGD step.
    GradSync(Vec<Tensor>),
}

impl WireMsg for FwdMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            FwdMsg::Activation(c) => {
                put_u8(out, 0);
                c.encode(out);
            }
            FwdMsg::GradSync(v) => {
                put_u8(out, 1);
                v.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.read_u8("boundary message tag")? {
            0 => FwdMsg::Activation(Compressed::decode(r)?),
            1 => FwdMsg::GradSync(Vec::<Tensor>::decode(r)?),
            _ => {
                return Err(WireError {
                    what: "boundary message tag",
                })
            }
        })
    }
}

/// Sending half of a pipeline boundary (owned by `tp_index == 0` of
/// every non-final stage). Holds the authoritative compressor: it
/// compresses forward activations and runs the compressor backward on
/// the returning gradient, accumulating any compressor-parameter grads.
pub(crate) struct BoundarySender {
    pub comp: Box<dyn Compressor>,
    pub bytes: CommBytes,
    pub tx: MsgTx<FwdMsg>,
    pub grad_rx: MsgRx<Tensor>,
}

/// Receiving half of a pipeline boundary (owned by `tp_index == 0` of
/// every non-first stage). Holds a decode-only replica built from the
/// same seed as the sender's compressor and kept in lockstep via
/// [`FwdMsg::GradSync`].
pub(crate) struct BoundaryReceiver {
    pub replica: Box<dyn Compressor>,
    pub rx: MsgRx<FwdMsg>,
    pub grad_tx: MsgTx<Tensor>,
}

/// Replicated first-stage embeddings with per-micro-batch caches.
pub(crate) struct EmbeddingStage {
    pub tok: Embedding,
    pub pos: Embedding,
    pub emb_ln: LayerNorm,
    caches: Vec<(Vec<usize>, Vec<usize>, LnCache)>,
}

impl EmbeddingStage {
    pub fn new(tok: Embedding, pos: Embedding, emb_ln: LayerNorm) -> Self {
        EmbeddingStage {
            tok,
            pos,
            emb_ln,
            caches: Vec::new(),
        }
    }

    fn forward_mb(
        &mut self,
        ids: &[usize],
        mb_batch: usize,
        seq: usize,
        ws: &mut Workspace,
    ) -> Tensor {
        let t = self.tok.forward_cached(ids);
        let pos_ids: Vec<usize> = (0..mb_batch).flat_map(|_| 0..seq).collect();
        let p = self.pos.forward_cached(&pos_ids);
        // Fused residual + LN plan: the token+position sum never leaves
        // the compiled segment.
        let (x, cache) = self.emb_ln.forward_residual_cached_ws(&t, &p, ws);
        ws.recycle_tensor(t);
        ws.recycle_tensor(p);
        self.caches.push((ids.to_vec(), pos_ids, cache));
        x
    }

    fn backward_mb(&mut self, d: &Tensor, ws: &mut Workspace) {
        let (ids, pos_ids, cache) = self
            .caches
            .pop()
            .expect("embedding backward without forward");
        let demb = self.emb_ln.backward_cached_ws(d, cache, ws);
        self.tok.backward_ids(&ids, &demb);
        self.pos.backward_ids(&pos_ids, &demb);
        ws.recycle_tensor(demb);
    }

    /// Drops every cached forward without running backward — the
    /// forward-only serving path's per-batch cleanup. LN cache tensors
    /// go back to the arena.
    fn clear_caches(&mut self, ws: &mut Workspace) {
        for (_, _, cache) in self.caches.drain(..) {
            let (xhat, inv_std) = cache.into_parts();
            ws.recycle_tensor(xhat);
            ws.recycle_tensor(inv_std);
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.tok.visit_params(f);
        self.pos.visit_params(f);
        self.emb_ln.visit_params(f);
    }
}

/// One rank's gradient snapshot, reassembled by the driver into the
/// serial `MpBert::visit_all_params` order.
#[derive(Debug, Clone)]
pub struct RankGrads {
    /// `[tok, pos, emb_ln gain, emb_ln bias]` — stage-0 ranks only.
    pub embedding: Vec<Tensor>,
    /// Per owned layer, in stage order.
    pub layers: Vec<LayerGrads>,
    /// Boundary-compressor parameter grads (boundary senders only).
    pub boundary_comp: Vec<Tensor>,
}

/// One model-parallel rank: an OS thread owning a TP shard of one
/// pipeline stage.
pub(crate) struct RankWorker {
    pub rank: usize,
    pub stage: usize,
    pub tpi: usize,
    pub pp: usize,
    pub micro_batches: usize,
    pub embedding: Option<EmbeddingStage>,
    pub layers: Vec<RankLayer>,
    pub tp: TpGroup,
    /// Intra-stage broadcast: stage rank 0 fans decoded boundary
    /// tensors out to its TP peers.
    pub bcast_tx: Vec<MsgTx<Tensor>>,
    pub bcast_rx: Option<MsgRx<Tensor>>,
    pub send_b: Option<BoundarySender>,
    pub recv_b: Option<BoundaryReceiver>,
    pub timers: PhaseTimers,
    pub cmd_rx: Receiver<Command>,
    pub resp_tx: Sender<Response>,
    /// Audit-trace handle (same cell as this rank's `tp` group) for
    /// boundary and broadcast events; `None` records nothing.
    trace: Option<TraceHandle>,
    /// Stage-broadcast ordinal, reset per step; advances at every
    /// broadcast point even when `tp == 1` (mirrors the static graph).
    bcast_seq: usize,
    /// Per-micro-batch outputs buffered on the last stage.
    fwd_out: Vec<Tensor>,
    /// This rank's scratch arena: packing buffers, head blocks and
    /// gradient temporaries are reused across micro-batches and steps.
    ws: Workspace,
}

impl RankWorker {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rank: usize,
        stage: usize,
        tpi: usize,
        pp: usize,
        micro_batches: usize,
        embedding: Option<EmbeddingStage>,
        layers: Vec<RankLayer>,
        tp: TpGroup,
        bcast_tx: Vec<MsgTx<Tensor>>,
        bcast_rx: Option<MsgRx<Tensor>>,
        send_b: Option<BoundarySender>,
        recv_b: Option<BoundaryReceiver>,
        cmd_rx: Receiver<Command>,
        resp_tx: Sender<Response>,
        trace: Option<TraceHandle>,
    ) -> Self {
        RankWorker {
            rank,
            stage,
            tpi,
            pp,
            micro_batches,
            embedding,
            layers,
            tp,
            bcast_tx,
            bcast_rx,
            send_b,
            recv_b,
            timers: PhaseTimers::default(),
            cmd_rx,
            resp_tx,
            trace,
            bcast_seq: 0,
            fwd_out: Vec::new(),
            ws: Workspace::new(),
        }
    }

    /// Records one boundary/broadcast event when tracing is on.
    fn trace_event(&self, dir: Dir, channel: ChannelId, msg: MsgId, bytes: Option<usize>) {
        if let Some(trace) = &self.trace {
            trace.record(dir, channel, msg, bytes);
        }
    }

    fn is_last_stage(&self) -> bool {
        self.stage + 1 == self.pp
    }

    /// Whether this step's boundary traffic runs on helper threads that
    /// overlap ship/prefetch with the layer compute loop. Tracing forces
    /// the inline path: the audit compares against program-order event
    /// sequences, which overlap would reorder.
    fn overlap_boundaries(&self) -> bool {
        self.trace.is_none() && (self.send_b.is_some() || self.recv_b.is_some())
    }

    /// The worker loop: block on commands until shutdown.
    pub fn run(mut self) {
        while let Ok(cmd) = self.cmd_rx.recv() {
            match cmd {
                Command::Forward { ids, batch, seq } => self.forward(&ids, batch, seq),
                Command::Backward { dhidden } => self.backward(&dhidden),
                Command::ZeroGrad => {
                    self.visit_owned_params(&mut |p| p.zero_grad());
                    self.done();
                }
                Command::SgdStep { lr } => {
                    self.visit_owned_params(&mut |p| p.value.axpy(-lr, &p.grad));
                    self.done();
                }
                Command::CollectGrads => self.collect_grads(),
                Command::Report => {
                    let report = RankReport {
                        rank: self.rank,
                        stage: self.stage,
                        tp_index: self.tpi,
                        timers: self.timers,
                        reduce_bytes: self.tp.bytes,
                        ring_bytes: self.tp.ring_bytes,
                        boundary_bytes: self.send_b.as_ref().map(|b| b.bytes).unwrap_or_default(),
                    };
                    self.respond(Response::Report {
                        report: Box::new(report),
                    });
                }
                Command::TakeTrace => {
                    let events = self.trace.as_ref().map(|t| t.take()).unwrap_or_default();
                    self.respond(Response::Trace {
                        rank: self.rank,
                        events,
                    });
                }
                Command::Shutdown => break,
                Command::Checkpoint { dir, step, tag } => {
                    self.save_shard(std::path::Path::new(&dir), step, tag);
                    self.done();
                }
                Command::Restore { dir, step, tag } => {
                    self.load_shard(std::path::Path::new(&dir), step, tag);
                    self.done();
                }
                Command::Infer {
                    ids,
                    batch,
                    seq,
                    micro,
                } => self.infer(&ids, batch, seq, micro),
            }
        }
    }

    /// Writes every owned parameter, in visit order, as this rank's
    /// checkpoint shard. A failed write panics: the worker dies, the
    /// launcher sees the loss, and the supervisor treats it like any
    /// other crash — better than acking a checkpoint that isn't there.
    fn save_shard(&mut self, dir: &std::path::Path, step: usize, tag: u64) {
        let mut tensors = Vec::new();
        self.visit_owned_params(&mut |p| tensors.push(p.value.clone()));
        crate::shard::write_shard(dir, self.rank, step, tag, &tensors)
            .unwrap_or_else(|e| panic!("rank {} checkpoint failed: {e}", self.rank));
    }

    /// Restores every owned parameter from this rank's shard, in the
    /// same visit order it was written. Verification failures (CRC,
    /// run/step mismatch, wrong tensor count or shape) panic for the
    /// same reason a failed save does.
    fn load_shard(&mut self, dir: &std::path::Path, step: usize, tag: u64) {
        let tensors = crate::shard::read_shard(dir, self.rank, step, tag)
            .unwrap_or_else(|e| panic!("rank {} restore failed: {e}", self.rank));
        let mut i = 0;
        self.visit_owned_params(&mut |p| {
            let t = tensors
                .get(i)
                .unwrap_or_else(|| panic!("shard has only {i} tensors"));
            assert_eq!(
                t.dims(),
                p.value.dims(),
                "shard tensor {i} shape disagrees with the model"
            );
            p.value = t.clone();
            p.grad = Tensor::zeros_like(&p.value);
            i += 1;
        });
        assert_eq!(i, tensors.len(), "shard holds more tensors than the model");
    }

    fn done(&self) {
        self.respond(Response::Done);
    }

    fn respond(&self, resp: Response) {
        self.resp_tx.send(resp).expect("runtime hung up");
    }

    /// Broadcasts a tensor decoded on stage rank 0 to all TP peers, or
    /// receives it on a peer rank. The broadcast ordinal advances on
    /// every rank at every call — even solo ranks with nothing to send —
    /// so traced sequences stay aligned with the static graph.
    fn stage_broadcast(&mut self, t: Option<Tensor>) -> Tensor {
        let seq = self.bcast_seq;
        self.bcast_seq += 1;
        if self.tpi == 0 {
            let t = t.expect("stage rank 0 provides the broadcast value");
            timed(&mut self.timers.wire_s, || {
                for (i, tx) in self.bcast_tx.iter().enumerate() {
                    if let Some(trace) = &self.trace {
                        trace.record(
                            Dir::Send,
                            ChannelId::Bcast {
                                stage: self.stage,
                                peer: i + 1,
                            },
                            MsgId::Bcast { seq },
                            None,
                        );
                    }
                    tx.send(t.clone()).expect("stage peer hung up");
                }
            });
            t
        } else {
            let rx = self.bcast_rx.as_ref().expect("peer broadcast receiver");
            self.trace_event(
                Dir::Recv,
                ChannelId::Bcast {
                    stage: self.stage,
                    peer: self.tpi,
                },
                MsgId::Bcast { seq },
                None,
            );
            timed(&mut self.timers.wire_s, || {
                rx.recv().expect("stage rank 0 hung up")
            })
        }
    }

    /// GPipe fill: run this stage's forwards in the shared schedule's
    /// micro-batch order.
    fn forward(&mut self, ids: &[usize], batch: usize, seq: usize) {
        let m = self.micro_batches;
        self.run_forward(ids, batch, seq, m);
        self.respond_forward_output();
    }

    /// Forward-only pass over a coalesced request batch: `micro`
    /// micro-batches (one per request) instead of the configured
    /// training count, with every activation cache dropped afterwards —
    /// no backward follows, and serving must not grow memory per
    /// request.
    fn infer(&mut self, ids: &[usize], batch: usize, seq: usize, micro: usize) {
        self.run_forward(ids, batch, seq, micro);
        for layer in &mut self.layers {
            layer.clear_caches(&mut self.ws);
        }
        if let Some(emb) = self.embedding.as_mut() {
            emb.clear_caches(&mut self.ws);
        }
        self.respond_forward_output();
    }

    /// Shared fill body for `forward` and `infer`: reset per-step
    /// ordinals, then run the schedule with `m` micro-batches.
    fn run_forward(&mut self, ids: &[usize], batch: usize, seq: usize, m: usize) {
        // A forward command starts a new step: collective and broadcast
        // ordinals restart so traces match the per-step static graph.
        self.tp.reset_step();
        self.bcast_seq = 0;
        self.fwd_out.clear();
        if self.overlap_boundaries() {
            self.forward_overlapped(ids, batch, seq, m);
        } else {
            self.forward_inline(ids, batch, seq, m);
        }
    }

    /// The last stage's rank 0 answers a fill with the concatenated
    /// hidden states; everyone else just acks.
    fn respond_forward_output(&mut self) {
        if self.is_last_stage() && self.tpi == 0 {
            let parts: Vec<&Tensor> = self.fwd_out.iter().collect();
            self.respond(Response::Output {
                y: Tensor::concat_rows(&parts),
            });
        } else {
            self.done();
        }
    }

    /// The compute body of one forward micro-batch: embed or take the
    /// boundary activation (`decoded`, already decompressed on stage
    /// rank 0), broadcast it across the stage, run the owned layers, and
    /// hand the result to `emit` (buffering on the last stage, shipping
    /// across the boundary otherwise).
    fn forward_mb_body(
        &mut self,
        ids: &[usize],
        mb: usize,
        mb_batch: usize,
        seq: usize,
        decoded: Option<Tensor>,
        emit: &mut dyn FnMut(&mut Self, Tensor),
    ) {
        let mut x = if let Some(emb) = self.embedding.as_mut() {
            let lo = mb * mb_batch * seq;
            let hi = lo + mb_batch * seq;
            let t0 = std::time::Instant::now();
            let x = emb.forward_mb(&ids[lo..hi], mb_batch, seq, &mut self.ws);
            self.timers.compute_s += t0.elapsed().as_secs_f64();
            x
        } else {
            self.stage_broadcast(decoded)
        };
        for i in 0..self.layers.len() {
            // Split the borrow: the layer needs &mut self.tp/timers/ws.
            let (layers, tp, timers, ws) = (
                &mut self.layers,
                &mut self.tp,
                &mut self.timers,
                &mut self.ws,
            );
            let y = layers[i].forward(&x, mb_batch, seq, tp, timers, ws);
            self.ws.recycle_tensor(x);
            x = y;
        }
        if self.is_last_stage() {
            self.fwd_out.push(x);
        } else if self.tpi == 0 {
            emit(self, x);
        }
    }

    /// Inline forward path: boundary receives/decodes and encode/sends
    /// run on this thread, interleaved with compute (required under
    /// tracing, and what every non-boundary rank runs).
    fn forward_inline(&mut self, ids: &[usize], batch: usize, seq: usize, m: usize) {
        let mb_batch = batch / m;
        let order = gpipe_order(self.pp, m, self.stage);
        for op in order.into_iter().filter(|o| !o.backward) {
            let decoded = if self.embedding.is_none() && self.tpi == 0 {
                self.trace_event(
                    Dir::Recv,
                    ChannelId::BoundaryFwd {
                        boundary: self.stage - 1,
                    },
                    MsgId::Activation { mb: op.mb },
                    None,
                );
                let b = self.recv_b.as_mut().expect("non-first stage receiver");
                let msg = timed(&mut self.timers.wire_s, || {
                    b.rx.recv().expect("upstream stage hung up")
                });
                let msg = match msg {
                    FwdMsg::Activation(msg) => msg,
                    FwdMsg::GradSync(_) => panic!("grad sync during forward"),
                };
                Some(timed(&mut self.timers.decode_s, || {
                    b.replica.decompress(&msg)
                }))
            } else {
                None
            };
            let stage = self.stage;
            let trace = self.trace.clone();
            self.forward_mb_body(ids, op.mb, mb_batch, seq, decoded, &mut |me, x| {
                let b = me.send_b.as_mut().expect("non-final stage sender");
                let msg = timed(&mut me.timers.encode_s, || b.comp.compress(&x));
                b.bytes.add(CommBytes {
                    wire: msg.wire_bytes(2),
                    dense: x.len() * 2,
                });
                if let Some(trace) = &trace {
                    trace.record(
                        Dir::Send,
                        ChannelId::BoundaryFwd { boundary: stage },
                        MsgId::Activation { mb: op.mb },
                        Some(msg.wire_bytes(2)),
                    );
                }
                timed(&mut me.timers.wire_s, || {
                    b.tx.send(FwdMsg::Activation(msg))
                        .expect("downstream stage hung up")
                });
            });
        }
    }

    /// Overlapped forward path (untraced boundary ranks): a prefetch
    /// thread owns the receiving boundary half and decodes activations
    /// ahead of the compute loop; a ship thread owns the sending half
    /// and encodes/sends behind it. Compressor call order is unchanged
    /// (both hand-offs are FIFO in micro-batch order), so results are
    /// bitwise identical to the inline path.
    fn forward_overlapped(&mut self, ids: &[usize], batch: usize, seq: usize, m: usize) {
        let mb_batch = batch / m;
        let order = gpipe_order(self.pp, m, self.stage);
        let fwd_mbs: Vec<usize> = order
            .into_iter()
            .filter(|o| !o.backward)
            .map(|o| o.mb)
            .collect();
        let n_fwd = fwd_mbs.len();
        let send_b = self.send_b.take();
        let recv_b = self.recv_b.take();
        let (ship_tx, ship_rx) = channel::<Tensor>();
        let (dec_tx, dec_rx) = channel::<Tensor>();

        let (send_b, recv_b) = std::thread::scope(|s| {
            let ship = send_b.map(|mut b| {
                s.spawn(move || {
                    let mut timers = PhaseTimers::default();
                    for x in ship_rx {
                        let msg = timed(&mut timers.encode_s, || b.comp.compress(&x));
                        b.bytes.add(CommBytes {
                            wire: msg.wire_bytes(2),
                            dense: x.len() * 2,
                        });
                        timed(&mut timers.wire_s, || {
                            b.tx.send(FwdMsg::Activation(msg))
                                .expect("downstream stage hung up")
                        });
                    }
                    (b, timers)
                })
            });
            let prefetch = recv_b.map(|b| {
                s.spawn(move || {
                    let mut timers = PhaseTimers::default();
                    for _ in 0..n_fwd {
                        let msg = timed(&mut timers.wire_s, || {
                            b.rx.recv().expect("upstream stage hung up")
                        });
                        let msg = match msg {
                            FwdMsg::Activation(msg) => msg,
                            FwdMsg::GradSync(_) => panic!("grad sync during forward"),
                        };
                        let dec = timed(&mut timers.decode_s, || b.replica.decompress(&msg));
                        if dec_tx.send(dec).is_err() {
                            break;
                        }
                    }
                    (b, timers)
                })
            });

            for &mb in &fwd_mbs {
                let decoded = if self.embedding.is_none() && self.tpi == 0 {
                    Some(timed(&mut self.timers.wire_s, || {
                        dec_rx.recv().expect("upstream stage hung up")
                    }))
                } else {
                    None
                };
                self.forward_mb_body(ids, mb, mb_batch, seq, decoded, &mut |_, x| {
                    ship_tx.send(x).expect("boundary ship thread hung up");
                });
            }
            drop(ship_tx);
            let mut merge = |j: Option<std::thread::ScopedJoinHandle<'_, (_, PhaseTimers)>>| match j
            {
                Some(h) => {
                    let (b, t) = h.join().expect("boundary helper thread");
                    self.timers.add(&t);
                    Some(b)
                }
                None => None,
            };
            let send_b = merge(ship);
            let recv_b = match prefetch {
                Some(h) => {
                    let (b, t) = h.join().expect("boundary helper thread");
                    self.timers.add(&t);
                    Some(b)
                }
                None => None,
            };
            (send_b, recv_b)
        });
        self.send_b = send_b;
        self.recv_b = recv_b;
    }

    /// GPipe drain: run this stage's backwards in the shared schedule's
    /// (reversed) micro-batch order, then ring-sync compressor grads and
    /// forward the boundary grads to the decode replicas.
    fn backward(&mut self, dhidden: &Tensor) {
        if self.overlap_boundaries() {
            self.backward_overlapped(dhidden);
        } else {
            self.backward_inline(dhidden);
        }
        self.post_drain_sync();
        self.done();
    }

    /// The compute body of one backward micro-batch: seed the gradient
    /// (output slice on the last stage, `incoming` elsewhere), broadcast
    /// across the stage, run the owned layers in reverse, and hand the
    /// upstream-bound gradient to `emit` (embedding backward on stage 0,
    /// boundary ship otherwise).
    fn backward_mb_body(
        &mut self,
        dhidden: &Tensor,
        mb: usize,
        mb_rows: usize,
        incoming: Option<Tensor>,
        emit: &mut dyn FnMut(&mut Self, Tensor),
    ) {
        let mut d = if self.is_last_stage() {
            timed(&mut self.timers.compute_s, || {
                dhidden.slice_rows(mb * mb_rows, (mb + 1) * mb_rows)
            })
        } else {
            self.stage_broadcast(incoming)
        };
        for i in (0..self.layers.len()).rev() {
            let (layers, tp, timers, ws) = (
                &mut self.layers,
                &mut self.tp,
                &mut self.timers,
                &mut self.ws,
            );
            let nd = layers[i].backward(&d, tp, timers, ws);
            self.ws.recycle_tensor(d);
            d = nd;
        }
        if let Some(emb) = self.embedding.as_mut() {
            let t0 = std::time::Instant::now();
            let (d_ref, ws) = (&d, &mut self.ws);
            emb.backward_mb(d_ref, ws);
            self.timers.compute_s += t0.elapsed().as_secs_f64();
        } else if self.tpi == 0 {
            emit(self, d);
        }
    }

    /// Inline drain path (required under tracing; what non-boundary
    /// ranks always run).
    fn backward_inline(&mut self, dhidden: &Tensor) {
        let m = self.micro_batches;
        let rows = dhidden.dims()[0];
        let mb_rows = rows / m;
        let order = gpipe_order(self.pp, m, self.stage);
        for op in order.into_iter().filter(|o| o.backward) {
            let incoming = if !self.is_last_stage() && self.tpi == 0 {
                self.trace_event(
                    Dir::Recv,
                    ChannelId::BoundaryGrad {
                        boundary: self.stage,
                    },
                    MsgId::Grad { mb: op.mb },
                    None,
                );
                let b = self.send_b.as_mut().expect("non-final stage sender");
                let dy = timed(&mut self.timers.wire_s, || {
                    b.grad_rx.recv().expect("downstream stage hung up")
                });
                Some(timed(&mut self.timers.encode_s, || b.comp.backward(&dy)))
            } else {
                None
            };
            let stage = self.stage;
            let trace = self.trace.clone();
            self.backward_mb_body(dhidden, op.mb, mb_rows, incoming, &mut |me, d| {
                if let Some(trace) = &trace {
                    trace.record(
                        Dir::Send,
                        ChannelId::BoundaryGrad {
                            boundary: stage - 1,
                        },
                        MsgId::Grad { mb: op.mb },
                        None,
                    );
                }
                let b = me.recv_b.as_mut().expect("non-first stage receiver");
                timed(&mut me.timers.wire_s, || {
                    b.grad_tx.send(d).expect("upstream stage hung up")
                });
            });
        }
    }

    /// Overlapped drain path: a prefetch thread owns the sending
    /// boundary half, receiving downstream gradients and running the
    /// compressor backward ahead of the compute loop; a ship thread owns
    /// the receiving half and sends upstream gradients behind it. FIFO
    /// hand-offs keep the compressor call order identical to inline.
    fn backward_overlapped(&mut self, dhidden: &Tensor) {
        let m = self.micro_batches;
        let rows = dhidden.dims()[0];
        let mb_rows = rows / m;
        let order = gpipe_order(self.pp, m, self.stage);
        let bwd_mbs: Vec<usize> = order
            .into_iter()
            .filter(|o| o.backward)
            .map(|o| o.mb)
            .collect();
        let n_bwd = bwd_mbs.len();
        let send_b = self.send_b.take();
        let recv_b = self.recv_b.take();
        let (grad_out_tx, grad_out_rx) = channel::<Tensor>();
        let (grad_in_tx, grad_in_rx) = channel::<Tensor>();

        let (send_b, recv_b) = std::thread::scope(|s| {
            let prefetch = send_b.map(|mut b| {
                s.spawn(move || {
                    let mut timers = PhaseTimers::default();
                    for _ in 0..n_bwd {
                        let dy = timed(&mut timers.wire_s, || {
                            b.grad_rx.recv().expect("downstream stage hung up")
                        });
                        let d = timed(&mut timers.encode_s, || b.comp.backward(&dy));
                        if grad_in_tx.send(d).is_err() {
                            break;
                        }
                    }
                    (b, timers)
                })
            });
            let ship = recv_b.map(|b| {
                s.spawn(move || {
                    let mut timers = PhaseTimers::default();
                    for d in grad_out_rx {
                        timed(&mut timers.wire_s, || {
                            b.grad_tx.send(d).expect("upstream stage hung up")
                        });
                    }
                    (b, timers)
                })
            });

            for &mb in &bwd_mbs {
                let incoming = if !self.is_last_stage() && self.tpi == 0 {
                    Some(timed(&mut self.timers.wire_s, || {
                        grad_in_rx.recv().expect("downstream stage hung up")
                    }))
                } else {
                    None
                };
                self.backward_mb_body(dhidden, mb, mb_rows, incoming, &mut |_, d| {
                    grad_out_tx.send(d).expect("boundary ship thread hung up");
                });
            }
            drop(grad_out_tx);
            let send_b = match prefetch {
                Some(h) => {
                    let (b, t) = h.join().expect("boundary helper thread");
                    self.timers.add(&t);
                    Some(b)
                }
                None => None,
            };
            let recv_b = match ship {
                Some(h) => {
                    let (b, t) = h.join().expect("boundary helper thread");
                    self.timers.add(&t);
                    Some(b)
                }
                None => None,
            };
            (send_b, recv_b)
        });
        self.send_b = send_b;
        self.recv_b = recv_b;
    }

    /// Post-drain synchronization, in the serial executor's order:
    /// per-layer compressor grads first, then boundary replicas. Runs
    /// with both boundary halves restored to this thread.
    fn post_drain_sync(&mut self) {
        for layer in &mut self.layers {
            layer.sync_compressor_grads(&mut self.tp, &mut self.timers);
        }
        if self.send_b.is_some() {
            self.trace_event(
                Dir::Send,
                ChannelId::BoundaryFwd {
                    boundary: self.stage,
                },
                MsgId::GradSync,
                None,
            );
        }
        if let Some(b) = self.send_b.as_mut() {
            let mut grads = Vec::new();
            b.comp.visit_params(&mut |p| grads.push(p.grad.clone()));
            timed(&mut self.timers.wire_s, || {
                b.tx.send(FwdMsg::GradSync(grads))
                    .expect("downstream stage hung up")
            });
        }
        if self.recv_b.is_some() {
            self.trace_event(
                Dir::Recv,
                ChannelId::BoundaryFwd {
                    boundary: self.stage - 1,
                },
                MsgId::GradSync,
                None,
            );
        }
        if let Some(b) = self.recv_b.as_mut() {
            let msg = timed(&mut self.timers.wire_s, || {
                b.rx.recv().expect("upstream stage hung up")
            });
            match msg {
                FwdMsg::GradSync(grads) => {
                    let mut i = 0;
                    b.replica.visit_params(&mut |p| {
                        p.grad = grads[i].clone();
                        i += 1;
                    });
                }
                FwdMsg::Activation(_) => panic!("activation during grad sync"),
            }
        }
    }

    /// Visits every parameter this rank owns and updates with SGD:
    /// embeddings (stage 0), layer shards and replicas, layer
    /// compressors, and both halves of adjacent pipeline boundaries.
    fn visit_owned_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        if let Some(emb) = self.embedding.as_mut() {
            emb.visit_params(f);
        }
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
        for layer in &mut self.layers {
            layer.visit_compressor_params(f);
        }
        if let Some(b) = self.send_b.as_mut() {
            b.comp.visit_params(f);
        }
        if let Some(b) = self.recv_b.as_mut() {
            b.replica.visit_params(f);
        }
    }

    fn collect_grads(&mut self) {
        let embedding = match self.embedding.as_mut() {
            Some(emb) => {
                let mut v = Vec::new();
                emb.visit_params(&mut |p| v.push(p.grad.clone()));
                v
            }
            None => Vec::new(),
        };
        let layers: Vec<LayerGrads> = self.layers.iter_mut().map(|l| l.grads()).collect();
        let boundary_comp = match self.send_b.as_mut() {
            Some(b) => {
                let mut v = Vec::new();
                b.comp.visit_params(&mut |p| v.push(p.grad.clone()));
                v
            }
            None => Vec::new(),
        };
        self.respond(Response::Grads {
            rank: self.rank,
            grads: RankGrads {
                embedding,
                layers,
                boundary_comp,
            },
        });
    }
}
