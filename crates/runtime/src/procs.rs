//! Multi-process execution: a launcher that spawns one OS process per
//! model-parallel rank and drives them over a control-plane connection,
//! plus the worker side that each spawned process runs.
//!
//! # Rendezvous protocol
//!
//! The launcher (rank 0's process, `actcomp run --backend procs`) binds
//! a [`CtrlListener`] and spawns `tp · pp` workers
//! (`actcomp worker --rank N --world W --coord ADDR …`), passing the
//! run configuration as JSON in the `ACTCOMP_WORKER_CFG` environment
//! variable and the seed as a flag (the seed must not cross JSON: the
//! vendored parser is `f64`-backed). Each worker then:
//!
//! 1. dials the coordinator and binds its data-plane
//!    [`SocketTransport`], sending `Hello { rank, data_addr }`;
//! 2. receives the full `PeerTable` once every worker has reported,
//!    opens its data links (`build_rank_links`), rebuilds the model
//!    from the shared seed with the exact RNG draw order of the
//!    threaded engine, and replies `Ready`;
//! 3. loops: receive a `Command` frame, hand it to its rank worker
//!    (an ordinary `RankWorker` on its own thread), and return the
//!    `Response` — until `Shutdown`.
//!
//! All processes derive the same `config_hash` (FNV-1a over the config
//! JSON and the seed), which the data-plane handshake verifies, so a
//! stray worker from a different run is rejected with a typed error.
//!
//! # Failure semantics
//!
//! A worker that dies mid-run closes its control connection and its
//! data connections. Data-plane peers observe
//! [`TransportError::PeerClosed`], fail their own step, and exit; the
//! launcher observes the control-plane close (or a timeout) and
//! surfaces [`ProcsError::WorkerLost`] instead of hanging. Remaining
//! children are killed on drop.

use crate::config::{RuntimeConfig, RuntimeError};
use crate::link::build_rank_links;
use crate::rank::{Command, Response};
use crate::report::{RankReport, RuntimeReport};
use crate::runtime::{assemble_grads, Seeds, WorkerBuilder};
use crate::wire::{
    decode_msg, encode_msg, put_string, put_u8, put_usize, Reader, WireError, WireMsg,
};
use actcomp_net::{
    CtrlConn, CtrlListener, SocketOptions, SocketTransport, Transport, TransportError,
    TransportKind,
};
use actcomp_nn::BertEncoder;
use actcomp_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::process::Child;
use std::time::Duration;

/// Environment variable carrying the run configuration JSON to workers.
pub const WORKER_CFG_ENV: &str = "ACTCOMP_WORKER_CFG";

/// Default launcher-side deadline for workers to dial in and report
/// ready (covers model construction in the workers). Override with
/// [`ProcsOptions::rendezvous_timeout`].
pub const DEFAULT_RENDEZVOUS_TIMEOUT: Duration = Duration::from_secs(120);
/// Default launcher-side deadline for a step response. Generous: a full
/// BERT-Large step on a loaded machine is minutes — a dead worker is
/// detected within the 10-second liveness window instead, by its
/// closed connection or its missing heartbeats. Override with
/// [`ProcsOptions::step_timeout`].
pub const DEFAULT_STEP_TIMEOUT: Duration = Duration::from_secs(600);
/// How long a worker waits for the coordinator during rendezvous.
const WORKER_DIAL_TIMEOUT: Duration = Duration::from_secs(30);
/// How often a worker pings the launcher while its rank thread is busy
/// computing a command, so a slow step is distinguishable from a dead
/// process.
const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(250);
/// How much total control-plane silence (no response, no heartbeat) the
/// launcher tolerates from a worker that owes it a response. Detection
/// of a hung rank is bounded by this window, not the step timeout.
const LIVENESS_WINDOW: Duration = Duration::from_secs(10);

/// Errors launching or driving a multi-process run.
#[derive(Debug)]
pub enum ProcsError {
    /// The run configuration is invalid.
    Config(RuntimeError),
    /// The control or data plane failed.
    Transport(TransportError),
    /// Audit tracing needs in-process event cells; procs mode rejects
    /// it up front (`actcomp check` reports this as `AC0705`).
    TraceUnsupported,
    /// `mpsc` cannot cross process boundaries.
    MpscUnsupported,
    /// Spawning a worker process failed.
    Spawn {
        /// Rank being spawned.
        rank: usize,
        /// OS error rendering.
        detail: String,
    },
    /// A worker's control connection closed or timed out mid-run.
    WorkerLost {
        /// The lost worker's rank (`None` before ranks are known).
        rank: Option<usize>,
        /// What the launcher was doing.
        detail: String,
    },
    /// A worker went silent — its connection is still open, but neither
    /// a response nor a heartbeat arrived within the liveness window
    /// (or the step timeout expired with only heartbeats).
    RankTimeout {
        /// The silent worker's rank.
        rank: usize,
        /// How long the launcher waited before giving up.
        after: Duration,
    },
    /// A control frame arrived that does not fit the protocol.
    Protocol {
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for ProcsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcsError::Config(e) => write!(f, "{e}"),
            ProcsError::Transport(e) => write!(f, "{e}"),
            ProcsError::TraceUnsupported => {
                write!(f, "comm tracing is not supported in procs mode")
            }
            ProcsError::MpscUnsupported => {
                write!(f, "the mpsc transport cannot cross process boundaries")
            }
            ProcsError::Spawn { rank, detail } => {
                write!(f, "spawning worker {rank}: {detail}")
            }
            ProcsError::WorkerLost { rank, detail } => match rank {
                Some(r) => write!(f, "worker {r} lost: {detail}"),
                None => write!(f, "worker lost: {detail}"),
            },
            ProcsError::RankTimeout { rank, after } => write!(
                f,
                "rank {rank} silent for {:.1}s (no response, no heartbeat)",
                after.as_secs_f64()
            ),
            ProcsError::Protocol { detail } => {
                write!(f, "control protocol violation: {detail}")
            }
        }
    }
}

impl std::error::Error for ProcsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProcsError::Config(e) => Some(e),
            ProcsError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for ProcsError {
    fn from(e: RuntimeError) -> Self {
        ProcsError::Config(e)
    }
}

impl From<TransportError> for ProcsError {
    fn from(e: TransportError) -> Self {
        ProcsError::Transport(e)
    }
}

/// FNV-1a 64 over the config JSON and the run seed — the value every
/// process must agree on for the data-plane handshake to accept.
pub fn config_hash(cfg_json: &str, seed: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in cfg_json.bytes().chain(seed.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Control-plane frames between launcher and workers.
enum CtrlMsg {
    /// Worker → launcher: here I am, my data plane listens at `addr`.
    Hello { rank: usize, data_addr: String },
    /// Launcher → worker: every rank's data-plane address, by index.
    PeerTable { addrs: Vec<String> },
    /// Worker → launcher: links open, model built, command loop armed.
    Ready,
    /// Launcher → worker: one runtime command.
    Cmd(Command),
    /// Worker → launcher: the command's response.
    Resp(Response),
    /// Worker → launcher: still alive, still computing. Sent while a
    /// command runs so the launcher can bound failure detection by the
    /// liveness window instead of the step timeout.
    Heartbeat,
}

impl WireMsg for CtrlMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CtrlMsg::Hello { rank, data_addr } => {
                put_u8(out, 1);
                put_usize(out, *rank);
                put_string(out, data_addr);
            }
            CtrlMsg::PeerTable { addrs } => {
                put_u8(out, 2);
                put_usize(out, addrs.len());
                for a in addrs {
                    put_string(out, a);
                }
            }
            CtrlMsg::Ready => put_u8(out, 3),
            CtrlMsg::Cmd(cmd) => {
                put_u8(out, 4);
                cmd.encode(out);
            }
            CtrlMsg::Resp(resp) => {
                put_u8(out, 5);
                resp.encode(out);
            }
            CtrlMsg::Heartbeat => put_u8(out, 6),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.read_u8("control tag")? {
            1 => CtrlMsg::Hello {
                rank: r.read_usize("hello rank")?,
                data_addr: r.read_string("hello addr")?,
            },
            2 => {
                let n = r.read_usize("peer table size")?;
                if n > 1 << 16 {
                    return Err(WireError {
                        what: "peer table size",
                    });
                }
                let mut addrs = Vec::with_capacity(n);
                for _ in 0..n {
                    addrs.push(r.read_string("peer address")?);
                }
                CtrlMsg::PeerTable { addrs }
            }
            3 => CtrlMsg::Ready,
            4 => CtrlMsg::Cmd(Command::decode(r)?),
            5 => CtrlMsg::Resp(Response::decode(r)?),
            6 => CtrlMsg::Heartbeat,
            _ => {
                return Err(WireError {
                    what: "control tag",
                })
            }
        })
    }
}

fn send_ctrl(conn: &mut CtrlConn, msg: &CtrlMsg) -> Result<(), TransportError> {
    conn.send(&encode_msg(msg))
}

fn recv_ctrl(conn: &mut CtrlConn, timeout: Duration) -> Result<CtrlMsg, ProcsError> {
    let frame = conn.recv(timeout)?;
    decode_msg(&frame).map_err(|e| ProcsError::Protocol {
        detail: e.to_string(),
    })
}

/// How to launch a multi-process run.
#[derive(Clone)]
pub struct ProcsOptions {
    /// The run configuration (shared verbatim with every worker).
    pub cfg: RuntimeConfig,
    /// Seed for model and compressor construction; all processes draw
    /// the identical parameter and compressor state from it.
    pub seed: u64,
    /// Data-plane wire: [`TransportKind::Uds`] or [`TransportKind::Tcp`].
    pub kind: TransportKind,
    /// Outgoing per-rank bandwidth cap in Mbit/s (TCP only).
    pub link_mbps: Option<f64>,
    /// The worker executable; `None` re-executes the current binary
    /// (the CLI's hidden `worker` subcommand).
    pub worker_exe: Option<PathBuf>,
    /// Test hook: this rank exits right after rendezvous, simulating a
    /// mid-run crash.
    pub fail_rank: Option<usize>,
    /// Launcher-side deadline for one step response. Heartbeats keep a
    /// slow rank alive within it; detection of a *silent* rank is
    /// bounded by the (much shorter) liveness window.
    pub step_timeout: Duration,
    /// Deadline for the whole rendezvous (dial-in, peer table, ready).
    pub rendezvous_timeout: Duration,
    /// Restart generation: 0 for a fresh run, incremented by the
    /// supervisor on every relaunch after a worker loss. Carried in the
    /// data-plane handshake, so a fenced-off survivor of a previous
    /// generation is refused with a typed handshake error.
    pub epoch: u32,
    /// Fault-injection spec (see `actcomp_net::FaultPlan`), passed
    /// verbatim to every worker. `None`: no injection.
    pub fault: Option<String>,
}

impl ProcsOptions {
    /// Options for a plain (fault-free, first-generation) run with the
    /// default timeouts.
    pub fn new(cfg: RuntimeConfig, seed: u64, kind: TransportKind) -> ProcsOptions {
        ProcsOptions {
            cfg,
            seed,
            kind,
            link_mbps: None,
            worker_exe: None,
            fail_rank: None,
            step_timeout: DEFAULT_STEP_TIMEOUT,
            rendezvous_timeout: DEFAULT_RENDEZVOUS_TIMEOUT,
            epoch: 0,
            fault: None,
        }
    }
}

/// One spawned worker as the launcher sees it.
struct WorkerHandle {
    child: Child,
    ctrl: CtrlConn,
}

/// The launcher's handle on a multi-process run: the process-mode
/// equivalent of [`ThreadedRuntime`](crate::ThreadedRuntime), with the
/// same step operations but every rank in its own OS process.
pub struct ProcsRuntime {
    workers: Vec<WorkerHandle>,
    cfg: RuntimeConfig,
    /// Per-step response deadline (heartbeat-extended liveness aside).
    step_timeout: Duration,
    /// The run's config hash — stamped into checkpoint shards so a
    /// restore from a different run is refused.
    tag: u64,
}

impl std::fmt::Debug for ProcsRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ProcsRuntime(tp={}, pp={}, workers={})",
            self.cfg.mp.tp,
            self.cfg.mp.pp,
            self.workers.len()
        )
    }
}

impl ProcsRuntime {
    /// Spawns the worker processes and runs the rendezvous to a fully
    /// connected, ready world.
    ///
    /// # Errors
    ///
    /// Typed errors for invalid configs ([`ProcsError::Config`],
    /// [`ProcsError::TraceUnsupported`], [`ProcsError::MpscUnsupported`]),
    /// spawn failures, and any worker that dies or times out during
    /// rendezvous ([`ProcsError::WorkerLost`]). Never hangs: every
    /// control-plane wait has a deadline.
    pub fn launch(opts: ProcsOptions) -> Result<ProcsRuntime, ProcsError> {
        opts.cfg.try_validate()?;
        if opts.cfg.trace {
            return Err(ProcsError::TraceUnsupported);
        }
        if opts.kind == TransportKind::Mpsc {
            return Err(ProcsError::MpscUnsupported);
        }
        if let Some(spec) = &opts.fault {
            // Validate up front so a typo dies in the launcher, not as
            // a protocol error in every worker.
            actcomp_net::FaultPlan::parse(spec).map_err(|e| ProcsError::Protocol {
                detail: format!("fault spec: {e}"),
            })?;
        }
        let world = opts.cfg.world();
        let cfg_json = serde_json::to_string(&opts.cfg).expect("config serializes");
        let tag = config_hash(&cfg_json, opts.seed);
        let exe = match &opts.worker_exe {
            Some(p) => p.clone(),
            None => std::env::current_exe().map_err(|e| ProcsError::Spawn {
                rank: 0,
                detail: format!("resolving the worker executable: {e}"),
            })?,
        };
        let listener = CtrlListener::bind(opts.kind)?;

        // Spawn all workers, then rendezvous. Children are killed on
        // any error path via the handles collected so far.
        let mut children: Vec<Child> = Vec::with_capacity(world);
        let spawn_all = (0..world).try_for_each(|rank| -> Result<(), ProcsError> {
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("worker")
                .arg("--rank")
                .arg(rank.to_string())
                .arg("--world")
                .arg(world.to_string())
                .arg("--coord")
                .arg(listener.addr())
                .arg("--transport")
                .arg(opts.kind.name())
                .arg("--seed")
                .arg(opts.seed.to_string())
                .arg("--epoch")
                .arg(opts.epoch.to_string())
                .arg("--rendezvous-timeout-ms")
                .arg(opts.rendezvous_timeout.as_millis().to_string())
                .env(WORKER_CFG_ENV, &cfg_json);
            if let Some(mbps) = opts.link_mbps {
                cmd.arg("--link-mbps").arg(mbps.to_string());
            }
            if let Some(spec) = &opts.fault {
                cmd.arg("--fault").arg(spec);
            }
            if opts.fail_rank == Some(rank) {
                cmd.arg("--fail-after-rendezvous");
            }
            let child = cmd.spawn().map_err(|e| ProcsError::Spawn {
                rank,
                detail: e.to_string(),
            })?;
            children.push(child);
            Ok(())
        });
        if let Err(e) = spawn_all {
            for c in &mut children {
                let _ = c.kill();
                let _ = c.wait();
            }
            return Err(e);
        }

        match Self::rendezvous(&listener, children, world, &opts) {
            Ok(workers) => Ok(ProcsRuntime {
                workers,
                cfg: opts.cfg.clone(),
                step_timeout: opts.step_timeout,
                tag,
            }),
            Err(e) => Err(e),
        }
    }

    /// Accepts every worker's dial-in, distributes the peer table, and
    /// waits for all ranks to report ready. Kills the children on any
    /// failure.
    fn rendezvous(
        listener: &CtrlListener,
        mut children: Vec<Child>,
        world: usize,
        opts: &ProcsOptions,
    ) -> Result<Vec<WorkerHandle>, ProcsError> {
        let rdv = opts.rendezvous_timeout;
        let kill_all = |children: &mut Vec<Child>| {
            for c in children.iter_mut() {
                let _ = c.kill();
                let _ = c.wait();
            }
        };
        let result = || -> Result<(Vec<Option<CtrlConn>>, Vec<String>), ProcsError> {
            let mut conns: Vec<Option<CtrlConn>> = (0..world).map(|_| None).collect();
            let mut addrs: Vec<String> = vec![String::new(); world];
            for _ in 0..world {
                let mut conn = listener.accept(rdv)?;
                match recv_ctrl(&mut conn, rdv)? {
                    CtrlMsg::Hello { rank, data_addr } => {
                        if rank >= world || conns[rank].is_some() {
                            return Err(ProcsError::Protocol {
                                detail: format!("duplicate or out-of-range hello from rank {rank}"),
                            });
                        }
                        addrs[rank] = data_addr;
                        conns[rank] = Some(conn);
                    }
                    _ => {
                        return Err(ProcsError::Protocol {
                            detail: "expected a hello frame".to_string(),
                        })
                    }
                }
            }
            Ok((conns, addrs))
        };
        let (mut conns, addrs) = match result() {
            Ok(v) => v,
            Err(e) => {
                kill_all(&mut children);
                return Err(e);
            }
        };

        let table = CtrlMsg::PeerTable { addrs };
        for (rank, conn) in conns.iter_mut().enumerate() {
            let conn = conn.as_mut().expect("all ranks said hello");
            if let Err(e) = send_ctrl(conn, &table) {
                kill_all(&mut children);
                return Err(ProcsError::WorkerLost {
                    rank: Some(rank),
                    detail: format!("sending the peer table: {e}"),
                });
            }
        }
        for (rank, conn) in conns.iter_mut().enumerate() {
            let conn = conn.as_mut().expect("all ranks said hello");
            match recv_ctrl(conn, rdv) {
                Ok(CtrlMsg::Ready) => {}
                Ok(_) => {
                    kill_all(&mut children);
                    return Err(ProcsError::Protocol {
                        detail: format!("expected ready from rank {rank}"),
                    });
                }
                Err(e) => {
                    kill_all(&mut children);
                    return Err(ProcsError::WorkerLost {
                        rank: Some(rank),
                        detail: format!("waiting for ready: {e}"),
                    });
                }
            }
        }

        Ok(children
            .into_iter()
            .zip(conns)
            .map(|(child, ctrl)| WorkerHandle {
                child,
                ctrl: ctrl.expect("all ranks said hello"),
            })
            .collect())
    }

    /// The run configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Total rank (process) count.
    pub fn world(&self) -> usize {
        self.cfg.world()
    }

    /// The run's config hash (the checkpoint/handshake stamp).
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Sends one command to every worker.
    fn broadcast(&mut self, cmd: &Command) -> Result<(), ProcsError> {
        let frame = CtrlMsg::Cmd(cmd.clone());
        for (rank, w) in self.workers.iter_mut().enumerate() {
            send_ctrl(&mut w.ctrl, &frame).map_err(|e| ProcsError::WorkerLost {
                rank: Some(rank),
                detail: format!("sending a command: {e}"),
            })?;
        }
        Ok(())
    }

    /// Collects one response per worker, in rank order.
    ///
    /// A busy worker emits heartbeats while its rank thread computes,
    /// so the launcher tolerates up to the full step timeout of
    /// heartbeat-backed computation but only [`LIVENESS_WINDOW`] of
    /// *silence* — a dead or hung rank surfaces as a typed
    /// [`ProcsError::RankTimeout`] (or [`ProcsError::WorkerLost`] on a
    /// closed connection) in seconds, not minutes.
    fn collect(&mut self) -> Result<Vec<Response>, ProcsError> {
        let step_timeout = self.step_timeout;
        let mut out = Vec::with_capacity(self.workers.len());
        for (rank, w) in self.workers.iter_mut().enumerate() {
            let deadline = std::time::Instant::now() + step_timeout;
            let resp = loop {
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(ProcsError::RankTimeout {
                        rank,
                        after: step_timeout,
                    });
                }
                let window = LIVENESS_WINDOW.min(deadline - now);
                match recv_ctrl(&mut w.ctrl, window) {
                    Ok(CtrlMsg::Heartbeat) => continue,
                    Ok(CtrlMsg::Resp(resp)) => break resp,
                    Ok(_) => {
                        return Err(ProcsError::Protocol {
                            detail: format!("expected a response from rank {rank}"),
                        })
                    }
                    Err(ProcsError::Transport(TransportError::Timeout { .. })) => {
                        return Err(ProcsError::RankTimeout {
                            rank,
                            after: window,
                        })
                    }
                    Err(ProcsError::Transport(e)) => {
                        return Err(ProcsError::WorkerLost {
                            rank: Some(rank),
                            detail: format!("waiting for a response: {e}"),
                        })
                    }
                    Err(e) => return Err(e),
                }
            };
            out.push(resp);
        }
        Ok(out)
    }

    /// Runs a pipelined forward pass over the whole batch, returning
    /// the final hidden states `[batch · seq, hidden]`.
    pub fn forward(
        &mut self,
        ids: &[usize],
        batch: usize,
        seq: usize,
    ) -> Result<Tensor, ProcsError> {
        self.broadcast(&Command::Forward {
            ids: ids.to_vec(),
            batch,
            seq,
        })?;
        let mut out = None;
        for resp in self.collect()? {
            if let Response::Output { y } = resp {
                out = Some(y);
            }
        }
        out.ok_or_else(|| ProcsError::Protocol {
            detail: "no rank produced a forward output".to_string(),
        })
    }

    /// Dispatches a forward-only inference pass over a coalesced
    /// request batch (one micro-batch per request) without waiting for
    /// the result — the process-mode half of the serving engine's
    /// continuous-batching overlap. Pair with [`Self::infer_wait`].
    pub fn infer_submit(
        &mut self,
        ids: &[usize],
        nreq: usize,
        seq: usize,
    ) -> Result<(), ProcsError> {
        if nreq == 0 {
            return Err(ProcsError::Config(RuntimeError::ZeroMicroBatches));
        }
        if ids.len() != nreq * seq {
            return Err(ProcsError::Config(RuntimeError::IdsLengthMismatch {
                len: ids.len(),
                batch: nreq,
                seq,
            }));
        }
        self.broadcast(&Command::Infer {
            ids: ids.to_vec(),
            batch: nreq,
            seq,
            micro: nreq,
        })
    }

    /// Collects the result of the oldest outstanding
    /// [`Self::infer_submit`]. A worker that dies or goes silent
    /// mid-batch surfaces as a typed [`ProcsError::WorkerLost`] /
    /// [`ProcsError::RankTimeout`] within the liveness window — serving
    /// never hangs on a dead rank.
    pub fn infer_wait(&mut self) -> Result<Tensor, ProcsError> {
        let mut out = None;
        for resp in self.collect()? {
            if let Response::Output { y } = resp {
                out = Some(y);
            }
        }
        out.ok_or_else(|| ProcsError::Protocol {
            detail: "no rank produced an inference output".to_string(),
        })
    }

    /// [`Self::infer_submit`] + [`Self::infer_wait`] in one call.
    pub fn infer(&mut self, ids: &[usize], nreq: usize, seq: usize) -> Result<Tensor, ProcsError> {
        self.infer_submit(ids, nreq, seq)?;
        self.infer_wait()
    }

    /// Runs the pipelined backward pass from the gradient of the final
    /// hidden states.
    pub fn backward(&mut self, dhidden: &Tensor) -> Result<(), ProcsError> {
        self.broadcast(&Command::Backward {
            dhidden: dhidden.clone(),
        })?;
        self.collect()?;
        Ok(())
    }

    /// Zeroes every parameter gradient on every rank.
    pub fn zero_grad(&mut self) -> Result<(), ProcsError> {
        self.broadcast(&Command::ZeroGrad)?;
        self.collect()?;
        Ok(())
    }

    /// Applies one SGD step with learning rate `lr` on every rank.
    pub fn sgd_step(&mut self, lr: f32) -> Result<(), ProcsError> {
        self.broadcast(&Command::SgdStep { lr })?;
        self.collect()?;
        Ok(())
    }

    /// Takes a distributed checkpoint at `step`: every rank writes its
    /// parameter shard to `dir/rank-<r>.ckpt`, CRC-trailed and stamped
    /// with the run's config hash and the step, so a restore from the
    /// wrong run (or the wrong point) is refused instead of silently
    /// diverging.
    pub fn checkpoint(&mut self, dir: &std::path::Path, step: usize) -> Result<(), ProcsError> {
        self.broadcast(&Command::Checkpoint {
            dir: dir.to_string_lossy().into_owned(),
            step,
            tag: self.tag,
        })?;
        self.collect()?;
        Ok(())
    }

    /// Restores every rank's parameter shard from the checkpoint taken
    /// at `step` in `dir`. Shards are CRC-verified and must carry this
    /// run's config hash and the requested step.
    pub fn restore(&mut self, dir: &std::path::Path, step: usize) -> Result<(), ProcsError> {
        self.broadcast(&Command::Restore {
            dir: dir.to_string_lossy().into_owned(),
            step,
            tag: self.tag,
        })?;
        self.collect()?;
        Ok(())
    }

    /// Gathers all parameter gradients, reassembled into the serial
    /// executor's visit order — byte-for-byte the same list the threads
    /// backend returns (conformance-test enforced).
    pub fn collect_grads(&mut self) -> Result<Vec<Tensor>, ProcsError> {
        self.broadcast(&Command::CollectGrads)?;
        let mut per_rank: Vec<Option<crate::rank::RankGrads>> =
            (0..self.world()).map(|_| None).collect();
        for resp in self.collect()? {
            if let Response::Grads { rank, grads } = resp {
                if rank < per_rank.len() {
                    per_rank[rank] = Some(grads);
                }
            }
        }
        let grads: Vec<crate::rank::RankGrads> = per_rank
            .into_iter()
            .enumerate()
            .map(|(r, g)| {
                g.ok_or_else(|| ProcsError::Protocol {
                    detail: format!("rank {r} did not report grads"),
                })
            })
            .collect::<Result<_, _>>()?;
        Ok(assemble_grads(&self.cfg, &grads))
    }

    /// Gathers per-rank timers and byte counters into the aggregated
    /// report.
    pub fn report(&mut self) -> Result<RuntimeReport, ProcsError> {
        self.broadcast(&Command::Report)?;
        let mut ranks: Vec<RankReport> = self
            .collect()?
            .into_iter()
            .filter_map(|r| match r {
                Response::Report { report } => Some(*report),
                _ => None,
            })
            .collect();
        ranks.sort_by_key(|r| r.rank);
        Ok(RuntimeReport::from_ranks(
            self.cfg.mp.tp,
            self.cfg.mp.pp,
            self.cfg.micro_batches,
            ranks,
        ))
    }

    /// Graceful teardown: shuts every worker down and reaps it.
    pub fn shutdown(mut self) -> Result<(), ProcsError> {
        let _ = self.broadcast(&Command::Shutdown);
        for w in self.workers.iter_mut() {
            let _ = w.child.wait();
        }
        self.workers.clear();
        Ok(())
    }
}

impl Drop for ProcsRuntime {
    fn drop(&mut self) {
        // Best-effort: ask nicely, then make sure nothing lingers.
        let _ = self.broadcast(&Command::Shutdown);
        for w in self.workers.iter_mut() {
            let _ = w.child.kill();
            let _ = w.child.wait();
        }
    }
}

/// Parsed `actcomp worker …` arguments (the hidden subcommand the
/// launcher spawns; not part of the user-facing CLI surface).
#[derive(Debug, Clone)]
pub struct WorkerArgs {
    /// This worker's rank.
    pub rank: usize,
    /// Total ranks in the run.
    pub world: usize,
    /// The launcher's control-plane address.
    pub coord: String,
    /// Data-plane wire.
    pub kind: TransportKind,
    /// Shared run seed.
    pub seed: u64,
    /// Outgoing bandwidth cap in Mbit/s (TCP only).
    pub link_mbps: Option<f64>,
    /// Test hook: exit right after rendezvous to simulate a crash.
    pub fail_after_rendezvous: bool,
    /// Restart generation, echoed into the data-plane handshake.
    pub epoch: u32,
    /// Fault-injection spec (parsed locally; every worker gets the same
    /// spec and applies only its own clauses).
    pub fault: Option<String>,
    /// How long to wait for the launcher's peer table.
    pub rendezvous_timeout: Duration,
}

/// The worker process body: rendezvous, rebuild the model, run the
/// command loop until shutdown. Returns typed errors so the CLI can
/// render them and exit nonzero; a clean shutdown returns `Ok`.
pub fn run_worker(args: WorkerArgs) -> Result<(), ProcsError> {
    let cfg_json = std::env::var(WORKER_CFG_ENV).map_err(|_| ProcsError::Protocol {
        detail: format!("{WORKER_CFG_ENV} is not set"),
    })?;
    let cfg: RuntimeConfig = serde_json::from_str(&cfg_json).map_err(|e| ProcsError::Protocol {
        detail: format!("parsing {WORKER_CFG_ENV}: {e}"),
    })?;
    cfg.try_validate()?;
    if cfg.trace {
        return Err(ProcsError::TraceUnsupported);
    }
    if cfg.world() != args.world {
        return Err(ProcsError::Protocol {
            detail: format!(
                "world {} does not match tp x pp = {}",
                args.world,
                cfg.world()
            ),
        });
    }
    let hash = config_hash(&cfg_json, args.seed);
    let plan = match &args.fault {
        Some(spec) => actcomp_net::FaultPlan::parse(spec).map_err(|e| ProcsError::Protocol {
            detail: format!("fault spec: {e}"),
        })?,
        None => actcomp_net::FaultPlan::default(),
    };

    let mut ctrl = CtrlConn::connect(args.kind, &args.coord, WORKER_DIAL_TIMEOUT)?;
    let mut transport = SocketTransport::bind(
        args.kind,
        args.rank,
        args.world,
        hash,
        SocketOptions {
            link_mbps: args.link_mbps,
            epoch: args.epoch,
            ..SocketOptions::default()
        },
    )?;
    send_ctrl(
        &mut ctrl,
        &CtrlMsg::Hello {
            rank: args.rank,
            data_addr: transport.local_addr().to_string(),
        },
    )?;
    let addrs = match recv_ctrl(&mut ctrl, args.rendezvous_timeout)? {
        CtrlMsg::PeerTable { addrs } => addrs,
        _ => {
            return Err(ProcsError::Protocol {
                detail: "expected the peer table".to_string(),
            })
        }
    };
    if addrs.len() != args.world {
        return Err(ProcsError::Protocol {
            detail: format!("peer table covers {} of {} ranks", addrs.len(), args.world),
        });
    }
    for (peer, addr) in addrs.into_iter().enumerate() {
        transport.set_peer(peer, addr);
    }
    // Frame faults wrap the data plane only — the control plane must
    // stay honest or the launcher could not even learn of the chaos.
    let mut transport: Box<dyn Transport> = if plan.has_frame_faults(args.rank) {
        Box::new(actcomp_net::FaultyTransport::new(
            Box::new(transport),
            plan.clone(),
        ))
    } else {
        Box::new(transport)
    };
    let links = build_rank_links(transport.as_mut(), cfg.mp.tp, cfg.mp.pp)?;

    // Rebuild the identical model and compressor stack every process
    // shares: same seed, same draw order as the threaded engine.
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let serial = BertEncoder::new(&mut rng, cfg.mp.bert.clone());
    let seeds = Seeds::draw(&cfg, &mut rng);
    let builder = WorkerBuilder::new(&serial, &cfg, seeds);
    let (cmd_tx, cmd_rx) = std::sync::mpsc::channel::<Command>();
    let (resp_tx, resp_rx) = std::sync::mpsc::channel::<Response>();
    let worker = builder.build(args.rank, links, cmd_rx, resp_tx);
    let rank_thread = std::thread::Builder::new()
        .name(format!("actcomp-rank-{}", args.rank))
        .spawn(move || worker.run())
        .expect("spawn rank thread");

    send_ctrl(&mut ctrl, &CtrlMsg::Ready)?;
    if args.fail_after_rendezvous {
        // Simulated crash for the failure-propagation tests: vanish
        // without shutdown, exactly like a SIGKILLed worker.
        std::process::exit(3);
    }

    // Bridge loop: every command yields exactly one response, except
    // Shutdown which ends the run. While the rank thread computes, the
    // bridge pings the launcher so a slow step never reads as a death.
    let kill_at = plan.kill_at(args.rank);
    let mut forwards_seen: usize = 0;
    let loop_result = 'cmds: loop {
        let frame = match ctrl.recv_blocking() {
            Ok(f) => f,
            Err(e) => break Err(ProcsError::from(e)),
        };
        let msg = match decode_msg::<CtrlMsg>(&frame) {
            Ok(m) => m,
            Err(e) => {
                break Err(ProcsError::Protocol {
                    detail: e.to_string(),
                })
            }
        };
        let cmd = match msg {
            CtrlMsg::Cmd(cmd) => cmd,
            _ => {
                break Err(ProcsError::Protocol {
                    detail: "expected a command frame".to_string(),
                })
            }
        };
        // Both step-starting commands count towards the kill-at fault:
        // training forwards and serving inference batches.
        if matches!(cmd, Command::Forward { .. } | Command::Infer { .. }) {
            if Some(forwards_seen) == kill_at {
                // The injected crash: vanish mid-step without any
                // shutdown, exactly like a SIGKILLed worker.
                std::process::exit(3);
            }
            forwards_seen += 1;
        }
        let is_shutdown = matches!(cmd, Command::Shutdown);
        if cmd_tx.send(cmd).is_err() {
            break Err(ProcsError::Protocol {
                detail: "rank worker exited unexpectedly".to_string(),
            });
        }
        if is_shutdown {
            break Ok(());
        }
        let resp = loop {
            match resp_rx.recv_timeout(HEARTBEAT_INTERVAL) {
                Ok(r) => break r,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    if let Err(e) = send_ctrl(&mut ctrl, &CtrlMsg::Heartbeat) {
                        break 'cmds Err(ProcsError::from(e));
                    }
                }
                // The rank thread panicked (e.g. a data-plane peer
                // died); exit with a typed error so the launcher sees
                // the close.
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    break 'cmds Err(ProcsError::Protocol {
                        detail: "rank worker failed mid-command".to_string(),
                    })
                }
            }
        };
        if let Err(e) = send_ctrl(&mut ctrl, &CtrlMsg::Resp(resp)) {
            break Err(ProcsError::from(e));
        }
    };

    drop(cmd_tx);
    let _ = rank_thread.join();
    transport.shutdown();
    loop_result
}
