//! Forward-only inference serving with continuous request batching.
//!
//! The serving engine keeps the rank workers of a [`ThreadedRuntime`]
//! or [`ProcsRuntime`] resident across requests — no per-request spawn
//! or rendezvous — and puts an admission queue in front of them:
//!
//! - clients submit fixed-length requests through a cloneable
//!   [`ServeHandle`] and get back a [`Ticket`] they can wait on;
//! - a dispatcher thread coalesces queued requests into engine batches
//!   of up to [`ServeConfig::max_batch`] requests, waiting at most
//!   [`ServeConfig::batch_window`] to fill a batch beyond the first
//!   arrival;
//! - each request runs as its **own micro-batch** of the GPipe fill, so
//!   the per-request arithmetic — every GEMM shape, every collective,
//!   every compressor call — is identical to running the request alone.
//!   Batching changes throughput, not bits (test-enforced);
//! - with [`ServeConfig::depth`] ≥ 2 the dispatcher submits the next
//!   batch while the current one computes (command channels buffer), so
//!   stage 0 starts batch *N + 1* the moment its last micro-batch of
//!   batch *N* retires instead of waiting for the whole pipeline to
//!   drain — new arrivals enter at micro-batch boundaries, which is
//!   what makes the batching *continuous*.
//!
//! Failures are typed, never hangs: a dead or silent rank in a procs
//! backend surfaces through the PR 8 liveness machinery
//! ([`ProcsError::WorkerLost`] / [`ProcsError::RankTimeout`]) and fails
//! every in-flight and queued ticket with a [`ServeError`] carrying the
//! same information.
//!
//! The module also ships the synthetic load generator behind
//! `actcomp serve --bench`: closed-loop (a fixed set of clients, each
//! submitting its next request when the previous completes) and
//! open-loop (fixed-rate arrivals independent of completions) drivers
//! that measure throughput and p50/p95/p99 latency.
//!
//! One sharp edge worth stating: with error feedback enabled the
//! boundary compressors carry residual state across calls, so outputs
//! depend on the order requests reach the compressor — still
//! deterministic for a fixed arrival order, but not independent of
//! batching history the way stateless codecs are.
//!
//! [`ProcsError::WorkerLost`]: crate::ProcsError::WorkerLost
//! [`ProcsError::RankTimeout`]: crate::ProcsError::RankTimeout

use crate::config::{RuntimeConfig, RuntimeError};
use crate::procs::{ProcsError, ProcsRuntime};
use crate::report::RuntimeReport;
use crate::runtime::ThreadedRuntime;
use actcomp_tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The execution engine a [`ServeEngine`] dispatches to.
pub enum ServeBackend {
    /// Rank threads in this process — over typed channels or any
    /// [`Transport`](actcomp_net::Transport) set (mpsc/uds/tcp).
    Threads(ThreadedRuntime),
    /// One OS process per rank (control-socket rendezvous, heartbeat
    /// liveness, typed worker-loss errors).
    Procs(ProcsRuntime),
}

impl ServeBackend {
    fn config(&self) -> &RuntimeConfig {
        match self {
            ServeBackend::Threads(rt) => rt.config(),
            ServeBackend::Procs(rt) => rt.config(),
        }
    }

    fn infer_submit(&mut self, ids: &[usize], nreq: usize, seq: usize) -> Result<(), ServeError> {
        match self {
            ServeBackend::Threads(rt) => rt.infer_submit(ids, nreq, seq).map_err(ServeError::from),
            ServeBackend::Procs(rt) => rt.infer_submit(ids, nreq, seq).map_err(ServeError::from),
        }
    }

    fn infer_wait(&mut self) -> Result<Tensor, ServeError> {
        match self {
            ServeBackend::Threads(rt) => rt.infer_wait().map_err(ServeError::from),
            ServeBackend::Procs(rt) => rt.infer_wait().map_err(ServeError::from),
        }
    }

    fn report(&mut self) -> Option<RuntimeReport> {
        match self {
            ServeBackend::Threads(rt) => Some(rt.report()),
            ServeBackend::Procs(rt) => rt.report().ok(),
        }
    }
}

/// Typed serving failures. Cloneable so one backend failure can fail
/// every affected ticket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request itself is malformed (wrong token count).
    BadRequest {
        /// What was wrong.
        detail: String,
    },
    /// The engine has shut down (or died) and accepts no more requests.
    Stopped,
    /// A rank worker process died mid-request (closed control
    /// connection; [`crate::ProcsError::WorkerLost`]).
    WorkerLost {
        /// The lost worker's rank, when known.
        rank: Option<usize>,
        /// What the dispatcher was doing.
        detail: String,
    },
    /// A rank went silent past the liveness window
    /// ([`crate::ProcsError::RankTimeout`]).
    RankTimeout {
        /// The silent rank.
        rank: usize,
        /// The error rendering (window duration included).
        detail: String,
    },
    /// Any other backend failure (config, transport, protocol).
    Backend {
        /// The underlying error rendering.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ServeError::Stopped => write!(f, "serving engine stopped"),
            ServeError::WorkerLost { rank, detail } => match rank {
                Some(r) => write!(f, "serving worker {r} lost: {detail}"),
                None => write!(f, "serving worker lost: {detail}"),
            },
            ServeError::RankTimeout { rank, detail } => {
                write!(f, "serving rank {rank} timed out: {detail}")
            }
            ServeError::Backend { detail } => write!(f, "serving backend: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<RuntimeError> for ServeError {
    fn from(e: RuntimeError) -> Self {
        ServeError::Backend {
            detail: e.to_string(),
        }
    }
}

impl From<ProcsError> for ServeError {
    fn from(e: ProcsError) -> Self {
        match e {
            ProcsError::WorkerLost { rank, detail } => ServeError::WorkerLost { rank, detail },
            ProcsError::RankTimeout { rank, .. } => ServeError::RankTimeout {
                rank,
                detail: e.to_string(),
            },
            other => ServeError::Backend {
                detail: other.to_string(),
            },
        }
    }
}

/// Admission-queue and batching knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Most requests coalesced into one engine batch.
    pub max_batch: usize,
    /// How long the dispatcher waits to fill a batch beyond the first
    /// queued request. Zero dispatches whatever is queued immediately.
    pub batch_window: Duration,
    /// Engine batches in flight at once. `2` overlaps admission of the
    /// next batch with the current one (continuous batching); `1`
    /// drains each batch before dispatching the next — the
    /// one-batch-at-a-time baseline the bench compares against.
    pub depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            batch_window: Duration::from_micros(200),
            depth: 2,
        }
    }
}

/// Counters the dispatcher keeps while serving.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct ServeStats {
    /// Requests completed successfully.
    pub completed: usize,
    /// Requests failed with a typed error.
    pub failed: usize,
    /// Engine batches dispatched.
    pub batches: usize,
    /// `batch_hist[i]` = batches that coalesced exactly `i + 1`
    /// requests.
    pub batch_hist: Vec<usize>,
}

impl ServeStats {
    fn record_batch(&mut self, n: usize) {
        self.batches += 1;
        if self.batch_hist.len() < n {
            self.batch_hist.resize(n, 0);
        }
        self.batch_hist[n - 1] += 1;
    }
}

/// One queued request.
struct Request {
    ids: Vec<usize>,
    reply: Sender<Result<(Tensor, Instant), ServeError>>,
}

/// What flows down the admission queue. `Stop` is the engine's own
/// shutdown sentinel: it lets [`ServeEngine::finish`] terminate the
/// dispatcher even while client [`ServeHandle`] clones are still alive
/// (requests enqueued before the sentinel are still served — the
/// channel is FIFO).
enum Msg {
    Req(Request),
    Stop,
}

/// A submitted request's receipt: wait on it for the final hidden
/// states `[seq, hidden]` or a typed error.
pub struct Ticket {
    rx: Receiver<Result<(Tensor, Instant), ServeError>>,
}

impl Ticket {
    /// Blocks until the request completes.
    pub fn wait(self) -> Result<Tensor, ServeError> {
        self.wait_at().map(|(y, _)| y)
    }

    /// Blocks until the request completes, returning the instant the
    /// dispatcher finished it (latency measured at completion, not at
    /// whenever the caller got around to receiving).
    pub fn wait_at(self) -> Result<(Tensor, Instant), ServeError> {
        match self.rx.recv() {
            Ok(r) => r,
            // The dispatcher dropped the reply sender without answering
            // (engine torn down mid-request).
            Err(_) => Err(ServeError::Stopped),
        }
    }
}

/// A cloneable submission handle: many client threads can feed the same
/// admission queue.
#[derive(Clone)]
pub struct ServeHandle {
    tx: Sender<Msg>,
    seq: usize,
}

impl ServeHandle {
    /// Submits one request of exactly `seq` token ids; returns its
    /// ticket immediately. Malformed requests fail the ticket without
    /// touching the queue.
    pub fn submit(&self, ids: Vec<usize>) -> Ticket {
        let (reply, rx) = channel();
        if ids.len() != self.seq {
            let _ = reply.send(Err(ServeError::BadRequest {
                detail: format!("{} token ids for a {}-token request", ids.len(), self.seq),
            }));
        } else {
            // If the dispatcher is gone (engine finished or died) the
            // message — and with it the reply sender — is dropped, and
            // the ticket reads as Stopped.
            let _ = self.tx.send(Msg::Req(Request { ids, reply }));
        }
        Ticket { rx }
    }

    /// Tokens per request this engine serves.
    pub fn seq(&self) -> usize {
        self.seq
    }
}

/// The serving engine: resident rank workers behind an admission queue
/// with continuous request batching. See the module docs for the
/// queueing semantics.
pub struct ServeEngine {
    tx: Option<Sender<Msg>>,
    dispatcher: Option<JoinHandle<ServeBackend>>,
    stats: Arc<Mutex<ServeStats>>,
    seq: usize,
}

impl ServeEngine {
    /// Starts serving on `backend`. The backend should be built
    /// forward-only: `micro_batches = 1` and `tokens = seq`, so the
    /// boundary/collective compressors are sized for exactly one
    /// request's activation — the serving micro-batch.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for a zero `max_batch` or `depth`.
    pub fn start(backend: ServeBackend, cfg: ServeConfig) -> Result<ServeEngine, ServeError> {
        if cfg.max_batch == 0 || cfg.depth == 0 {
            return Err(ServeError::BadRequest {
                detail: "max_batch and depth must be at least 1".to_string(),
            });
        }
        let rc = backend.config();
        let seq = rc.mp.tokens / rc.micro_batches;
        let stats = Arc::new(Mutex::new(ServeStats::default()));
        let (tx, rx) = channel::<Msg>();
        let stats2 = Arc::clone(&stats);
        let dispatcher = std::thread::Builder::new()
            .name("actcomp-serve".to_string())
            .spawn(move || dispatch(backend, cfg, seq, rx, stats2))
            .expect("spawn serve dispatcher");
        Ok(ServeEngine {
            tx: Some(tx),
            dispatcher: Some(dispatcher),
            stats,
            seq,
        })
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            tx: self.tx.as_ref().expect("engine running").clone(),
            seq: self.seq,
        }
    }

    /// Tokens per request this engine serves.
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        self.stats.lock().expect("stats lock").clone()
    }

    /// Stops admission, drains every request queued before this call
    /// plus everything in flight, and returns the final counters plus
    /// the backend's per-rank phase report (`None` if the dispatcher
    /// died, e.g. a threads-backend rank panicked). Outstanding
    /// `ServeHandle` clones keep working until their tickets resolve;
    /// submissions racing past `finish` read as [`ServeError::Stopped`].
    pub fn finish(mut self) -> (ServeStats, Option<RuntimeReport>) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Msg::Stop);
        }
        let report = match self.dispatcher.take().expect("dispatcher running").join() {
            Ok(mut backend) => backend.report(),
            Err(_) => None,
        };
        let stats = self.stats.lock().expect("stats lock").clone();
        (stats, report)
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Msg::Stop);
        }
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
    }
}

/// The dispatcher body: admit → submit → retire, keeping up to
/// `cfg.depth` engine batches in flight.
fn dispatch(
    mut backend: ServeBackend,
    cfg: ServeConfig,
    seq: usize,
    rx: Receiver<Msg>,
    stats: Arc<Mutex<ServeStats>>,
) -> ServeBackend {
    let mut inflight: VecDeque<Vec<Request>> = VecDeque::new();
    let mut closed = false;

    loop {
        // Admit while there is capacity and demand. Block only when
        // nothing is in flight — with work computing, a missing next
        // batch costs nothing, so only take what is already queued.
        while !closed && inflight.len() < cfg.depth {
            let mut batch: Vec<Request> = Vec::new();
            if inflight.is_empty() {
                match rx.recv() {
                    Ok(Msg::Req(r)) => batch.push(r),
                    Ok(Msg::Stop) | Err(_) => {
                        closed = true;
                        break;
                    }
                }
            }
            // Coalesce: wait up to the batch window for followers once
            // a first request is in hand; with batches computing, just
            // drain what is queued without waiting.
            let deadline = Instant::now() + cfg.batch_window;
            while batch.len() < cfg.max_batch && !closed {
                let next = if batch.is_empty() {
                    match rx.try_recv() {
                        Ok(m) => Some(m),
                        Err(TryRecvError::Empty) => None,
                        Err(TryRecvError::Disconnected) => {
                            closed = true;
                            None
                        }
                    }
                } else {
                    let now = Instant::now();
                    if now >= deadline {
                        None
                    } else {
                        match rx.recv_timeout(deadline - now) {
                            Ok(m) => Some(m),
                            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
                            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                                closed = true;
                                None
                            }
                        }
                    }
                };
                match next {
                    Some(Msg::Req(r)) => batch.push(r),
                    Some(Msg::Stop) => closed = true,
                    None => break,
                }
            }
            if batch.is_empty() {
                break;
            }
            let ids: Vec<usize> = batch.iter().flat_map(|r| r.ids.iter().copied()).collect();
            match backend.infer_submit(&ids, batch.len(), seq) {
                Ok(()) => {
                    stats.lock().expect("stats lock").record_batch(batch.len());
                    inflight.push_back(batch);
                }
                Err(e) => {
                    fail_batch(batch, &e, &stats);
                    while let Some(b) = inflight.pop_front() {
                        let _ = backend.infer_wait();
                        fail_batch(b, &e, &stats);
                    }
                    return answer_until_stop(rx, e, backend, &stats);
                }
            }
        }

        // Retire the oldest in-flight batch: split the request-major
        // output rows back onto the tickets.
        if let Some(batch) = inflight.pop_front() {
            match backend.infer_wait() {
                Ok(y) => {
                    let done = Instant::now();
                    let mut st = stats.lock().expect("stats lock");
                    for (i, r) in batch.into_iter().enumerate() {
                        let rows = y.slice_rows(i * seq, (i + 1) * seq);
                        st.completed += 1;
                        let _ = r.reply.send(Ok((rows, done)));
                    }
                }
                Err(e) => {
                    // Everything else in flight shares the dead world.
                    fail_batch(batch, &e, &stats);
                    while let Some(b) = inflight.pop_front() {
                        fail_batch(b, &e, &stats);
                    }
                    return answer_until_stop(rx, e, backend, &stats);
                }
            }
        } else if closed {
            return backend;
        }
    }
}

/// After a fatal backend error the dispatcher keeps answering incoming
/// requests with the typed error until the engine is told to stop (or
/// every handle is gone) — clients must never hang on a dead world.
fn answer_until_stop(
    rx: Receiver<Msg>,
    e: ServeError,
    backend: ServeBackend,
    stats: &Arc<Mutex<ServeStats>>,
) -> ServeBackend {
    loop {
        match rx.recv() {
            Ok(Msg::Req(r)) => {
                stats.lock().expect("stats lock").failed += 1;
                let _ = r.reply.send(Err(e.clone()));
            }
            Ok(Msg::Stop) | Err(_) => return backend,
        }
    }
}

fn fail_batch(batch: Vec<Request>, e: &ServeError, stats: &Arc<Mutex<ServeStats>>) {
    let mut st = stats.lock().expect("stats lock");
    for r in batch {
        st.failed += 1;
        let _ = r.reply.send(Err(e.clone()));
    }
}

// ---------------------------------------------------------------------
// Synthetic load generation
// ---------------------------------------------------------------------

/// Arrival process for the synthetic load generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// `clients` concurrent loops, each submitting its next request the
    /// moment the previous one completes — measures saturated
    /// throughput.
    Closed {
        /// Concurrent client loops.
        clients: usize,
    },
    /// Arrivals at a fixed rate (requests per second), independent of
    /// completions — measures latency under a target offered load.
    Open {
        /// Offered load in requests per second.
        rate: f64,
    },
}

/// One load-generation run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total requests to issue.
    pub requests: usize,
    /// Arrival process.
    pub arrival: Arrival,
    /// Vocabulary size for the synthetic token ids.
    pub vocab: usize,
    /// Seed for the synthetic request streams.
    pub seed: u64,
}

/// What one load run measured (the per-mode payload of
/// `BENCH_serve.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct LoadReport {
    /// Requests completed successfully.
    pub completed: usize,
    /// Requests that failed with a typed error.
    pub failed: usize,
    /// First submission to last completion.
    pub elapsed_s: f64,
    /// Completed-request throughput.
    pub req_per_s: f64,
    /// Median request latency.
    pub p50_ms: f64,
    /// 95th-percentile request latency.
    pub p95_ms: f64,
    /// 99th-percentile request latency.
    pub p99_ms: f64,
    /// Mean request latency.
    pub mean_ms: f64,
    /// Slowest request.
    pub max_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn summarize(latencies: &mut [f64], failed: usize, elapsed: Duration) -> LoadReport {
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let completed = latencies.len();
    let elapsed_s = elapsed.as_secs_f64();
    LoadReport {
        completed,
        failed,
        elapsed_s,
        req_per_s: if elapsed_s > 0.0 {
            completed as f64 / elapsed_s
        } else {
            0.0
        },
        p50_ms: percentile(latencies, 50.0) * 1e3,
        p95_ms: percentile(latencies, 95.0) * 1e3,
        p99_ms: percentile(latencies, 99.0) * 1e3,
        mean_ms: if completed > 0 {
            latencies.iter().sum::<f64>() / completed as f64 * 1e3
        } else {
            0.0
        },
        max_ms: latencies.last().copied().unwrap_or(0.0) * 1e3,
    }
}

fn synth_request(rng: &mut ChaCha8Rng, seq: usize, vocab: usize) -> Vec<usize> {
    (0..seq).map(|_| rng.gen_range(0..vocab)).collect()
}

/// Drives `engine` with synthetic traffic and measures throughput and
/// latency. Closed-loop mode spawns the client threads; open-loop mode
/// paces arrivals from a single submitter with a collector draining
/// completions behind it.
pub fn run_load(engine: &ServeEngine, lcfg: &LoadConfig) -> LoadReport {
    let seq = engine.seq();
    match lcfg.arrival {
        Arrival::Closed { clients } => {
            let clients = clients.max(1);
            let t0 = Instant::now();
            let mut latencies: Vec<f64> = Vec::with_capacity(lcfg.requests);
            let mut failed = 0usize;
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        let handle = engine.handle();
                        // Spread the remainder so exactly `requests` go out.
                        let n = lcfg.requests / clients + usize::from(c < lcfg.requests % clients);
                        let mut rng = ChaCha8Rng::seed_from_u64(lcfg.seed ^ (0x9e37 + c as u64));
                        s.spawn(move || {
                            let mut lats = Vec::with_capacity(n);
                            let mut fails = 0usize;
                            for _ in 0..n {
                                let ids = synth_request(&mut rng, seq, lcfg.vocab);
                                let start = Instant::now();
                                match handle.submit(ids).wait_at() {
                                    Ok((_, done)) => lats.push((done - start).as_secs_f64()),
                                    Err(_) => fails += 1,
                                }
                            }
                            (lats, fails)
                        })
                    })
                    .collect();
                for h in handles {
                    let (lats, fails) = h.join().expect("load client");
                    latencies.extend(lats);
                    failed += fails;
                }
            });
            summarize(&mut latencies, failed, t0.elapsed())
        }
        Arrival::Open { rate } => {
            let rate = rate.max(1e-3);
            let gap = Duration::from_secs_f64(1.0 / rate);
            let (tk_tx, tk_rx) = channel::<(Instant, Ticket)>();
            let t0 = Instant::now();
            let mut latencies: Vec<f64> = Vec::with_capacity(lcfg.requests);
            let mut failed = 0usize;
            std::thread::scope(|s| {
                let handle = engine.handle();
                let requests = lcfg.requests;
                let (seed, vocab) = (lcfg.seed, lcfg.vocab);
                s.spawn(move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x09e1);
                    let mut next = Instant::now();
                    for _ in 0..requests {
                        let now = Instant::now();
                        if next > now {
                            std::thread::sleep(next - now);
                        }
                        let ids = synth_request(&mut rng, seq, vocab);
                        let start = Instant::now();
                        let ticket = handle.submit(ids);
                        if tk_tx.send((start, ticket)).is_err() {
                            break;
                        }
                        next += gap;
                    }
                });
                // Collector: completion instants come from the
                // dispatcher, so FIFO draining does not distort
                // latency.
                for (start, ticket) in tk_rx {
                    match ticket.wait_at() {
                        Ok((_, done)) => latencies.push((done - start).as_secs_f64()),
                        Err(_) => failed += 1,
                    }
                }
            });
            summarize(&mut latencies, failed, t0.elapsed())
        }
    }
}
