//! Configuration and typed errors for the threaded execution engine.

use actcomp_mp::{MpConfig, MpConfigError};

/// Configuration of a threaded model-parallel run: the model-parallel
/// layout plus the GPipe micro-batch count.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RuntimeConfig {
    /// Model, parallel degrees, and compression plan (shared with the
    /// serial [`actcomp_mp::MpBert`] executor).
    pub mp: MpConfig,
    /// GPipe micro-batches per step. Must divide the batch size passed
    /// to `forward`. `1` reproduces the serial executor exactly.
    pub micro_batches: usize,
}

impl RuntimeConfig {
    /// Validates the configuration.
    pub fn try_validate(&self) -> Result<(), RuntimeError> {
        self.mp.try_validate()?;
        if self.micro_batches == 0 {
            return Err(RuntimeError::ZeroMicroBatches);
        }
        Ok(())
    }

    /// Total rank (thread) count: `tp · pp`.
    pub fn world(&self) -> usize {
        self.mp.tp * self.mp.pp
    }
}

/// Errors constructing or driving the threaded runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The underlying model-parallel configuration is invalid.
    Config(MpConfigError),
    /// `micro_batches` must be at least 1.
    ZeroMicroBatches,
    /// The forward batch is not divisible by the micro-batch count.
    BatchNotDivisible {
        /// Batch size passed to `forward`.
        batch: usize,
        /// Configured micro-batch count.
        micro_batches: usize,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Config(e) => write!(f, "{e}"),
            RuntimeError::ZeroMicroBatches => {
                write!(f, "micro_batches must be at least 1")
            }
            RuntimeError::BatchNotDivisible {
                batch,
                micro_batches,
            } => write!(
                f,
                "batch {batch} not divisible by {micro_batches} micro-batches"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MpConfigError> for RuntimeError {
    fn from(e: MpConfigError) -> Self {
        RuntimeError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_compress::plan::CompressionPlan;
    use actcomp_nn::BertConfig;

    fn cfg(tp: usize, pp: usize, micro_batches: usize) -> RuntimeConfig {
        RuntimeConfig {
            mp: MpConfig {
                bert: BertConfig {
                    vocab: 32,
                    hidden: 16,
                    layers: 4,
                    heads: 4,
                    ff_hidden: 32,
                    max_seq: 8,
                },
                tp,
                pp,
                plan: CompressionPlan::none(),
                tokens: 8,
                error_feedback: false,
            },
            micro_batches,
        }
    }

    #[test]
    fn validates_micro_batches_and_world() {
        assert!(cfg(2, 2, 1).try_validate().is_ok());
        assert_eq!(cfg(2, 2, 1).world(), 4);
        assert_eq!(
            cfg(2, 2, 0).try_validate(),
            Err(RuntimeError::ZeroMicroBatches)
        );
        assert!(matches!(
            cfg(3, 1, 1).try_validate(),
            Err(RuntimeError::Config(_))
        ));
    }
}
