//! Configuration and typed errors for the threaded execution engine.

use crate::comm::RingTuning;
use actcomp_mp::{MpConfig, MpConfigError};

/// Configuration of a threaded model-parallel run: the model-parallel
/// layout plus the GPipe micro-batch count.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RuntimeConfig {
    /// Model, parallel degrees, and compression plan (shared with the
    /// serial [`actcomp_mp::MpBert`] executor).
    pub mp: MpConfig,
    /// GPipe micro-batches per step. Must divide the batch size passed
    /// to `forward`. `1` reproduces the serial executor exactly.
    pub micro_batches: usize,
    /// Explicit ring chunking/pipelining knobs for this engine instance.
    /// `None` (the default) captures the process-wide configuration
    /// ([`crate::set_chunk_rows`] / `ACTCOMP_CHUNK_ROWS` / defaults) at
    /// construction; `Some` overrides it per engine, without touching
    /// process-global state. Optional in serialized form.
    pub tuning: Option<RingTuning>,
    /// Record every rank's comm events for conformance auditing against
    /// the static message-flow graph (`actcomp check --comm`). Off by
    /// default; tracing adds one vector push per send/recv.
    pub trace: bool,
}

impl RuntimeConfig {
    /// Validates the configuration.
    pub fn try_validate(&self) -> Result<(), RuntimeError> {
        self.mp.try_validate()?;
        if self.micro_batches == 0 {
            return Err(RuntimeError::ZeroMicroBatches);
        }
        if let Some(t) = &self.tuning {
            if t.chunk_rows == Some(0) {
                return Err(RuntimeError::ZeroChunkRows);
            }
            if t.pipeline_depth == 0 {
                return Err(RuntimeError::ZeroPipelineDepth);
            }
        }
        Ok(())
    }

    /// Total rank (thread) count: `tp · pp`.
    pub fn world(&self) -> usize {
        self.mp.tp * self.mp.pp
    }
}

/// Errors constructing or driving the threaded runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The underlying model-parallel configuration is invalid.
    Config(MpConfigError),
    /// `micro_batches` must be at least 1.
    ZeroMicroBatches,
    /// The forward batch is not divisible by the micro-batch count.
    BatchNotDivisible {
        /// Batch size passed to `forward`.
        batch: usize,
        /// Configured micro-batch count.
        micro_batches: usize,
    },
    /// The token-id slice passed to `forward` does not hold exactly
    /// `batch * seq` ids.
    IdsLengthMismatch {
        /// Length of the id slice.
        len: usize,
        /// Sequences in the batch.
        batch: usize,
        /// Tokens per sequence.
        seq: usize,
    },
    /// The sequence length exceeds the model's positional table.
    SeqTooLong {
        /// Requested tokens per sequence.
        seq: usize,
        /// The model's maximum sequence length.
        max_seq: usize,
    },
    /// The backward gradient's rows are not divisible by the
    /// micro-batch count.
    GradRowsNotDivisible {
        /// Rows of the gradient tensor.
        rows: usize,
        /// Configured micro-batch count.
        micro_batches: usize,
    },
    /// A ring-collective chunk needs at least one row (`AC0501`).
    ZeroChunkRows,
    /// The ring pipeline needs at least one chunk in flight (`AC0502`).
    ZeroPipelineDepth,
    /// Opening transport links between ranks failed.
    Transport {
        /// The transport-layer error rendering.
        detail: String,
    },
    /// A transport world was supplied whose size or rank set does not
    /// match `tp · pp`.
    WorldMismatch {
        /// Ranks the transports cover.
        got: usize,
        /// Ranks the configuration needs.
        need: usize,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Config(e) => write!(f, "{e}"),
            RuntimeError::ZeroMicroBatches => {
                write!(f, "micro_batches must be at least 1")
            }
            RuntimeError::BatchNotDivisible {
                batch,
                micro_batches,
            } => write!(
                f,
                "batch {batch} not divisible by {micro_batches} micro-batches"
            ),
            RuntimeError::IdsLengthMismatch { len, batch, seq } => write!(
                f,
                "{len} token ids for batch {batch} x seq {seq} (need {})",
                batch * seq
            ),
            RuntimeError::SeqTooLong { seq, max_seq } => write!(
                f,
                "sequence length {seq} exceeds the model maximum of {max_seq}"
            ),
            RuntimeError::GradRowsNotDivisible {
                rows,
                micro_batches,
            } => write!(
                f,
                "gradient of {rows} rows not divisible by {micro_batches} micro-batches"
            ),
            RuntimeError::ZeroChunkRows => {
                write!(f, "chunk_rows must be at least 1")
            }
            RuntimeError::ZeroPipelineDepth => {
                write!(f, "pipeline_depth must be at least 1")
            }
            RuntimeError::Transport { detail } => {
                write!(f, "transport: {detail}")
            }
            RuntimeError::WorldMismatch { got, need } => {
                write!(f, "transport world covers {got} ranks but tp x pp = {need}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MpConfigError> for RuntimeError {
    fn from(e: MpConfigError) -> Self {
        RuntimeError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actcomp_compress::plan::CompressionPlan;
    use actcomp_nn::BertConfig;

    fn cfg(tp: usize, pp: usize, micro_batches: usize) -> RuntimeConfig {
        RuntimeConfig {
            mp: MpConfig {
                bert: BertConfig {
                    vocab: 32,
                    hidden: 16,
                    layers: 4,
                    heads: 4,
                    ff_hidden: 32,
                    max_seq: 8,
                },
                tp,
                pp,
                plan: CompressionPlan::none(),
                tokens: 8,
                error_feedback: false,
            },
            micro_batches,
            tuning: None,
            trace: false,
        }
    }

    #[test]
    fn validates_micro_batches_and_world() {
        assert!(cfg(2, 2, 1).try_validate().is_ok());
        assert_eq!(cfg(2, 2, 1).world(), 4);
        assert_eq!(
            cfg(2, 2, 0).try_validate(),
            Err(RuntimeError::ZeroMicroBatches)
        );
        assert!(matches!(
            cfg(3, 1, 1).try_validate(),
            Err(RuntimeError::Config(_))
        ));
    }

    #[test]
    fn validates_explicit_tuning() {
        let mut c = cfg(2, 2, 1);
        c.tuning = Some(RingTuning {
            chunk_rows: Some(2),
            pipeline_depth: 1,
        });
        assert!(c.try_validate().is_ok());
        c.tuning = Some(RingTuning {
            chunk_rows: Some(0),
            pipeline_depth: 1,
        });
        assert_eq!(c.try_validate(), Err(RuntimeError::ZeroChunkRows));
        c.tuning = Some(RingTuning {
            chunk_rows: None,
            pipeline_depth: 0,
        });
        assert_eq!(c.try_validate(), Err(RuntimeError::ZeroPipelineDepth));
    }

    #[test]
    fn config_roundtrips_through_json() {
        let mut c = cfg(2, 2, 1);
        c.tuning = Some(RingTuning {
            chunk_rows: Some(3),
            pipeline_depth: 2,
        });
        c.trace = true;
        let json = serde_json::to_string(&c).expect("serialize");
        let back: RuntimeConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, c);
    }
}
