//! Per-rank wall-clock accounting and the aggregated [`RuntimeReport`]
//! the engine emits as `BENCH_runtime.json`.

use actcomp_mp::CommBytes;
use std::time::Instant;

/// Wall-clock seconds a rank spent in each execution phase.
///
/// `wire` includes time blocked in channel receives, so it measures
/// synchronization stalls as well as message transfer — exactly the
/// quantity the paper's communication/computation overlap argument is
/// about. `compute` is everything else the rank did while servicing a
/// command (shard matmuls, layer norms, embedding lookups).
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseTimers {
    /// Local tensor arithmetic (forward/backward shard math).
    pub compute_s: f64,
    /// Compressor forward (`compress`) and compressor backward passes.
    pub encode_s: f64,
    /// Channel sends/receives, including blocking waits on peers.
    pub wire_s: f64,
    /// Decompression and summation of gathered messages.
    pub decode_s: f64,
    /// Wall-clock time inside whole collectives (ring reduces and
    /// gathers), measured end to end. This *overlaps* the `encode_s` /
    /// `wire_s` / `decode_s` attribution of the same work — the chunked
    /// pipeline encodes chunk `i+1` while chunk `i` is on the wire — so
    /// it is excluded from [`PhaseTimers::total_s`]. Comparing
    /// `collective_s` against `encode_s + wire_s + decode_s` measures
    /// how much of the codec work the pipeline hides.
    pub collective_s: f64,
}

impl PhaseTimers {
    /// Accumulates another rank-phase breakdown.
    pub fn add(&mut self, other: &PhaseTimers) {
        self.compute_s += other.compute_s;
        self.encode_s += other.encode_s;
        self.wire_s += other.wire_s;
        self.decode_s += other.decode_s;
        self.collective_s += other.collective_s;
    }

    /// Total time across all phases.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.encode_s + self.wire_s + self.decode_s
    }
}

/// Times one closure and adds the elapsed seconds to `slot`.
pub(crate) fn timed<T>(slot: &mut f64, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    *slot += t0.elapsed().as_secs_f64();
    out
}

/// One rank's contribution to the runtime report.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RankReport {
    /// Global rank id (`stage * tp + tp_index`).
    pub rank: usize,
    /// Pipeline stage this rank belongs to.
    pub stage: usize,
    /// Tensor-parallel index within the stage.
    pub tp_index: usize,
    /// Phase breakdown.
    pub timers: PhaseTimers,
    /// Bytes this rank's tensor-parallel reduces moved.
    pub reduce_bytes: CommBytes,
    /// Ring-vs-gather traffic for this rank's collectives: `wire` is
    /// what the ring implementation actually sent, `dense` is what the
    /// gather-based implementation would have sent.
    pub ring_bytes: CommBytes,
    /// Bytes the pipeline boundary this rank *sends* moved (zero unless
    /// the rank is a boundary owner, i.e. `tp_index == 0` on a
    /// non-final stage).
    pub boundary_bytes: CommBytes,
}

/// Aggregated execution report for a threaded run, written to
/// `BENCH_runtime.json`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RuntimeReport {
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Pipeline-parallel degree.
    pub pp: usize,
    /// Micro-batches per step.
    pub micro_batches: usize,
    /// Per-rank breakdowns, indexed by rank id.
    pub ranks: Vec<RankReport>,
    /// Summed phase timers across all ranks.
    pub totals: PhaseTimers,
    /// Tensor-parallel reduce traffic, counted once per stage
    /// (`tp_index == 0`) so the total matches the serial `MpBert`
    /// byte accounting.
    pub reduce_bytes: CommBytes,
    /// Pipeline-boundary traffic summed over boundary owners.
    pub boundary_bytes: CommBytes,
    /// Ring-vs-gather collective traffic summed over *all* ranks:
    /// `wire` is what the ring collectives actually sent, `dense` the
    /// gather-equivalent baseline. `wire < dense` whenever a ring
    /// collective ran with `tp ≥ 3`.
    pub ring_bytes: CommBytes,
}

impl RuntimeReport {
    /// Aggregates per-rank reports (which must be sorted by rank id).
    pub fn from_ranks(tp: usize, pp: usize, micro_batches: usize, ranks: Vec<RankReport>) -> Self {
        let mut totals = PhaseTimers::default();
        let mut reduce_bytes = CommBytes::default();
        let mut boundary_bytes = CommBytes::default();
        let mut ring_bytes = CommBytes::default();
        for r in &ranks {
            totals.add(&r.timers);
            if r.tp_index == 0 {
                reduce_bytes.add(r.reduce_bytes);
            }
            boundary_bytes.add(r.boundary_bytes);
            ring_bytes.add(r.ring_bytes);
        }
        RuntimeReport {
            tp,
            pp,
            micro_batches,
            ranks,
            totals,
            reduce_bytes,
            boundary_bytes,
            ring_bytes,
        }
    }

    /// Serializes the report to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank(rank: usize, stage: usize, tp_index: usize, wire: usize) -> RankReport {
        RankReport {
            rank,
            stage,
            tp_index,
            timers: PhaseTimers {
                compute_s: 1.0,
                encode_s: 0.5,
                wire_s: 0.25,
                decode_s: 0.25,
                collective_s: 0.5,
            },
            reduce_bytes: CommBytes {
                wire,
                dense: 2 * wire,
            },
            ring_bytes: CommBytes {
                wire: wire / 2,
                dense: wire,
            },
            boundary_bytes: CommBytes::default(),
        }
    }

    #[test]
    fn aggregation_counts_reduce_bytes_once_per_stage() {
        let ranks = vec![
            rank(0, 0, 0, 100),
            rank(1, 0, 1, 100),
            rank(2, 1, 0, 60),
            rank(3, 1, 1, 60),
        ];
        let report = RuntimeReport::from_ranks(2, 2, 1, ranks);
        assert_eq!(report.reduce_bytes.wire, 160);
        assert_eq!(report.reduce_bytes.dense, 320);
        // Ring traffic is summed over every rank, not once per stage.
        assert_eq!(report.ring_bytes.wire, 160);
        assert_eq!(report.ring_bytes.dense, 320);
        // collective_s overlaps the other phases, so it is tracked
        // (summed into totals) but excluded from total_s.
        assert!((report.totals.collective_s - 2.0).abs() < 1e-12);
        assert!((report.totals.total_s() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = RuntimeReport::from_ranks(1, 1, 2, vec![rank(0, 0, 0, 10)]);
        let json = report.to_json();
        let back: RuntimeReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.ranks.len(), 1);
        assert_eq!(back.reduce_bytes.wire, 10);
        assert_eq!(back.micro_batches, 2);
    }
}
