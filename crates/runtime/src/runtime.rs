//! The threaded execution engine: spawns one OS thread per model-parallel
//! rank and drives them through command/response channels.
//!
//! Rank `r` owns tensor-parallel shard `r % tp` of pipeline stage
//! `r / tp`. Compressors are constructed with exactly the same RNG draw
//! order as the serial [`MpBert`](actcomp_mp::MpBert) builder, so a
//! threaded run and a serial run built from the same serial encoder and
//! seed hold bit-identical parameters.

use crate::comm::TpGroup;
use crate::config::{RuntimeConfig, RuntimeError};
use crate::layer::RankLayer;
use crate::rank::{
    BoundaryReceiver, BoundarySender, Command, EmbeddingStage, FwdMsg, RankGrads, RankWorker,
    Response,
};
use crate::report::{RankReport, RuntimeReport};
use crate::trace::{TraceCell, TraceHandle};
use actcomp_check::TraceEvent;
use actcomp_compress::spec::CompressorSpec;
use actcomp_compress::{Compressor, Identity};
use actcomp_mp::stage_offsets;
use actcomp_nn::BertEncoder;
use actcomp_tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Per-layer compressor construction recipe, derived from the plan with
/// the serial builder's RNG draw order.
struct LayerSeeds {
    attn: (CompressorSpec, u64),
    ff: (CompressorSpec, u64),
}

/// A multi-threaded model-parallel execution engine: `tp · pp` OS
/// threads exchanging compressed activations over channels.
///
/// With compression off ([`CompressionPlan::none`]) a step is
/// bit-identical to the serial [`MpBert`](actcomp_mp::MpBert) executor
/// (test-enforced); with compression on, runs are deterministic given
/// the seed because every collective reduces in rank order.
///
/// [`CompressionPlan::none`]: actcomp_compress::plan::CompressionPlan::none
pub struct ThreadedRuntime {
    cmd_txs: Vec<Sender<Command>>,
    resp_rx: Receiver<Response>,
    handles: Vec<JoinHandle<()>>,
    cfg: RuntimeConfig,
}

impl std::fmt::Debug for ThreadedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ThreadedRuntime(tp={}, pp={}, m={})",
            self.cfg.mp.tp, self.cfg.mp.pp, self.cfg.micro_batches
        )
    }
}

impl ThreadedRuntime {
    /// Builds the engine from a fresh serial initialization (drawing the
    /// serial encoder from `rng` first, exactly like
    /// [`MpBert::new`](actcomp_mp::MpBert::new)).
    pub fn new(rng: &mut ChaCha8Rng, cfg: RuntimeConfig) -> Result<Self, RuntimeError> {
        cfg.try_validate()?;
        let serial = BertEncoder::new(rng, cfg.mp.bert.clone());
        Self::from_serial(&serial, cfg, rng)
    }

    /// Shards an existing serial encoder across `tp · pp` rank threads.
    ///
    /// `rng` is consumed with the same draw order as
    /// [`MpBert::from_serial`](actcomp_mp::MpBert::from_serial), so the
    /// two executors build identical compressor stacks from the same
    /// generator state.
    pub fn from_serial(
        serial: &BertEncoder,
        cfg: RuntimeConfig,
        rng: &mut ChaCha8Rng,
    ) -> Result<Self, RuntimeError> {
        cfg.try_validate()?;
        let tp = cfg.mp.tp;
        let pp = cfg.mp.pp;
        let m = cfg.micro_batches;
        let world = tp * pp;
        let h = cfg.mp.bert.hidden;
        if !cfg.mp.tokens.is_multiple_of(m) {
            return Err(RuntimeError::BatchNotDivisible {
                batch: cfg.mp.tokens,
                micro_batches: m,
            });
        }
        // Compressors see per-micro-batch activations of
        // `tokens/m · hidden` elements; at m = 1 this matches the serial
        // executor's sizing exactly.
        let n = (cfg.mp.tokens / m) * h;

        // Replicate the serial builder's RNG draw order: one seed per
        // reduce (attention then feed-forward, in layer order), then one
        // per *compressed* boundary.
        let layer_seeds: Vec<LayerSeeds> = (0..cfg.mp.bert.layers)
            .map(|l| {
                let covered = cfg.mp.plan.covers(l);
                let spec = if covered && tp > 1 {
                    cfg.mp.plan.spec
                } else {
                    CompressorSpec::Baseline
                };
                LayerSeeds {
                    attn: (spec, rng.gen()),
                    ff: (spec, rng.gen()),
                }
            })
            .collect();
        let offsets = stage_offsets(cfg.mp.bert.layers, pp);
        let boundary_seeds: Vec<Option<u64>> = (0..pp.saturating_sub(1))
            .map(|b| cfg.mp.plan.covers(offsets[b + 1]).then(|| rng.gen()))
            .collect();

        let build = |spec: CompressorSpec, seed: u64| -> Box<dyn Compressor> {
            let mut wrng = ChaCha8Rng::seed_from_u64(seed);
            let c = spec.build(&mut wrng, n, h);
            if cfg.mp.error_feedback && spec != CompressorSpec::Baseline {
                Box::new(actcomp_compress::ErrorFeedback::new(c))
            } else {
                c
            }
        };
        let build_boundary = |b: usize| -> Box<dyn Compressor> {
            match boundary_seeds[b] {
                Some(seed) => {
                    let mut wrng = ChaCha8Rng::seed_from_u64(seed);
                    let c = cfg.mp.plan.spec.build(&mut wrng, n, h);
                    if cfg.mp.error_feedback {
                        Box::new(actcomp_compress::ErrorFeedback::new(c))
                    } else {
                        c
                    }
                }
                None => Box::new(Identity::new()),
            }
        };

        // Channel plumbing. All senders/receivers are created up front
        // on the driver thread, then moved into the rank workers.
        let (resp_tx, resp_rx) = channel::<Response>();
        let mut cmd_txs = Vec::with_capacity(world);
        let mut cmd_rxs = Vec::with_capacity(world);
        for _ in 0..world {
            let (tx, rx) = channel::<Command>();
            cmd_txs.push(tx);
            cmd_rxs.push(Some(rx));
        }
        let mut rings: Vec<Vec<Option<TpGroup>>> = (0..pp)
            .map(|_| TpGroup::ring(tp).into_iter().map(Some).collect())
            .collect();
        // An explicit per-engine tuning overrides what the endpoints
        // captured from process-global state — every endpoint of every
        // ring, so all ranks derive identical chunk plans.
        if let Some(tuning) = cfg.tuning {
            for ring in &mut rings {
                for ep in ring.iter_mut().flatten() {
                    ep.tuning = tuning;
                }
            }
        }
        // Intra-stage broadcast fan-out from each stage's rank 0.
        let mut bcast_txs: Vec<Vec<Sender<Tensor>>> = Vec::with_capacity(pp);
        let mut bcast_rxs: Vec<Vec<Option<Receiver<Tensor>>>> = Vec::with_capacity(pp);
        for _ in 0..pp {
            let mut txs = Vec::new();
            let mut rxs: Vec<Option<Receiver<Tensor>>> = vec![None];
            for _ in 1..tp {
                let (tx, rx) = channel::<Tensor>();
                txs.push(tx);
                rxs.push(Some(rx));
            }
            bcast_txs.push(txs);
            bcast_rxs.push(rxs);
        }
        // Pipeline boundary links between consecutive stages' rank 0s.
        let mut senders: Vec<Option<BoundarySender>> = Vec::with_capacity(pp);
        let mut receivers: Vec<Option<BoundaryReceiver>> = (0..pp).map(|_| None).collect();
        for b in 0..pp.saturating_sub(1) {
            let (fwd_tx, fwd_rx) = channel::<FwdMsg>();
            let (grad_tx, grad_rx) = channel::<Tensor>();
            senders.push(Some(BoundarySender {
                comp: build_boundary(b),
                bytes: actcomp_mp::CommBytes::default(),
                tx: fwd_tx,
                grad_rx,
            }));
            receivers[b + 1] = Some(BoundaryReceiver {
                replica: build_boundary(b),
                rx: fwd_rx,
                grad_tx,
            });
        }
        senders.push(None);

        let mut handles = Vec::with_capacity(world);
        for stage in 0..pp {
            let lo = offsets[stage];
            let hi = offsets
                .get(stage + 1)
                .copied()
                .unwrap_or(cfg.mp.bert.layers);
            for tpi in 0..tp {
                let rank = stage * tp + tpi;
                let layers: Vec<RankLayer> = (lo..hi)
                    .map(|l| {
                        let seeds = &layer_seeds[l];
                        RankLayer::from_serial(
                            &serial.layers[l],
                            tpi,
                            tp,
                            build(seeds.attn.0, seeds.attn.1),
                            build(seeds.ff.0, seeds.ff.1),
                        )
                    })
                    .collect();
                let embedding = (stage == 0).then(|| {
                    EmbeddingStage::new(
                        serial.tok.clone(),
                        serial.pos.clone(),
                        serial.emb_ln.clone(),
                    )
                });
                let mut ring_ep = rings[stage][tpi].take().expect("ring endpoint");
                // One trace cell per rank, shared between its ring
                // endpoint and its worker so ring, broadcast, and
                // boundary events interleave in program order.
                let trace = cfg.trace.then(|| {
                    let cell: TraceCell = Arc::new(Mutex::new(Vec::new()));
                    TraceHandle::new(stage, cell)
                });
                if let Some(t) = &trace {
                    ring_ep.set_trace(t.clone());
                }
                let worker = RankWorker::new(
                    rank,
                    stage,
                    tpi,
                    pp,
                    m,
                    embedding,
                    layers,
                    ring_ep,
                    if tpi == 0 {
                        std::mem::take(&mut bcast_txs[stage])
                    } else {
                        Vec::new()
                    },
                    bcast_rxs[stage][tpi].take(),
                    if tpi == 0 {
                        senders[stage].take()
                    } else {
                        None
                    },
                    if tpi == 0 {
                        receivers[stage].take()
                    } else {
                        None
                    },
                    cmd_rxs[rank].take().expect("command receiver"),
                    resp_tx.clone(),
                    trace,
                );
                let handle = std::thread::Builder::new()
                    .name(format!("actcomp-rank-{rank}"))
                    .spawn(move || worker.run())
                    .expect("spawn rank thread");
                handles.push(handle);
            }
        }

        Ok(ThreadedRuntime {
            cmd_txs,
            resp_rx,
            handles,
            cfg,
        })
    }

    /// The run configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Total rank (thread) count.
    pub fn world(&self) -> usize {
        self.cfg.world()
    }

    fn broadcast(&self, cmd: Command) {
        for tx in &self.cmd_txs {
            tx.send(cmd.clone()).expect("rank thread hung up");
        }
    }

    /// Collects one response per rank, returning them unordered.
    fn collect(&self) -> Vec<Response> {
        (0..self.cmd_txs.len())
            .map(|_| self.resp_rx.recv().expect("rank thread hung up"))
            .collect()
    }

    /// Runs a pipelined forward pass over the whole batch, returning the
    /// final hidden states `[batch · seq, hidden]`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::IdsLengthMismatch`] if `ids.len() != batch * seq`,
    /// [`RuntimeError::SeqTooLong`] if `seq` exceeds the model maximum,
    /// [`RuntimeError::BatchNotDivisible`] if `batch` is not divisible
    /// by the micro-batch count. Nothing is dispatched to the ranks on
    /// any error.
    pub fn forward(
        &mut self,
        ids: &[usize],
        batch: usize,
        seq: usize,
    ) -> Result<Tensor, RuntimeError> {
        if ids.len() != batch * seq {
            return Err(RuntimeError::IdsLengthMismatch {
                len: ids.len(),
                batch,
                seq,
            });
        }
        if seq > self.cfg.mp.bert.max_seq {
            return Err(RuntimeError::SeqTooLong {
                seq,
                max_seq: self.cfg.mp.bert.max_seq,
            });
        }
        if !batch.is_multiple_of(self.cfg.micro_batches) {
            return Err(RuntimeError::BatchNotDivisible {
                batch,
                micro_batches: self.cfg.micro_batches,
            });
        }
        self.broadcast(Command::Forward {
            ids: ids.to_vec(),
            batch,
            seq,
        });
        let mut out = None;
        for resp in self.collect() {
            if let Response::Output { y } = resp {
                out = Some(y);
            }
        }
        Ok(out.expect("last stage produced an output"))
    }

    /// Runs the pipelined backward pass from the gradient of the final
    /// hidden states.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::GradRowsNotDivisible`] if the gradient's rows are
    /// not divisible by the micro-batch count; nothing is dispatched.
    pub fn backward(&mut self, dhidden: &Tensor) -> Result<(), RuntimeError> {
        let rows = if dhidden.rank() >= 1 {
            dhidden.dims()[0]
        } else {
            0
        };
        if !rows.is_multiple_of(self.cfg.micro_batches) {
            return Err(RuntimeError::GradRowsNotDivisible {
                rows,
                micro_batches: self.cfg.micro_batches,
            });
        }
        self.broadcast(Command::Backward {
            dhidden: dhidden.clone(),
        });
        let _ = self.collect();
        Ok(())
    }

    /// Drains every rank's recorded comm events, ordered by rank —
    /// `None` when the engine was built without `trace`. Events
    /// accumulate until taken: drain once per step for sequences that
    /// conform to the per-step static graph
    /// ([`actcomp_check::audit_trace`]).
    pub fn take_trace(&mut self) -> Option<Vec<Vec<TraceEvent>>> {
        if !self.cfg.trace {
            return None;
        }
        self.broadcast(Command::TakeTrace);
        let mut per_rank: Vec<Vec<TraceEvent>> = (0..self.world()).map(|_| Vec::new()).collect();
        for resp in self.collect() {
            if let Response::Trace { rank, events } = resp {
                per_rank[rank] = events;
            }
        }
        Some(per_rank)
    }

    /// Zeroes every parameter gradient on every rank.
    pub fn zero_grad(&mut self) {
        self.broadcast(Command::ZeroGrad);
        let _ = self.collect();
    }

    /// Applies one SGD step with learning rate `lr` on every rank.
    pub fn sgd_step(&mut self, lr: f32) {
        self.broadcast(Command::SgdStep { lr });
        let _ = self.collect();
    }

    /// Gathers all parameter gradients, reassembled into the exact order
    /// [`MpBert::visit_all_params`](actcomp_mp::MpBert::visit_all_params)
    /// visits them — the bridge the determinism tests compare across
    /// executors.
    pub fn collect_grads(&mut self) -> Vec<Tensor> {
        self.broadcast(Command::CollectGrads);
        let mut per_rank: Vec<Option<RankGrads>> = (0..self.world()).map(|_| None).collect();
        for resp in self.collect() {
            if let Response::Grads { rank, grads } = resp {
                per_rank[rank] = Some(grads);
            }
        }
        let grads: Vec<RankGrads> = per_rank
            .into_iter()
            .map(|g| g.expect("every rank reported grads"))
            .collect();

        let tp = self.cfg.mp.tp;
        let pp = self.cfg.mp.pp;
        let offsets = stage_offsets(self.cfg.mp.bert.layers, pp);
        let mut out: Vec<Tensor> = Vec::new();
        out.extend(grads[0].embedding.iter().cloned());
        let stage_of = |l: usize| -> (usize, usize) {
            let stage = (0..pp)
                .rev()
                .find(|&s| offsets[s] <= l)
                .expect("layer maps to a stage");
            (stage, l - offsets[stage])
        };
        for l in 0..self.cfg.mp.bert.layers {
            let (stage, li) = stage_of(l);
            let at = |t: usize| &grads[stage * tp + t].layers[li];
            for t in 0..tp {
                out.extend(at(t).wq.iter().cloned());
            }
            for t in 0..tp {
                out.extend(at(t).wk.iter().cloned());
            }
            for t in 0..tp {
                out.extend(at(t).wv.iter().cloned());
            }
            for t in 0..tp {
                out.push(at(t).wo_weight.clone());
            }
            out.push(at(0).wo_bias.clone());
            out.extend(at(0).ln1.iter().cloned());
            for t in 0..tp {
                out.extend(at(t).fc1.iter().cloned());
            }
            for t in 0..tp {
                out.push(at(t).fc2_weight.clone());
            }
            out.push(at(0).fc2_bias.clone());
            out.extend(at(0).ln2.iter().cloned());
        }
        for l in 0..self.cfg.mp.bert.layers {
            let (stage, li) = stage_of(l);
            let at = |t: usize| &grads[stage * tp + t].layers[li];
            for t in 0..tp {
                out.extend(at(t).attn_comp.iter().cloned());
            }
            for t in 0..tp {
                out.extend(at(t).ff_comp.iter().cloned());
            }
        }
        for b in 0..pp.saturating_sub(1) {
            out.extend(grads[b * tp].boundary_comp.iter().cloned());
        }
        out
    }

    /// Gathers per-rank timers and byte counters into the aggregated
    /// report (the payload of `BENCH_runtime.json`).
    pub fn report(&mut self) -> RuntimeReport {
        self.broadcast(Command::Report);
        let mut ranks: Vec<RankReport> = self
            .collect()
            .into_iter()
            .filter_map(|r| match r {
                Response::Report { report } => Some(*report),
                _ => None,
            })
            .collect();
        ranks.sort_by_key(|r| r.rank);
        RuntimeReport::from_ranks(
            self.cfg.mp.tp,
            self.cfg.mp.pp,
            self.cfg.micro_batches,
            ranks,
        )
    }
}

impl Drop for ThreadedRuntime {
    fn drop(&mut self) {
        for tx in &self.cmd_txs {
            // A rank that already exited (or panicked) has dropped its
            // receiver; that's fine during teardown.
            let _ = tx.send(Command::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
