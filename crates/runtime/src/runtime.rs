//! The threaded execution engine: spawns one OS thread per model-parallel
//! rank and drives them through command/response channels.
//!
//! Rank `r` owns tensor-parallel shard `r % tp` of pipeline stage
//! `r / tp`. Compressors are constructed with exactly the same RNG draw
//! order as the serial [`MpBert`](actcomp_mp::MpBert) builder, so a
//! threaded run and a serial run built from the same serial encoder and
//! seed hold bit-identical parameters.
//!
//! The rank workers speak [`MsgTx`](crate::link::MsgTx) /
//! [`MsgRx`](crate::link::MsgRx) links, so the same engine runs over
//! plain typed channels ([`ThreadedRuntime::from_serial`]) or over any
//! [`Transport`](actcomp_net::Transport) — in-process mpsc, Unix domain
//! sockets, loopback TCP — via [`ThreadedRuntime::with_transports`],
//! with bitwise identical results.

use crate::comm::TpGroup;
use crate::config::{RuntimeConfig, RuntimeError};
use crate::layer::RankLayer;
use crate::link::{build_rank_links, typed_world_links, RankLinks};
use crate::rank::{
    BoundaryReceiver, BoundarySender, Command, EmbeddingStage, RankGrads, RankWorker, Response,
};
use crate::report::{RankReport, RuntimeReport};
use crate::trace::{TraceCell, TraceHandle};
use actcomp_check::TraceEvent;
use actcomp_compress::spec::CompressorSpec;
use actcomp_compress::{Compressor, Identity};
use actcomp_mp::stage_offsets;
use actcomp_net::Transport;
use actcomp_nn::BertEncoder;
use actcomp_tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Per-layer compressor construction recipe, derived from the plan with
/// the serial builder's RNG draw order.
struct LayerSeeds {
    attn: (CompressorSpec, u64),
    ff: (CompressorSpec, u64),
}

/// Every compressor seed one run needs, drawn from the driver RNG with
/// the serial builder's exact draw order. Process mode re-draws the
/// identical set in every worker from the shared run seed, so all
/// processes build bit-identical compressor stacks.
pub(crate) struct Seeds {
    layers: Vec<LayerSeeds>,
    boundaries: Vec<Option<u64>>,
}

impl Seeds {
    /// Replicates the serial builder's RNG draw order: one seed per
    /// reduce (attention then feed-forward, in layer order), then one
    /// per *compressed* pipeline boundary.
    pub(crate) fn draw(cfg: &RuntimeConfig, rng: &mut ChaCha8Rng) -> Seeds {
        let tp = cfg.mp.tp;
        let layers = (0..cfg.mp.bert.layers)
            .map(|l| {
                let covered = cfg.mp.plan.covers(l);
                let spec = if covered && tp > 1 {
                    cfg.mp.plan.spec
                } else {
                    CompressorSpec::Baseline
                };
                LayerSeeds {
                    attn: (spec, rng.gen()),
                    ff: (spec, rng.gen()),
                }
            })
            .collect();
        let offsets = stage_offsets(cfg.mp.bert.layers, cfg.mp.pp);
        let boundaries = (0..cfg.mp.pp.saturating_sub(1))
            .map(|b| cfg.mp.plan.covers(offsets[b + 1]).then(|| rng.gen()))
            .collect();
        Seeds { layers, boundaries }
    }
}

/// Builds one rank's worker — shards, compressors, links — identically
/// whether the rank lives on a thread of this process (threads backend,
/// transport conformance harness) or is the sole rank of a worker
/// process (procs backend).
pub(crate) struct WorkerBuilder<'a> {
    serial: &'a BertEncoder,
    cfg: &'a RuntimeConfig,
    seeds: Seeds,
    offsets: Vec<usize>,
}

impl<'a> WorkerBuilder<'a> {
    pub(crate) fn new(serial: &'a BertEncoder, cfg: &'a RuntimeConfig, seeds: Seeds) -> Self {
        let offsets = stage_offsets(cfg.mp.bert.layers, cfg.mp.pp);
        WorkerBuilder {
            serial,
            cfg,
            seeds,
            offsets,
        }
    }

    /// Per-micro-batch activation element count — what the compressors
    /// are sized for. At `m = 1` this matches the serial executor.
    fn n(&self) -> usize {
        (self.cfg.mp.tokens / self.cfg.micro_batches) * self.cfg.mp.bert.hidden
    }

    fn build_compressor(&self, spec: CompressorSpec, seed: u64) -> Box<dyn Compressor> {
        let mut wrng = ChaCha8Rng::seed_from_u64(seed);
        let c = spec.build(&mut wrng, self.n(), self.cfg.mp.bert.hidden);
        if self.cfg.mp.error_feedback && spec != CompressorSpec::Baseline {
            Box::new(actcomp_compress::ErrorFeedback::new(c))
        } else {
            c
        }
    }

    /// The boundary-`b` compressor. Called once on the sending side and
    /// once on the receiving side with the same seed, yielding the
    /// lockstep replica pair.
    fn build_boundary(&self, b: usize) -> Box<dyn Compressor> {
        match self.seeds.boundaries[b] {
            Some(seed) => {
                let mut wrng = ChaCha8Rng::seed_from_u64(seed);
                let c = self
                    .cfg
                    .mp
                    .plan
                    .spec
                    .build(&mut wrng, self.n(), self.cfg.mp.bert.hidden);
                if self.cfg.mp.error_feedback {
                    Box::new(actcomp_compress::ErrorFeedback::new(c))
                } else {
                    c
                }
            }
            None => Box::new(Identity::new()),
        }
    }

    /// Assembles rank `rank`'s worker around its opened links.
    pub(crate) fn build(
        &self,
        rank: usize,
        links: RankLinks,
        cmd_rx: Receiver<Command>,
        resp_tx: Sender<Response>,
    ) -> RankWorker {
        let tp = self.cfg.mp.tp;
        let pp = self.cfg.mp.pp;
        let stage = rank / tp;
        let tpi = rank % tp;
        let lo = self.offsets[stage];
        let hi = self
            .offsets
            .get(stage + 1)
            .copied()
            .unwrap_or(self.cfg.mp.bert.layers);
        let layers: Vec<RankLayer> = (lo..hi)
            .map(|l| {
                let seeds = &self.seeds.layers[l];
                RankLayer::from_serial(
                    &self.serial.layers[l],
                    tpi,
                    tp,
                    self.build_compressor(seeds.attn.0, seeds.attn.1),
                    self.build_compressor(seeds.ff.0, seeds.ff.1),
                )
            })
            .collect();
        let embedding = (stage == 0).then(|| {
            EmbeddingStage::new(
                self.serial.tok.clone(),
                self.serial.pos.clone(),
                self.serial.emb_ln.clone(),
            )
        });
        let mut ring_ep = TpGroup::from_links(tpi, tp, links.ring_tx, links.ring_rx);
        // An explicit per-run tuning overrides what the endpoint
        // captured from process-global state; all ranks of a ring must
        // agree so they derive identical chunk plans.
        if let Some(tuning) = self.cfg.tuning {
            ring_ep.tuning = tuning;
        }
        // One trace cell per rank, shared between its ring endpoint and
        // its worker so ring, broadcast, and boundary events interleave
        // in program order.
        let trace = self.cfg.trace.then(|| {
            let cell: TraceCell = Arc::new(Mutex::new(Vec::new()));
            TraceHandle::new(stage, cell)
        });
        if let Some(t) = &trace {
            ring_ep.set_trace(t.clone());
        }
        let send_b = links.fwd_tx.map(|fwd_tx| BoundarySender {
            comp: self.build_boundary(stage),
            bytes: actcomp_mp::CommBytes::default(),
            tx: fwd_tx,
            grad_rx: links.grad_rx.expect("sender links come in pairs"),
        });
        let recv_b = links.fwd_rx.map(|fwd_rx| BoundaryReceiver {
            replica: self.build_boundary(stage - 1),
            rx: fwd_rx,
            grad_tx: links.grad_tx.expect("receiver links come in pairs"),
        });
        RankWorker::new(
            rank,
            stage,
            tpi,
            pp,
            self.cfg.micro_batches,
            embedding,
            layers,
            ring_ep,
            links.bcast_tx,
            links.bcast_rx,
            send_b,
            recv_b,
            cmd_rx,
            resp_tx,
            trace,
        )
    }
}

/// A multi-threaded model-parallel execution engine: `tp · pp` OS
/// threads exchanging compressed activations over channels.
///
/// With compression off ([`CompressionPlan::none`]) a step is
/// bit-identical to the serial [`MpBert`](actcomp_mp::MpBert) executor
/// (test-enforced); with compression on, runs are deterministic given
/// the seed because every collective reduces in rank order.
///
/// [`CompressionPlan::none`]: actcomp_compress::plan::CompressionPlan::none
pub struct ThreadedRuntime {
    cmd_txs: Vec<Sender<Command>>,
    resp_rxs: Vec<Receiver<Response>>,
    handles: Vec<JoinHandle<()>>,
    cfg: RuntimeConfig,
    /// Transports backing the rank links in [`Self::with_transports`]
    /// runs; kept alive (acceptor threads, sockets) until after the rank
    /// threads join.
    transports: Vec<Box<dyn Transport>>,
}

impl std::fmt::Debug for ThreadedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ThreadedRuntime(tp={}, pp={}, m={})",
            self.cfg.mp.tp, self.cfg.mp.pp, self.cfg.micro_batches
        )
    }
}

impl ThreadedRuntime {
    /// Builds the engine from a fresh serial initialization (drawing the
    /// serial encoder from `rng` first, exactly like
    /// [`MpBert::new`](actcomp_mp::MpBert::new)).
    pub fn new(rng: &mut ChaCha8Rng, cfg: RuntimeConfig) -> Result<Self, RuntimeError> {
        cfg.try_validate()?;
        let serial = BertEncoder::new(rng, cfg.mp.bert.clone());
        Self::from_serial(&serial, cfg, rng)
    }

    /// Shards an existing serial encoder across `tp · pp` rank threads
    /// wired with in-process typed channels — the fast path.
    ///
    /// `rng` is consumed with the same draw order as
    /// [`MpBert::from_serial`](actcomp_mp::MpBert::from_serial), so the
    /// two executors build identical compressor stacks from the same
    /// generator state.
    pub fn from_serial(
        serial: &BertEncoder,
        cfg: RuntimeConfig,
        rng: &mut ChaCha8Rng,
    ) -> Result<Self, RuntimeError> {
        let links = typed_world_links(cfg.mp.tp, cfg.mp.pp);
        Self::spawn(serial, cfg, rng, links, Vec::new())
    }

    /// Shards an existing serial encoder across `tp · pp` rank threads
    /// whose every inter-rank message crosses the given transports —
    /// one per rank, `transports[r].rank() == r` — instead of typed
    /// channels. The transport-conformance suite uses this to prove
    /// sockets and channels produce bitwise identical training steps.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::WorldMismatch`] if the transport set does not
    /// cover exactly ranks `0..tp·pp` in order;
    /// [`RuntimeError::Transport`] if opening any link fails. Validation
    /// errors as in [`Self::from_serial`].
    pub fn with_transports(
        serial: &BertEncoder,
        cfg: RuntimeConfig,
        rng: &mut ChaCha8Rng,
        mut transports: Vec<Box<dyn Transport>>,
    ) -> Result<Self, RuntimeError> {
        cfg.try_validate()?;
        let world = cfg.world();
        if transports.len() != world {
            return Err(RuntimeError::WorldMismatch {
                got: transports.len(),
                need: world,
            });
        }
        for (r, t) in transports.iter().enumerate() {
            if t.rank() != r || t.world() != world {
                return Err(RuntimeError::WorldMismatch {
                    got: t.world(),
                    need: world,
                });
            }
        }
        let mut links = Vec::with_capacity(world);
        for t in transports.iter_mut() {
            let l = build_rank_links(t.as_mut(), cfg.mp.tp, cfg.mp.pp).map_err(|e| {
                RuntimeError::Transport {
                    detail: e.to_string(),
                }
            })?;
            links.push(l);
        }
        Self::spawn(serial, cfg, rng, links, transports)
    }

    /// Common spawn path: draw seeds, build each rank's worker around
    /// its links, and start the rank threads.
    fn spawn(
        serial: &BertEncoder,
        cfg: RuntimeConfig,
        rng: &mut ChaCha8Rng,
        links: Vec<RankLinks>,
        transports: Vec<Box<dyn Transport>>,
    ) -> Result<Self, RuntimeError> {
        cfg.try_validate()?;
        let m = cfg.micro_batches;
        if !cfg.mp.tokens.is_multiple_of(m) {
            return Err(RuntimeError::BatchNotDivisible {
                batch: cfg.mp.tokens,
                micro_batches: m,
            });
        }
        let world = cfg.world();
        let seeds = Seeds::draw(&cfg, rng);
        let builder = WorkerBuilder::new(serial, &cfg, seeds);

        // One response channel per rank: each rank's stream is FIFO in
        // its own command order, so overlapped commands (the serving
        // engine keeps up to `depth` inference batches in flight) demux
        // correctly — a shared channel would interleave a fast stage's
        // batch-N+1 response ahead of the last stage's batch-N output.
        let mut resp_rxs = Vec::with_capacity(world);
        let mut cmd_txs = Vec::with_capacity(world);
        let mut handles = Vec::with_capacity(world);
        for (rank, rank_links) in links.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = channel::<Command>();
            cmd_txs.push(cmd_tx);
            let (resp_tx, resp_rx) = channel::<Response>();
            resp_rxs.push(resp_rx);
            let worker = builder.build(rank, rank_links, cmd_rx, resp_tx);
            let handle = std::thread::Builder::new()
                .name(format!("actcomp-rank-{rank}"))
                .spawn(move || worker.run())
                .expect("spawn rank thread");
            handles.push(handle);
        }

        Ok(ThreadedRuntime {
            cmd_txs,
            resp_rxs,
            handles,
            cfg,
            transports,
        })
    }

    /// The run configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Total rank (thread) count.
    pub fn world(&self) -> usize {
        self.cfg.world()
    }

    fn broadcast(&self, cmd: Command) {
        for tx in &self.cmd_txs {
            tx.send(cmd.clone()).expect("rank thread hung up");
        }
    }

    /// Collects one response per rank for the oldest outstanding
    /// command. Per-rank channels keep this correct even with several
    /// commands in flight: rank `r`'s next response always belongs to
    /// its oldest unanswered command.
    fn collect(&self) -> Vec<Response> {
        self.resp_rxs
            .iter()
            .map(|rx| rx.recv().expect("rank thread hung up"))
            .collect()
    }

    /// Runs a pipelined forward pass over the whole batch, returning the
    /// final hidden states `[batch · seq, hidden]`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::IdsLengthMismatch`] if `ids.len() != batch * seq`,
    /// [`RuntimeError::SeqTooLong`] if `seq` exceeds the model maximum,
    /// [`RuntimeError::BatchNotDivisible`] if `batch` is not divisible
    /// by the micro-batch count. Nothing is dispatched to the ranks on
    /// any error.
    pub fn forward(
        &mut self,
        ids: &[usize],
        batch: usize,
        seq: usize,
    ) -> Result<Tensor, RuntimeError> {
        if ids.len() != batch * seq {
            return Err(RuntimeError::IdsLengthMismatch {
                len: ids.len(),
                batch,
                seq,
            });
        }
        if seq > self.cfg.mp.bert.max_seq {
            return Err(RuntimeError::SeqTooLong {
                seq,
                max_seq: self.cfg.mp.bert.max_seq,
            });
        }
        if !batch.is_multiple_of(self.cfg.micro_batches) {
            return Err(RuntimeError::BatchNotDivisible {
                batch,
                micro_batches: self.cfg.micro_batches,
            });
        }
        self.broadcast(Command::Forward {
            ids: ids.to_vec(),
            batch,
            seq,
        });
        let mut out = None;
        for resp in self.collect() {
            if let Response::Output { y } = resp {
                out = Some(y);
            }
        }
        Ok(out.expect("last stage produced an output"))
    }

    /// Validates and dispatches a forward-only inference pass over a
    /// coalesced request batch of `nreq` requests of `seq` tokens each
    /// (`ids.len() == nreq * seq`, request-major) without waiting for
    /// the result. Each request runs as its own micro-batch, so the
    /// arithmetic per request is identical to submitting it alone —
    /// batching changes throughput, not bits.
    ///
    /// Pair every submit with exactly one [`Self::infer_wait`]. Because
    /// command channels buffer, a second batch can be submitted while
    /// the first computes: the ranks start it the moment their part of
    /// the previous batch retires, which is what keeps the pipeline full
    /// across batch boundaries (continuous batching).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::IdsLengthMismatch`], [`RuntimeError::SeqTooLong`],
    /// and [`RuntimeError::ZeroMicroBatches`] if `nreq == 0`. Nothing is
    /// dispatched on any error.
    pub fn infer_submit(
        &mut self,
        ids: &[usize],
        nreq: usize,
        seq: usize,
    ) -> Result<(), RuntimeError> {
        if nreq == 0 {
            return Err(RuntimeError::ZeroMicroBatches);
        }
        if ids.len() != nreq * seq {
            return Err(RuntimeError::IdsLengthMismatch {
                len: ids.len(),
                batch: nreq,
                seq,
            });
        }
        if seq > self.cfg.mp.bert.max_seq {
            return Err(RuntimeError::SeqTooLong {
                seq,
                max_seq: self.cfg.mp.bert.max_seq,
            });
        }
        self.broadcast(Command::Infer {
            ids: ids.to_vec(),
            batch: nreq,
            seq,
            micro: nreq,
        });
        Ok(())
    }

    /// Collects the result of the oldest outstanding
    /// [`Self::infer_submit`]: the final hidden states
    /// `[nreq · seq, hidden]`, request-major.
    pub fn infer_wait(&mut self) -> Result<Tensor, RuntimeError> {
        let mut out = None;
        for resp in self.collect() {
            if let Response::Output { y } = resp {
                out = Some(y);
            }
        }
        Ok(out.expect("last stage produced an output"))
    }

    /// [`Self::infer_submit`] + [`Self::infer_wait`] in one call.
    pub fn infer(
        &mut self,
        ids: &[usize],
        nreq: usize,
        seq: usize,
    ) -> Result<Tensor, RuntimeError> {
        self.infer_submit(ids, nreq, seq)?;
        self.infer_wait()
    }

    /// Runs the pipelined backward pass from the gradient of the final
    /// hidden states.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::GradRowsNotDivisible`] if the gradient's rows are
    /// not divisible by the micro-batch count; nothing is dispatched.
    pub fn backward(&mut self, dhidden: &Tensor) -> Result<(), RuntimeError> {
        let rows = if dhidden.rank() >= 1 {
            dhidden.dims()[0]
        } else {
            0
        };
        if !rows.is_multiple_of(self.cfg.micro_batches) {
            return Err(RuntimeError::GradRowsNotDivisible {
                rows,
                micro_batches: self.cfg.micro_batches,
            });
        }
        self.broadcast(Command::Backward {
            dhidden: dhidden.clone(),
        });
        let _ = self.collect();
        Ok(())
    }

    /// Drains every rank's recorded comm events, ordered by rank —
    /// `None` when the engine was built without `trace`. Events
    /// accumulate until taken: drain once per step for sequences that
    /// conform to the per-step static graph
    /// ([`actcomp_check::audit_trace`]).
    pub fn take_trace(&mut self) -> Option<Vec<Vec<TraceEvent>>> {
        if !self.cfg.trace {
            return None;
        }
        self.broadcast(Command::TakeTrace);
        let mut per_rank: Vec<Vec<TraceEvent>> = (0..self.world()).map(|_| Vec::new()).collect();
        for resp in self.collect() {
            if let Response::Trace { rank, events } = resp {
                per_rank[rank] = events;
            }
        }
        Some(per_rank)
    }

    /// Zeroes every parameter gradient on every rank.
    pub fn zero_grad(&mut self) {
        self.broadcast(Command::ZeroGrad);
        let _ = self.collect();
    }

    /// Applies one SGD step with learning rate `lr` on every rank.
    pub fn sgd_step(&mut self, lr: f32) {
        self.broadcast(Command::SgdStep { lr });
        let _ = self.collect();
    }

    /// Gathers all parameter gradients, reassembled into the exact order
    /// [`MpBert::visit_all_params`](actcomp_mp::MpBert::visit_all_params)
    /// visits them — the bridge the determinism tests compare across
    /// executors.
    pub fn collect_grads(&mut self) -> Vec<Tensor> {
        self.broadcast(Command::CollectGrads);
        let mut per_rank: Vec<Option<RankGrads>> = (0..self.world()).map(|_| None).collect();
        for resp in self.collect() {
            if let Response::Grads { rank, grads } = resp {
                per_rank[rank] = Some(grads);
            }
        }
        let grads: Vec<RankGrads> = per_rank
            .into_iter()
            .map(|g| g.expect("every rank reported grads"))
            .collect();
        assemble_grads(&self.cfg, &grads)
    }

    /// Gathers per-rank timers and byte counters into the aggregated
    /// report (the payload of `BENCH_runtime.json`).
    pub fn report(&mut self) -> RuntimeReport {
        self.broadcast(Command::Report);
        let mut ranks: Vec<RankReport> = self
            .collect()
            .into_iter()
            .filter_map(|r| match r {
                Response::Report { report } => Some(*report),
                _ => None,
            })
            .collect();
        ranks.sort_by_key(|r| r.rank);
        RuntimeReport::from_ranks(
            self.cfg.mp.tp,
            self.cfg.mp.pp,
            self.cfg.micro_batches,
            ranks,
        )
    }
}

/// Reassembles per-rank gradient snapshots (indexed by rank) into the
/// exact order
/// [`MpBert::visit_all_params`](actcomp_mp::MpBert::visit_all_params)
/// visits them. Shared by the threads and procs drivers.
pub(crate) fn assemble_grads(cfg: &RuntimeConfig, grads: &[RankGrads]) -> Vec<Tensor> {
    let tp = cfg.mp.tp;
    let pp = cfg.mp.pp;
    let offsets = stage_offsets(cfg.mp.bert.layers, pp);
    let mut out: Vec<Tensor> = Vec::new();
    out.extend(grads[0].embedding.iter().cloned());
    let stage_of = |l: usize| -> (usize, usize) {
        let stage = (0..pp)
            .rev()
            .find(|&s| offsets[s] <= l)
            .expect("layer maps to a stage");
        (stage, l - offsets[stage])
    };
    for l in 0..cfg.mp.bert.layers {
        let (stage, li) = stage_of(l);
        let at = |t: usize| &grads[stage * tp + t].layers[li];
        for t in 0..tp {
            out.extend(at(t).wq.iter().cloned());
        }
        for t in 0..tp {
            out.extend(at(t).wk.iter().cloned());
        }
        for t in 0..tp {
            out.extend(at(t).wv.iter().cloned());
        }
        for t in 0..tp {
            out.push(at(t).wo_weight.clone());
        }
        out.push(at(0).wo_bias.clone());
        out.extend(at(0).ln1.iter().cloned());
        for t in 0..tp {
            out.extend(at(t).fc1.iter().cloned());
        }
        for t in 0..tp {
            out.push(at(t).fc2_weight.clone());
        }
        out.push(at(0).fc2_bias.clone());
        out.extend(at(0).ln2.iter().cloned());
    }
    for l in 0..cfg.mp.bert.layers {
        let (stage, li) = stage_of(l);
        let at = |t: usize| &grads[stage * tp + t].layers[li];
        for t in 0..tp {
            out.extend(at(t).attn_comp.iter().cloned());
        }
        for t in 0..tp {
            out.extend(at(t).ff_comp.iter().cloned());
        }
    }
    for b in 0..pp.saturating_sub(1) {
        out.extend(grads[b * tp].boundary_comp.iter().cloned());
    }
    out
}

impl Drop for ThreadedRuntime {
    fn drop(&mut self) {
        for tx in &self.cmd_txs {
            // A rank that already exited (or panicked) has dropped its
            // receiver; that's fine during teardown.
            let _ = tx.send(Command::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        for t in self.transports.iter_mut() {
            t.shutdown();
        }
    }
}
