//! Bit-exact binary serialization for every message the runtime moves
//! over a framed transport.
//!
//! The codec is hand-rolled little-endian rather than JSON because the
//! transport-conformance invariant is *bitwise*: an `f32` must cross
//! the wire as its exact bit pattern (`to_le_bytes`/`from_le_bytes`),
//! never through a decimal round-trip. Layout is positional with a
//! one-byte tag for enums — exactly what the in-process typed channels
//! carry, flattened.
//!
//! Decoding returns typed errors; the data-plane callers treat a
//! malformed frame the same way they treat a hung-up channel (the
//! worker aborts), while control-plane callers surface it.

use crate::layer::LayerGrads;
use crate::rank::RankGrads;
use actcomp_compress::{Compressed, Payload};
use actcomp_tensor::{Shape, Tensor};
use bytes::Bytes;

/// A decode failure: what was being parsed and why it stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What the decoder was reading.
    pub what: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed wire payload while decoding {}", self.what)
    }
}

impl std::error::Error for WireError {}

fn fail<T>(what: &'static str) -> Result<T, WireError> {
    Err(WireError { what })
}

/// A cursor over a received payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, at: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn done(&self) -> bool {
        self.at == self.buf.len()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.at + n > self.buf.len() {
            return fail(what);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn usize(&mut self, what: &'static str) -> Result<usize, WireError> {
        Ok(self.u64(what)? as usize)
    }

    fn f32(&mut self, what: &'static str) -> Result<f32, WireError> {
        let b = self.take(4, what)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn bytes(&mut self, what: &'static str) -> Result<Vec<u8>, WireError> {
        let n = self.usize(what)?;
        Ok(self.take(n, what)?.to_vec())
    }

    fn f32_vec(&mut self, what: &'static str) -> Result<Vec<f32>, WireError> {
        let n = self.usize(what)?;
        let raw = self.take(n.checked_mul(4).ok_or(WireError { what })?, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn u32_vec(&mut self, what: &'static str) -> Result<Vec<u32>, WireError> {
        let n = self.usize(what)?;
        let raw = self.take(n.checked_mul(4).ok_or(WireError { what })?, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn string(&mut self, what: &'static str) -> Result<String, WireError> {
        let raw = self.bytes(what)?;
        String::from_utf8(raw).or(fail(what))
    }
}

// ---------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

pub(crate) fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_usize(out, v.len());
    out.extend_from_slice(v);
}

pub(crate) fn put_f32_slice(out: &mut Vec<u8>, v: &[f32]) {
    put_usize(out, v.len());
    out.reserve(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

pub(crate) fn put_u32_slice(out: &mut Vec<u8>, v: &[u32]) {
    put_usize(out, v.len());
    out.reserve(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

pub(crate) fn put_string(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

// ---------------------------------------------------------------------
// The message trait
// ---------------------------------------------------------------------

/// A message with a flat little-endian wire form. Encoding then
/// decoding yields a bitwise-identical value (f32 payloads included).
pub trait WireMsg: Sized + Send {
    /// Appends this value's wire form to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Parses one value from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encodes a full message into a fresh payload buffer.
pub fn encode_msg<T: WireMsg>(msg: &T) -> Vec<u8> {
    let mut out = Vec::new();
    msg.encode(&mut out);
    out
}

/// Decodes a full payload, requiring every byte to be consumed.
pub fn decode_msg<T: WireMsg>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(buf);
    let v = T::decode(&mut r)?;
    if !r.done() {
        return fail("trailing bytes");
    }
    Ok(v)
}

impl WireMsg for Tensor {
    fn encode(&self, out: &mut Vec<u8>) {
        let dims = self.dims();
        put_usize(out, dims.len());
        for &d in dims {
            put_usize(out, d);
        }
        put_f32_slice(out, self.as_slice());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let rank = r.usize("tensor rank")?;
        if rank > 8 {
            return fail("tensor rank");
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(r.usize("tensor dim")?);
        }
        if dims.contains(&0) {
            return fail("tensor dim");
        }
        let data = r.f32_vec("tensor data")?;
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return fail("tensor data length");
        }
        Ok(Tensor::from_vec(data, shape))
    }
}

impl WireMsg for Vec<Tensor> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_usize(out, self.len());
        for t in self {
            t.encode(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.usize("tensor list length")?;
        if n > 1 << 24 {
            return fail("tensor list length");
        }
        (0..n).map(|_| Tensor::decode(r)).collect()
    }
}

impl WireMsg for Compressed {
    fn encode(&self, out: &mut Vec<u8>) {
        let dims = self.shape().dims();
        put_usize(out, dims.len());
        for &d in dims {
            put_usize(out, d);
        }
        match self.payload() {
            Payload::Dense(t) => {
                put_u8(out, 0);
                t.encode(out);
            }
            Payload::Sparse { values, indices } => {
                put_u8(out, 1);
                put_f32_slice(out, values);
                put_u32_slice(out, indices);
            }
            Payload::Quantized {
                codes,
                bits,
                scale,
                zero,
            } => {
                put_u8(out, 2);
                put_bytes(out, &codes.to_vec());
                put_u8(out, *bits);
                put_f32(out, *scale);
                put_f32(out, *zero);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let rank = r.usize("compressed shape rank")?;
        if rank > 8 {
            return fail("compressed shape rank");
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(r.usize("compressed shape dim")?);
        }
        if dims.contains(&0) {
            return fail("compressed shape dim");
        }
        let shape = Shape::new(dims);
        let payload = match r.u8("compressed payload tag")? {
            0 => Payload::Dense(Tensor::decode(r)?),
            1 => Payload::Sparse {
                values: r.f32_vec("sparse values")?,
                indices: r.u32_vec("sparse indices")?,
            },
            2 => Payload::Quantized {
                codes: Bytes::copy_from_slice(&r.bytes("quantized codes")?),
                bits: r.u8("quantized bits")?,
                scale: r.f32("quantized scale")?,
                zero: r.f32("quantized zero")?,
            },
            _ => return fail("compressed payload tag"),
        };
        Ok(Compressed::new(payload, shape))
    }
}

impl WireMsg for LayerGrads {
    fn encode(&self, out: &mut Vec<u8>) {
        self.wq.encode(out);
        self.wk.encode(out);
        self.wv.encode(out);
        self.wo_weight.encode(out);
        self.wo_bias.encode(out);
        self.ln1.encode(out);
        self.fc1.encode(out);
        self.fc2_weight.encode(out);
        self.fc2_bias.encode(out);
        self.ln2.encode(out);
        self.attn_comp.encode(out);
        self.ff_comp.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LayerGrads {
            wq: Vec::<Tensor>::decode(r)?,
            wk: Vec::<Tensor>::decode(r)?,
            wv: Vec::<Tensor>::decode(r)?,
            wo_weight: Tensor::decode(r)?,
            wo_bias: Tensor::decode(r)?,
            ln1: Vec::<Tensor>::decode(r)?,
            fc1: Vec::<Tensor>::decode(r)?,
            fc2_weight: Tensor::decode(r)?,
            fc2_bias: Tensor::decode(r)?,
            ln2: Vec::<Tensor>::decode(r)?,
            attn_comp: Vec::<Tensor>::decode(r)?,
            ff_comp: Vec::<Tensor>::decode(r)?,
        })
    }
}

impl WireMsg for RankGrads {
    fn encode(&self, out: &mut Vec<u8>) {
        self.embedding.encode(out);
        put_usize(out, self.layers.len());
        for l in &self.layers {
            l.encode(out);
        }
        self.boundary_comp.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let embedding = Vec::<Tensor>::decode(r)?;
        let n = r.usize("layer grads length")?;
        if n > 1 << 16 {
            return fail("layer grads length");
        }
        let layers = (0..n)
            .map(|_| LayerGrads::decode(r))
            .collect::<Result<_, _>>()?;
        let boundary_comp = Vec::<Tensor>::decode(r)?;
        Ok(RankGrads {
            embedding,
            layers,
            boundary_comp,
        })
    }
}

// Re-exported reader helpers for the control-plane codecs in
// `procs.rs` (Hello/PeerTable frames use strings and scalars).
impl Reader<'_> {
    /// Reads a length-prefixed UTF-8 string.
    pub fn read_string(&mut self, what: &'static str) -> Result<String, WireError> {
        self.string(what)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        self.u8(what)
    }

    /// Reads a `u64` length/count as `usize`.
    pub fn read_usize(&mut self, what: &'static str) -> Result<usize, WireError> {
        self.usize(what)
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        self.u64(what)
    }

    /// Reads a little-endian `f32`.
    pub fn read_f32(&mut self, what: &'static str) -> Result<f32, WireError> {
        self.f32(what)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireMsg + PartialEq + std::fmt::Debug>(v: &T) {
        let buf = encode_msg(v);
        let back: T = decode_msg(&buf).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn tensors_roundtrip_bitwise() {
        roundtrip(&Tensor::from_vec(
            vec![1.0f32, -0.0, f32::MIN_POSITIVE, 3.5e-39, 1.0e38],
            vec![5],
        ));
        roundtrip(&Tensor::from_vec(
            (0..24).map(|i| i as f32 * 0.1).collect(),
            vec![2, 3, 4],
        ));
    }

    #[test]
    fn compressed_payloads_roundtrip() {
        let dense = Compressed::new(
            Payload::Dense(Tensor::from_vec(vec![0.25f32, -1.5], vec![2])),
            Shape::new(vec![2]),
        );
        let buf = encode_msg(&dense);
        let back: Compressed = decode_msg(&buf).expect("decode");
        assert_eq!(back.shape(), dense.shape());
        match (back.payload(), dense.payload()) {
            (Payload::Dense(a), Payload::Dense(b)) => assert_eq!(a, b),
            _ => panic!("payload variant changed"),
        }

        let sparse = Compressed::new(
            Payload::Sparse {
                values: vec![1.0, 2.5],
                indices: vec![3, 7],
            },
            Shape::new(vec![4, 2]),
        );
        let back: Compressed = decode_msg(&encode_msg(&sparse)).expect("decode");
        match back.payload() {
            Payload::Sparse { values, indices } => {
                assert_eq!(values, &[1.0, 2.5]);
                assert_eq!(indices, &[3, 7]);
            }
            _ => panic!("payload variant changed"),
        }

        let quant = Compressed::new(
            Payload::Quantized {
                codes: Bytes::copy_from_slice(&[0xAB, 0xCD]),
                bits: 4,
                scale: 0.125,
                zero: -1.0,
            },
            Shape::new(vec![2, 2]),
        );
        let back: Compressed = decode_msg(&encode_msg(&quant)).expect("decode");
        match back.payload() {
            Payload::Quantized {
                codes,
                bits,
                scale,
                zero,
            } => {
                assert_eq!(codes.to_vec(), vec![0xAB, 0xCD]);
                assert_eq!(*bits, 4);
                assert_eq!(*scale, 0.125);
                assert_eq!(*zero, -1.0);
            }
            _ => panic!("payload variant changed"),
        }
    }

    #[test]
    fn truncated_payloads_are_typed_errors() {
        let t = Tensor::from_vec(vec![1.0f32; 6], vec![2, 3]);
        let buf = encode_msg(&t);
        assert!(decode_msg::<Tensor>(&buf[..buf.len() - 1]).is_err());
        let mut extra = buf.clone();
        extra.push(0);
        assert!(decode_msg::<Tensor>(&extra).is_err());
    }
}
