//! Bit-exact binary serialization for every message the runtime moves
//! over a framed transport.
//!
//! The codec is hand-rolled little-endian rather than JSON because the
//! transport-conformance invariant is *bitwise*: an `f32` must cross
//! the wire as its exact bit pattern (`to_le_bytes`/`from_le_bytes`),
//! never through a decimal round-trip. Layout is positional with a
//! one-byte tag for enums — exactly what the in-process typed channels
//! carry, flattened.
//!
//! Decoding returns typed errors; the data-plane callers treat a
//! malformed frame the same way they treat a hung-up channel (the
//! worker aborts), while control-plane callers surface it.

use crate::layer::LayerGrads;
use crate::rank::RankGrads;
use actcomp_compress::{Compressed, Payload};
use actcomp_tensor::{Shape, Tensor};
use bytes::Bytes;
use std::sync::atomic::{AtomicU8, Ordering};

// ---------------------------------------------------------------------
// Wire dtype (dense activation precision on the wire)
// ---------------------------------------------------------------------

/// Precision used for **dense** activation payloads on a framed
/// transport (`--wire-dtype`). `F16` halves dense wire bytes at ~1e-3
/// relative error; it never touches sparse or quantized payloads, and
/// in-process typed channels bypass the wire codec entirely, so only
/// transport-backed runs are affected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireDtype {
    /// Exact bit-pattern f32 (the default; bitwise conformance holds).
    #[default]
    F32,
    /// IEEE 754 binary16 with round-to-nearest-even, decoded back to
    /// f32 on receive.
    F16,
}

impl WireDtype {
    /// Parses a `--wire-dtype` value.
    pub fn parse(s: &str) -> Option<WireDtype> {
        match s {
            "f32" => Some(WireDtype::F32),
            "f16" => Some(WireDtype::F16),
            _ => None,
        }
    }

    /// The config-file spelling.
    pub fn name(self) -> &'static str {
        match self {
            WireDtype::F32 => "f32",
            WireDtype::F16 => "f16",
        }
    }
}

/// Process-global encode-side dtype. Decoders always accept both tags,
/// so mixed worlds interoperate as long as every encoder is set
/// consistently *before* workers start (each worker process applies its
/// own `--wire-dtype` at startup).
static WIRE_DTYPE: AtomicU8 = AtomicU8::new(0);

/// Sets the dense wire precision for every subsequent encode in this
/// process; returns the previous setting (tests restore it).
pub fn set_wire_dtype(d: WireDtype) -> WireDtype {
    let prev = WIRE_DTYPE.swap(d as u8, Ordering::Relaxed);
    if prev == WireDtype::F16 as u8 {
        WireDtype::F16
    } else {
        WireDtype::F32
    }
}

/// The dense wire precision currently in effect for this process.
pub fn wire_dtype() -> WireDtype {
    if WIRE_DTYPE.load(Ordering::Relaxed) == WireDtype::F16 as u8 {
        WireDtype::F16
    } else {
        WireDtype::F32
    }
}

/// Converts an `f32` to IEEE binary16 bits, round-to-nearest-even.
/// Overflow saturates to infinity; NaN stays NaN (quiet bit forced so
/// the mantissa cannot truncate to an infinity pattern).
pub(crate) fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        return sign | 0x7c00 | if man != 0 { 0x0200 } else { 0 };
    }
    let e = exp - 127 + 15;
    if e >= 0x1f {
        return sign | 0x7c00;
    }
    if e <= 0 {
        if e < -10 {
            return sign;
        }
        // Half subnormal: shift the implicit-1 mantissa into place.
        let man = man | 0x0080_0000;
        let shift = (14 - e) as u32;
        let half = man >> shift;
        let rem = man & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let rounded = if rem > halfway || (rem == halfway && half & 1 == 1) {
            half + 1
        } else {
            half
        };
        return sign | rounded as u16;
    }
    let half = ((e as u32) << 10) | (man >> 13);
    let rem = man & 0x1fff;
    // A mantissa carry on round-up overflows into the exponent field,
    // which is exactly the right encoding (up to and including inf).
    let rounded = if rem > 0x1000 || (rem == 0x1000 && half & 1 == 1) {
        half + 1
    } else {
        half
    };
    sign | rounded as u16
}

/// Converts IEEE binary16 bits back to `f32` (exact — every f16 value
/// is representable in f32).
pub(crate) fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = (h >> 10) & 0x1f;
    let man = (h & 0x03ff) as u32;
    match (exp, man) {
        (0, 0) => f32::from_bits(sign),
        // Subnormal half = man * 2^-24; the product is exact in f32.
        (0, _) => {
            let v = man as f32 * f32::from_bits(0x3380_0000); // 2^-24
            if sign != 0 {
                -v
            } else {
                v
            }
        }
        (0x1f, 0) => f32::from_bits(sign | 0x7f80_0000),
        (0x1f, _) => f32::from_bits(sign | 0x7fc0_0000 | (man << 13)),
        _ => f32::from_bits(sign | ((exp as u32 + 127 - 15) << 23) | (man << 13)),
    }
}

/// A decode failure: what was being parsed and why it stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What the decoder was reading.
    pub what: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed wire payload while decoding {}", self.what)
    }
}

impl std::error::Error for WireError {}

fn fail<T>(what: &'static str) -> Result<T, WireError> {
    Err(WireError { what })
}

/// A cursor over a received payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, at: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn done(&self) -> bool {
        self.at == self.buf.len()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.at + n > self.buf.len() {
            return fail(what);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn usize(&mut self, what: &'static str) -> Result<usize, WireError> {
        Ok(self.u64(what)? as usize)
    }

    fn f32(&mut self, what: &'static str) -> Result<f32, WireError> {
        let b = self.take(4, what)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn bytes(&mut self, what: &'static str) -> Result<Vec<u8>, WireError> {
        let n = self.usize(what)?;
        Ok(self.take(n, what)?.to_vec())
    }

    fn f32_vec(&mut self, what: &'static str) -> Result<Vec<f32>, WireError> {
        let n = self.usize(what)?;
        let raw = self.take(n.checked_mul(4).ok_or(WireError { what })?, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn u32_vec(&mut self, what: &'static str) -> Result<Vec<u32>, WireError> {
        let n = self.usize(what)?;
        let raw = self.take(n.checked_mul(4).ok_or(WireError { what })?, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn string(&mut self, what: &'static str) -> Result<String, WireError> {
        let raw = self.bytes(what)?;
        String::from_utf8(raw).or(fail(what))
    }
}

// ---------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

pub(crate) fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_usize(out, v.len());
    out.extend_from_slice(v);
}

pub(crate) fn put_f32_slice(out: &mut Vec<u8>, v: &[f32]) {
    put_usize(out, v.len());
    out.reserve(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

pub(crate) fn put_u32_slice(out: &mut Vec<u8>, v: &[u32]) {
    put_usize(out, v.len());
    out.reserve(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

pub(crate) fn put_string(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

/// The body of a tag-3 (f16 dense) compressed frame: tensor dims, then
/// a length-prefixed run of little-endian binary16 values. Factored out
/// so tests can measure and decode the half frame without touching the
/// process-global dtype.
pub(crate) fn put_dense_f16(out: &mut Vec<u8>, t: &Tensor) {
    let tdims = t.dims();
    put_usize(out, tdims.len());
    for &d in tdims {
        put_usize(out, d);
    }
    let data = t.as_slice();
    put_usize(out, data.len());
    out.reserve(data.len() * 2);
    for &x in data {
        out.extend_from_slice(&f32_to_f16_bits(x).to_le_bytes());
    }
}

// ---------------------------------------------------------------------
// The message trait
// ---------------------------------------------------------------------

/// A message with a flat little-endian wire form. Encoding then
/// decoding yields a bitwise-identical value (f32 payloads included).
pub trait WireMsg: Sized + Send {
    /// Appends this value's wire form to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Parses one value from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encodes a full message into a fresh payload buffer.
pub fn encode_msg<T: WireMsg>(msg: &T) -> Vec<u8> {
    let mut out = Vec::new();
    msg.encode(&mut out);
    out
}

/// Decodes a full payload, requiring every byte to be consumed.
pub fn decode_msg<T: WireMsg>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(buf);
    let v = T::decode(&mut r)?;
    if !r.done() {
        return fail("trailing bytes");
    }
    Ok(v)
}

impl WireMsg for Tensor {
    fn encode(&self, out: &mut Vec<u8>) {
        let dims = self.dims();
        put_usize(out, dims.len());
        for &d in dims {
            put_usize(out, d);
        }
        put_f32_slice(out, self.as_slice());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let rank = r.usize("tensor rank")?;
        if rank > 8 {
            return fail("tensor rank");
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(r.usize("tensor dim")?);
        }
        if dims.contains(&0) {
            return fail("tensor dim");
        }
        let data = r.f32_vec("tensor data")?;
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return fail("tensor data length");
        }
        Ok(Tensor::from_vec(data, shape))
    }
}

impl WireMsg for Vec<Tensor> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_usize(out, self.len());
        for t in self {
            t.encode(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.usize("tensor list length")?;
        if n > 1 << 24 {
            return fail("tensor list length");
        }
        (0..n).map(|_| Tensor::decode(r)).collect()
    }
}

impl WireMsg for Compressed {
    fn encode(&self, out: &mut Vec<u8>) {
        let dims = self.shape().dims();
        put_usize(out, dims.len());
        for &d in dims {
            put_usize(out, d);
        }
        match self.payload() {
            Payload::Dense(t) if wire_dtype() == WireDtype::F16 => {
                put_u8(out, 3);
                put_dense_f16(out, t);
            }
            Payload::Dense(t) => {
                put_u8(out, 0);
                t.encode(out);
            }
            Payload::Sparse { values, indices } => {
                put_u8(out, 1);
                put_f32_slice(out, values);
                put_u32_slice(out, indices);
            }
            Payload::Quantized {
                codes,
                bits,
                scale,
                zero,
            } => {
                put_u8(out, 2);
                put_bytes(out, &codes.to_vec());
                put_u8(out, *bits);
                put_f32(out, *scale);
                put_f32(out, *zero);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let rank = r.usize("compressed shape rank")?;
        if rank > 8 {
            return fail("compressed shape rank");
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(r.usize("compressed shape dim")?);
        }
        if dims.contains(&0) {
            return fail("compressed shape dim");
        }
        let shape = Shape::new(dims);
        let payload = match r.u8("compressed payload tag")? {
            0 => Payload::Dense(Tensor::decode(r)?),
            1 => Payload::Sparse {
                values: r.f32_vec("sparse values")?,
                indices: r.u32_vec("sparse indices")?,
            },
            2 => Payload::Quantized {
                codes: Bytes::copy_from_slice(&r.bytes("quantized codes")?),
                bits: r.u8("quantized bits")?,
                scale: r.f32("quantized scale")?,
                zero: r.f32("quantized zero")?,
            },
            // Decoders always accept f16 dense frames regardless of the
            // local encode-side dtype.
            3 => {
                let trank = r.usize("f16 tensor rank")?;
                if trank > 8 {
                    return fail("f16 tensor rank");
                }
                let mut tdims = Vec::with_capacity(trank);
                for _ in 0..trank {
                    tdims.push(r.usize("f16 tensor dim")?);
                }
                if tdims.contains(&0) {
                    return fail("f16 tensor dim");
                }
                let n = r.usize("f16 tensor data length")?;
                if n > 1 << 28 {
                    return fail("f16 tensor data length");
                }
                let raw = r.take(
                    n.checked_mul(2).ok_or(WireError {
                        what: "f16 tensor data length",
                    })?,
                    "f16 tensor data",
                )?;
                let data: Vec<f32> = raw
                    .chunks_exact(2)
                    .map(|c| f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]])))
                    .collect();
                let tshape = Shape::new(tdims);
                if data.len() != tshape.len() {
                    return fail("f16 tensor data length");
                }
                Payload::Dense(Tensor::from_vec(data, tshape))
            }
            _ => return fail("compressed payload tag"),
        };
        Ok(Compressed::new(payload, shape))
    }
}

impl WireMsg for LayerGrads {
    fn encode(&self, out: &mut Vec<u8>) {
        self.wq.encode(out);
        self.wk.encode(out);
        self.wv.encode(out);
        self.wo_weight.encode(out);
        self.wo_bias.encode(out);
        self.ln1.encode(out);
        self.fc1.encode(out);
        self.fc2_weight.encode(out);
        self.fc2_bias.encode(out);
        self.ln2.encode(out);
        self.attn_comp.encode(out);
        self.ff_comp.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LayerGrads {
            wq: Vec::<Tensor>::decode(r)?,
            wk: Vec::<Tensor>::decode(r)?,
            wv: Vec::<Tensor>::decode(r)?,
            wo_weight: Tensor::decode(r)?,
            wo_bias: Tensor::decode(r)?,
            ln1: Vec::<Tensor>::decode(r)?,
            fc1: Vec::<Tensor>::decode(r)?,
            fc2_weight: Tensor::decode(r)?,
            fc2_bias: Tensor::decode(r)?,
            ln2: Vec::<Tensor>::decode(r)?,
            attn_comp: Vec::<Tensor>::decode(r)?,
            ff_comp: Vec::<Tensor>::decode(r)?,
        })
    }
}

impl WireMsg for RankGrads {
    fn encode(&self, out: &mut Vec<u8>) {
        self.embedding.encode(out);
        put_usize(out, self.layers.len());
        for l in &self.layers {
            l.encode(out);
        }
        self.boundary_comp.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let embedding = Vec::<Tensor>::decode(r)?;
        let n = r.usize("layer grads length")?;
        if n > 1 << 16 {
            return fail("layer grads length");
        }
        let layers = (0..n)
            .map(|_| LayerGrads::decode(r))
            .collect::<Result<_, _>>()?;
        let boundary_comp = Vec::<Tensor>::decode(r)?;
        Ok(RankGrads {
            embedding,
            layers,
            boundary_comp,
        })
    }
}

// Re-exported reader helpers for the control-plane codecs in
// `procs.rs` (Hello/PeerTable frames use strings and scalars).
impl Reader<'_> {
    /// Reads a length-prefixed UTF-8 string.
    pub fn read_string(&mut self, what: &'static str) -> Result<String, WireError> {
        self.string(what)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        self.u8(what)
    }

    /// Reads a `u64` length/count as `usize`.
    pub fn read_usize(&mut self, what: &'static str) -> Result<usize, WireError> {
        self.usize(what)
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        self.u64(what)
    }

    /// Reads a little-endian `f32`.
    pub fn read_f32(&mut self, what: &'static str) -> Result<f32, WireError> {
        self.f32(what)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireMsg + PartialEq + std::fmt::Debug>(v: &T) {
        let buf = encode_msg(v);
        let back: T = decode_msg(&buf).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn tensors_roundtrip_bitwise() {
        roundtrip(&Tensor::from_vec(
            vec![1.0f32, -0.0, f32::MIN_POSITIVE, 3.5e-39, 1.0e38],
            vec![5],
        ));
        roundtrip(&Tensor::from_vec(
            (0..24).map(|i| i as f32 * 0.1).collect(),
            vec![2, 3, 4],
        ));
    }

    #[test]
    fn compressed_payloads_roundtrip() {
        let dense = Compressed::new(
            Payload::Dense(Tensor::from_vec(vec![0.25f32, -1.5], vec![2])),
            Shape::new(vec![2]),
        );
        let buf = encode_msg(&dense);
        let back: Compressed = decode_msg(&buf).expect("decode");
        assert_eq!(back.shape(), dense.shape());
        match (back.payload(), dense.payload()) {
            (Payload::Dense(a), Payload::Dense(b)) => assert_eq!(a, b),
            _ => panic!("payload variant changed"),
        }

        let sparse = Compressed::new(
            Payload::Sparse {
                values: vec![1.0, 2.5],
                indices: vec![3, 7],
            },
            Shape::new(vec![4, 2]),
        );
        let back: Compressed = decode_msg(&encode_msg(&sparse)).expect("decode");
        match back.payload() {
            Payload::Sparse { values, indices } => {
                assert_eq!(values, &[1.0, 2.5]);
                assert_eq!(indices, &[3, 7]);
            }
            _ => panic!("payload variant changed"),
        }

        let quant = Compressed::new(
            Payload::Quantized {
                codes: Bytes::copy_from_slice(&[0xAB, 0xCD]),
                bits: 4,
                scale: 0.125,
                zero: -1.0,
            },
            Shape::new(vec![2, 2]),
        );
        let back: Compressed = decode_msg(&encode_msg(&quant)).expect("decode");
        match back.payload() {
            Payload::Quantized {
                codes,
                bits,
                scale,
                zero,
            } => {
                assert_eq!(codes.to_vec(), vec![0xAB, 0xCD]);
                assert_eq!(*bits, 4);
                assert_eq!(*scale, 0.125);
                assert_eq!(*zero, -1.0);
            }
            _ => panic!("payload variant changed"),
        }
    }

    #[test]
    fn f16_conversion_exact_for_representable_values() {
        // Every value exactly representable in binary16 round-trips
        // bit-for-bit through f32 -> f16 -> f32.
        for v in [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.0,
            65504.0,
            -65504.0,
            1365.0 * 2f32.powi(-12), // 0.333251953125, an exact half mantissa
            2f32.powi(-14),          // smallest normal half
            5.9604645e-8,            // smallest subnormal half
            1023.0 * 2f32.powi(-24), // largest subnormal half
        ] {
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            assert_eq!(back.to_bits(), v.to_bits(), "value {v}");
        }
    }

    #[test]
    fn f16_conversion_rounds_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between two half values;
        // nearest-even keeps the even mantissa (1.0).
        assert_eq!(f32_to_f16_bits(1.0 + 2f32.powi(-11)), f32_to_f16_bits(1.0));
        // 1.0 + 3*2^-11 is halfway above an odd mantissa; rounds up to
        // the even neighbour.
        assert_eq!(
            f32_to_f16_bits(1.0 + 3.0 * 2f32.powi(-11)),
            f32_to_f16_bits(1.0 + 2f32.powi(-9)),
        );
        // Anything past half's max rounds to infinity; NaN stays NaN.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e6)), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e6)), f32::NEG_INFINITY);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Values below half's subnormal range flush to signed zero.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e-9)).to_bits(), 0);
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(-1e-9)).to_bits(),
            (-0.0f32).to_bits()
        );
    }

    #[test]
    fn f16_relative_error_bounded() {
        // Round-to-nearest gives |x - f16(x)| <= 2^-11 |x| for normals.
        let mut worst = 0.0f64;
        for i in 0..10_000 {
            let x = (i as f32 * 0.37 + 0.01) * if i % 2 == 0 { 1.0 } else { -1.0 };
            let x = x % 60000.0;
            let back = f16_bits_to_f32(f32_to_f16_bits(x));
            let rel = ((back - x) as f64 / x as f64).abs();
            worst = worst.max(rel);
        }
        assert!(worst <= 2f64.powi(-11), "worst rel error {worst}");
    }

    #[test]
    fn f16_dense_frames_halve_payload_and_decode_within_tolerance() {
        let vals: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) * 0.37 + 0.01).collect();
        let t = Tensor::from_vec(vals.clone(), vec![16, 16]);
        let dense = Compressed::new(Payload::Dense(t.clone()), Shape::new(vec![16, 16]));
        let f32_frame = encode_msg(&dense);

        // Hand-build the tag-3 frame (no global dtype mutation: the
        // bit-exact codec tests share this test binary).
        let mut f16_frame = Vec::new();
        put_usize(&mut f16_frame, 2);
        put_usize(&mut f16_frame, 16);
        put_usize(&mut f16_frame, 16);
        put_u8(&mut f16_frame, 3);
        put_dense_f16(&mut f16_frame, &t);

        assert!(
            f16_frame.len() < f32_frame.len() * 3 / 4,
            "f16 dense frame must be substantially smaller: {} vs {}",
            f16_frame.len(),
            f32_frame.len()
        );

        let back: Compressed = decode_msg(&f16_frame).expect("decode tag 3");
        assert_eq!(back.shape(), dense.shape());
        match back.payload() {
            Payload::Dense(got) => {
                for (a, b) in got.as_slice().iter().zip(&vals) {
                    let rel = ((a - b) / b).abs();
                    assert!(rel <= 2f32.powi(-11), "rel error {rel} for {b}");
                }
            }
            _ => panic!("tag 3 must decode to a dense payload"),
        }
    }

    #[test]
    fn wire_dtype_parses() {
        assert_eq!(WireDtype::parse("f32"), Some(WireDtype::F32));
        assert_eq!(WireDtype::parse("f16"), Some(WireDtype::F16));
        assert_eq!(WireDtype::parse("bf16"), None);
        assert_eq!(WireDtype::F16.name(), "f16");
    }

    #[test]
    fn truncated_payloads_are_typed_errors() {
        let t = Tensor::from_vec(vec![1.0f32; 6], vec![2, 3]);
        let buf = encode_msg(&t);
        assert!(decode_msg::<Tensor>(&buf[..buf.len() - 1]).is_err());
        let mut extra = buf.clone();
        extra.push(0);
        assert!(decode_msg::<Tensor>(&extra).is_err());
    }
}
