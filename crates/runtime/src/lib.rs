//! # actcomp-runtime
//!
//! A real multi-threaded model-parallel execution engine for the
//! `actcomp` reproduction of *"Does Compressing Activations Help Model
//! Parallel Training?"* (MLSys 2024).
//!
//! Where `actcomp-mp` executes model parallelism as a single-threaded
//! simulation (all workers' shards summed in-process) and
//! `actcomp-distsim` only *costs* it, this crate runs one OS thread per
//! model-parallel rank and moves activations between them as real
//! messages over `std::sync::mpsc` channels:
//!
//! - each rank owns its tensor-parallel shard of its pipeline stage,
//!   built from the same [`actcomp_mp`] shard primitives;
//! - the compressed all-reduce (summable auto-encoder codes) and
//!   compressed all-gather (Top-K / Random-K / quantized messages) run
//!   over a reusable ring topology ([`TpGroup`]) with the same
//!   compressor arithmetic as the serial
//!   [`CompressedAllReduce`](actcomp_mp::CompressedAllReduce);
//! - pipeline stages run the GPipe fill/drain micro-batch schedule,
//!   shared with `actcomp-distsim`'s
//!   [`gpipe_order`](actcomp_distsim::schedule::gpipe_order);
//! - every rank keeps per-phase wall-clock timers
//!   (compute/encode/wire/decode), aggregated into a [`RuntimeReport`]
//!   and emitted as `BENCH_runtime.json`.
//!
//! The engine is deterministic given a seed — every collective reduces
//! in rank order, per-rank RNGs are `ChaCha8` streams — and
//! bit-identical to the serial [`MpBert`](actcomp_mp::MpBert) when
//! compression is off (test-enforced).
//!
//! # Example
//!
//! ```
//! use actcomp_runtime::{RuntimeConfig, ThreadedRuntime};
//! use actcomp_mp::MpConfig;
//! use actcomp_compress::plan::CompressionPlan;
//! use actcomp_nn::BertConfig;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let cfg = RuntimeConfig {
//!     mp: MpConfig {
//!         bert: BertConfig { vocab: 32, hidden: 16, layers: 4, heads: 4, ff_hidden: 32, max_seq: 8 },
//!         tp: 2,
//!         pp: 2,
//!         plan: CompressionPlan::none(),
//!         tokens: 8,
//!         error_feedback: false,
//!     },
//!     micro_batches: 2,
//!     tuning: None,
//!     trace: false,
//! };
//! let mut rt = ThreadedRuntime::new(&mut rng, cfg).expect("valid config");
//! let hidden = rt.forward(&[1, 2, 3, 4, 5, 6, 7, 8], 2, 4).expect("valid step");
//! assert_eq!(hidden.dims(), &[8, 16]);
//! let report = rt.report();
//! assert!(report.totals.total_s() > 0.0);
//! ```
//!
//! # Conformance auditing
//!
//! With [`RuntimeConfig::trace`] set, every rank records its sends and
//! receives in the vocabulary of `actcomp-check`'s static message-flow
//! graph; [`ThreadedRuntime::take_trace`] drains the per-rank sequences
//! and [`actcomp_check::audit_trace`] replays them against the graph,
//! proving the run performed exactly the statically verified protocol.

#![warn(missing_docs)]

pub mod comm;
pub mod config;
pub mod layer;
mod link;
pub mod procs;
mod rank;
pub mod report;
mod runtime;
pub mod serve;
pub mod shard;
pub mod supervisor;
mod trace;
mod wire;

pub use comm::{
    set_chunk_rows, set_pipeline_depth, try_set_chunk_rows, try_set_pipeline_depth, RingTuning,
    TpGroup,
};
pub use config::{RuntimeConfig, RuntimeError};
pub use procs::{run_worker, ProcsError, ProcsOptions, ProcsRuntime, WorkerArgs};
pub use rank::RankGrads;
pub use report::{PhaseTimers, RankReport, RuntimeReport};
pub use runtime::ThreadedRuntime;
pub use serve::{
    run_load, Arrival, LoadConfig, LoadReport, ServeBackend, ServeConfig, ServeEngine, ServeError,
    ServeHandle, ServeStats, Ticket,
};
pub use shard::ShardError;
pub use supervisor::{supervise, RecoveryEvent, RecoveryTrace, SuperviseOptions};
pub use wire::{set_wire_dtype, wire_dtype, WireDtype};
