//! Checkpoint-based rank recovery for the `procs` backend.
//!
//! [`supervise`] wraps the launcher side of a multi-process training
//! run in a restart loop:
//!
//! 1. launch a worker generation (each generation carries a distinct
//!    epoch in its transport handshake, so stragglers from a fenced-off
//!    generation cannot connect to the new one);
//! 2. drive the training step loop, taking a distributed checkpoint
//!    (one [`shard`](crate::shard) per rank plus a `manifest.json`)
//!    every `checkpoint_every` steps;
//! 3. on a *recoverable* failure — a worker died ([`ProcsError::WorkerLost`]),
//!    went silent ([`ProcsError::RankTimeout`]), or the control plane
//!    broke ([`ProcsError::Transport`]) — kill the surviving workers,
//!    wait out an exponential backoff, relaunch the whole world at the
//!    next epoch, restore the last checkpoint, and resume from there.
//!
//! Because the driver replays the *same* token ids every step and every
//! rank's state is exactly its checkpoint shard, a recovered run is
//! bit-identical to a fault-free one — the chaos e2e asserts equal
//! `--grad-hash` output. Fault specs ([`ProcsOptions::fault`]) are
//! injected into the first generation only; respawned generations run
//! clean, otherwise a `kill` fault would re-fire forever.

use crate::procs::{ProcsError, ProcsOptions, ProcsRuntime};
use actcomp_tensor::Tensor;
use serde::Serialize;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// First-retry backoff; doubles per consecutive restart.
const BACKOFF_BASE: Duration = Duration::from_millis(100);
/// Backoff ceiling.
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// How to run a supervised (restartable) multi-process training loop.
pub struct SuperviseOptions {
    /// Launch options for each worker generation. `epoch` is the
    /// *starting* epoch; the supervisor bumps it on every restart.
    pub procs: ProcsOptions,
    /// Total training steps to run.
    pub steps: usize,
    /// SGD learning rate applied each step.
    pub lr: f32,
    /// Token ids replayed every step (determinism requires the driver,
    /// not the supervisor, to fix these once).
    pub ids: Vec<usize>,
    /// Batch dimension of each step.
    pub batch: usize,
    /// Sequence length of each step.
    pub seq: usize,
    /// Take a distributed checkpoint every N steps (`None` = never;
    /// recovery then replays from step 0).
    pub checkpoint_every: Option<usize>,
    /// Where checkpoint shards and `manifest.json` live.
    pub checkpoint_dir: PathBuf,
    /// How many restarts to attempt before giving up and surfacing the
    /// underlying error.
    pub max_restarts: usize,
}

/// One recovery incident: what failed, and where training resumed.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryEvent {
    /// Epoch of the generation that failed.
    pub epoch: u32,
    /// Step being executed when the failure surfaced.
    pub step: usize,
    /// Rendering of the triggering [`ProcsError`].
    pub detail: String,
    /// Step the relaunched generation resumed from (0 = from scratch).
    pub resumed_from: usize,
    /// Backoff slept before relaunching, in milliseconds.
    pub backoff_ms: u64,
}

/// Everything that went wrong (and was survived) during a supervised
/// run. Serialized to `RECOVERY_trace.json` by the CLI.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RecoveryTrace {
    /// Number of generation restarts performed.
    pub restarts: usize,
    /// One entry per restart, in order.
    pub events: Vec<RecoveryEvent>,
}

/// The `manifest.json` beside the checkpoint shards: which step the
/// directory holds, which generation wrote it, and for which run.
#[derive(Serialize)]
struct Manifest {
    step: usize,
    epoch: u32,
    world: usize,
    config_hash: String,
}

/// Is this an error a relaunch could plausibly fix? Worker deaths,
/// silence, and broken connections are; config, spawn, and protocol
/// errors would just re-fire identically.
fn recoverable(e: &ProcsError) -> bool {
    matches!(
        e,
        ProcsError::WorkerLost { .. } | ProcsError::RankTimeout { .. } | ProcsError::Transport(_)
    )
}

/// Atomically writes the checkpoint manifest (temp file + rename), so a
/// launcher killed mid-write cannot leave a manifest pointing at shards
/// that were never taken.
fn write_manifest(dir: &Path, m: &Manifest) -> Result<(), ProcsError> {
    let io_err = |e: std::io::Error| ProcsError::Protocol {
        detail: format!("writing checkpoint manifest: {e}"),
    };
    let json = serde_json::to_string_pretty(m).map_err(|e| ProcsError::Protocol {
        detail: format!("encoding checkpoint manifest: {e}"),
    })?;
    let tmp = dir.join("manifest.json.tmp");
    {
        let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(json.as_bytes()).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
    }
    std::fs::rename(&tmp, dir.join("manifest.json")).map_err(io_err)
}

/// Runs `steps` training steps under restart supervision.
///
/// `on_step` is invoked once per *successful* step with the step index
/// and the final hidden states (the CLI prints the loss there). Steps
/// replayed after a restart from a checkpoint are **not** re-reported —
/// the observable step sequence matches a fault-free run. Steps re-run
/// because no checkpoint covered them *are* re-reported, flagged by the
/// recovery trace.
///
/// On success, returns the final (healthy) runtime — so the caller can
/// still `collect_grads` / `report` / `shutdown` — plus the recovery
/// trace. On failure, returns the last error after `max_restarts`
/// exhausted restarts, or immediately for non-recoverable errors.
pub fn supervise(
    opts: SuperviseOptions,
    on_step: &mut dyn FnMut(usize, &Tensor),
) -> Result<(ProcsRuntime, RecoveryTrace), ProcsError> {
    if let Some(every) = opts.checkpoint_every {
        if every == 0 {
            return Err(ProcsError::Protocol {
                detail: "checkpoint interval must be at least 1 step".to_string(),
            });
        }
    }
    let mut trace = RecoveryTrace::default();
    let base_epoch = opts.procs.epoch;
    let mut epoch = base_epoch;
    // Step the next generation resumes from == the last checkpointed
    // step (tracked here rather than re-read from the manifest; the
    // manifest is for humans and external tooling).
    let mut last_ckpt: usize = 0;

    loop {
        let mut procs = opts.procs.clone();
        procs.epoch = epoch;
        if epoch > base_epoch {
            // The fault plan describes generation 0; re-injecting a
            // `kill` fault into the replacement would fail every
            // generation until max_restarts runs out.
            procs.fault = None;
        }

        // One generation: launch, restore, step until done or dead.
        let outcome = run_generation(procs, &opts, last_ckpt, epoch, &mut last_ckpt, on_step);
        match outcome {
            Ok(rt) => return Ok((rt, trace)),
            Err((step, e)) if recoverable(&e) => {
                trace.restarts += 1;
                if trace.restarts > opts.max_restarts {
                    return Err(e);
                }
                let backoff = backoff_for(trace.restarts);
                trace.events.push(RecoveryEvent {
                    epoch,
                    step,
                    detail: e.to_string(),
                    resumed_from: last_ckpt,
                    backoff_ms: backoff.as_millis() as u64,
                });
                std::thread::sleep(backoff);
                epoch += 1;
            }
            Err((_, e)) => return Err(e),
        }
    }
}

/// Exponential backoff for the `attempt`-th restart (1-based).
fn backoff_for(attempt: usize) -> Duration {
    let exp = (attempt - 1).min(16) as u32;
    (BACKOFF_BASE * 2u32.pow(exp)).min(BACKOFF_CAP)
}

/// Launches one worker generation and drives it to completion. Errors
/// carry the step at which they surfaced (the launch/restore phase
/// reports the step it was about to resume from). Dropping the runtime
/// on the error path kills the generation's surviving workers, fencing
/// them off before the next generation launches.
fn run_generation(
    procs: ProcsOptions,
    opts: &SuperviseOptions,
    start_step: usize,
    epoch: u32,
    last_ckpt: &mut usize,
    on_step: &mut dyn FnMut(usize, &Tensor),
) -> Result<ProcsRuntime, (usize, ProcsError)> {
    let mut rt = ProcsRuntime::launch(procs).map_err(|e| (start_step, e))?;
    if start_step > 0 {
        rt.restore(&opts.checkpoint_dir, start_step)
            .map_err(|e| (start_step, e))?;
    }
    for step in start_step..opts.steps {
        let result = (|| -> Result<(), ProcsError> {
            let y = rt.forward(&opts.ids, opts.batch, opts.seq)?;
            on_step(step, &y);
            rt.zero_grad()?;
            rt.backward(&y)?;
            rt.sgd_step(opts.lr)?;
            if let Some(every) = opts.checkpoint_every {
                if (step + 1).is_multiple_of(every) && step + 1 < opts.steps {
                    rt.checkpoint(&opts.checkpoint_dir, step + 1)?;
                    write_manifest(
                        &opts.checkpoint_dir,
                        &Manifest {
                            step: step + 1,
                            epoch,
                            world: rt.world(),
                            config_hash: format!("{:016x}", rt.tag()),
                        },
                    )?;
                    *last_ckpt = step + 1;
                }
            }
            Ok(())
        })();
        result.map_err(|e| (step, e))?;
    }
    Ok(rt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        assert_eq!(backoff_for(1), Duration::from_millis(100));
        assert_eq!(backoff_for(2), Duration::from_millis(200));
        assert_eq!(backoff_for(3), Duration::from_millis(400));
        assert_eq!(backoff_for(6), Duration::from_secs(2), "capped");
        assert_eq!(backoff_for(40), Duration::from_secs(2), "no overflow");
    }

    #[test]
    fn recoverable_classifies_errors() {
        assert!(recoverable(&ProcsError::WorkerLost {
            rank: Some(1),
            detail: "gone".to_string(),
        }));
        assert!(recoverable(&ProcsError::RankTimeout {
            rank: 0,
            after: Duration::from_secs(1),
        }));
        assert!(!recoverable(&ProcsError::Protocol {
            detail: "bad frame".to_string(),
        }));
        assert!(!recoverable(&ProcsError::MpscUnsupported));
    }
}
