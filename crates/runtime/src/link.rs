//! Transport-generic message links between rank workers.
//!
//! Every channel a rank worker uses — ring collectives, intra-stage
//! broadcast, pipeline-boundary activations and gradients — is either a
//! plain in-process `std::sync::mpsc` channel carrying the typed message
//! (the threads backend's zero-copy fast path) or a framed
//! [`Transport`](actcomp_net::Transport) channel carrying the message's
//! [`WireMsg`](crate::wire::WireMsg) encoding (Unix sockets, TCP, or the
//! trait-level mpsc backend). Workers are written against [`MsgTx`] /
//! [`MsgRx`] and cannot tell the difference; the transport-conformance
//! suite holds them to *bitwise* identical gradients either way.
//!
//! Channel ids are fixed per edge kind, so a directed rank pair uses a
//! distinct `(from, to, chan)` triple per logical link:
//!
//! | chan | edge |
//! |------|------|
//! | [`CHAN_RING`]  | ring link `t → (t+1) % tp` within a stage |
//! | [`CHAN_BCAST`] | stage rank 0 → each TP peer |
//! | [`CHAN_FWD`]   | boundary activations, stage `s` → `s+1` (rank 0s) |
//! | [`CHAN_GRAD`]  | boundary gradients, stage `s+1` → `s` (rank 0s) |

use crate::wire::{decode_msg, encode_msg, WireMsg};
use actcomp_net::{FrameRx, FrameTx, Transport, TransportError};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::time::Duration;

/// Upper bound on one framed data-plane receive. A *dead* peer surfaces
/// much sooner as `PeerClosed` (the socket demux drops its queues on
/// EOF); this deadline only catches a peer that is alive but silent —
/// e.g. a dropped frame under fault injection — turning an indefinite
/// stall into a typed timeout that fails the step instead of hanging
/// the worker forever.
const RECV_DEADLINE: Duration = Duration::from_secs(600);

/// Ring-collective traffic between TP neighbours.
pub(crate) const CHAN_RING: u16 = 1;
/// Intra-stage broadcast fan-out from each stage's rank 0.
pub(crate) const CHAN_BCAST: u16 = 2;
/// Forward boundary activations (and post-drain grad sync).
pub(crate) const CHAN_FWD: u16 = 3;
/// Backward boundary gradients.
pub(crate) const CHAN_GRAD: u16 = 4;

/// Why a link operation failed. Data-plane callers treat every variant
/// as a dead peer (the worker panics and the driver surfaces it);
/// control-plane callers keep the detail.
#[derive(Debug)]
pub(crate) enum LinkError {
    /// The in-process channel or connection was closed.
    Closed,
    /// The transport reported a typed failure.
    Transport(TransportError),
    /// A frame arrived but did not decode as the expected message.
    Decode(crate::wire::WireError),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Closed => write!(f, "peer channel closed"),
            LinkError::Transport(e) => write!(f, "{e}"),
            LinkError::Decode(e) => write!(f, "{e}"),
        }
    }
}

/// Sending half of a worker link: typed fast path or framed transport.
///
/// Methods take `&self` (the framed side locks internally) so workers
/// can hold a sender and receiver of the same group simultaneously,
/// exactly as they did with bare `mpsc` endpoints.
pub(crate) enum MsgTx<T: WireMsg> {
    /// In-process typed channel (threads backend).
    Typed(Sender<T>),
    /// Framed transport channel; messages cross as their wire encoding.
    Framed(Mutex<Box<dyn FrameTx>>),
}

impl<T: WireMsg> MsgTx<T> {
    /// Ships one message.
    pub fn send(&self, msg: T) -> Result<(), LinkError> {
        match self {
            MsgTx::Typed(tx) => tx.send(msg).map_err(|_| LinkError::Closed),
            MsgTx::Framed(tx) => {
                let buf = encode_msg(&msg);
                let mut tx = tx.lock().unwrap_or_else(|e| e.into_inner());
                tx.send(&buf).map_err(LinkError::Transport)
            }
        }
    }
}

/// Receiving half of a worker link.
pub(crate) enum MsgRx<T: WireMsg> {
    /// In-process typed channel (threads backend).
    Typed(Receiver<T>),
    /// Framed transport channel.
    Framed(Mutex<Box<dyn FrameRx>>),
}

impl<T: WireMsg> MsgRx<T> {
    /// Blocks for the next message.
    pub fn recv(&self) -> Result<T, LinkError> {
        match self {
            MsgRx::Typed(rx) => rx.recv().map_err(|_| LinkError::Closed),
            MsgRx::Framed(rx) => {
                let buf = {
                    let mut rx = rx.lock().unwrap_or_else(|e| e.into_inner());
                    rx.recv_timeout(RECV_DEADLINE)
                        .map_err(LinkError::Transport)?
                };
                decode_msg(&buf).map_err(LinkError::Decode)
            }
        }
    }
}

/// Builds a typed in-process channel pair wrapped as links.
pub(crate) fn typed_pair<T: WireMsg>() -> (MsgTx<T>, MsgRx<T>) {
    let (tx, rx) = channel();
    (MsgTx::Typed(tx), MsgRx::Typed(rx))
}

/// Every peer link one rank worker holds, grouped by role. Halves are
/// `Option`s because most roles exist only on some ranks (ring links
/// need `tp > 1`, boundary halves belong to stage rank 0s, …).
#[derive(Default)]
pub(crate) struct RankLinks {
    /// Ring send to the next TP neighbour.
    pub ring_tx: Option<MsgTx<crate::comm::RingMsg>>,
    /// Ring receive from the previous TP neighbour.
    pub ring_rx: Option<MsgRx<crate::comm::RingMsg>>,
    /// Broadcast fan-out (stage rank 0 only), to peers `1..tp` in order.
    pub bcast_tx: Vec<MsgTx<actcomp_tensor::Tensor>>,
    /// Broadcast receive (stage peers only).
    pub bcast_rx: Option<MsgRx<actcomp_tensor::Tensor>>,
    /// Boundary activation send (rank 0 of every non-final stage).
    pub fwd_tx: Option<MsgTx<crate::rank::FwdMsg>>,
    /// Boundary gradient receive (same ranks as `fwd_tx`).
    pub grad_rx: Option<MsgRx<actcomp_tensor::Tensor>>,
    /// Boundary activation receive (rank 0 of every non-first stage).
    pub fwd_rx: Option<MsgRx<crate::rank::FwdMsg>>,
    /// Boundary gradient send (same ranks as `fwd_rx`).
    pub grad_tx: Option<MsgTx<actcomp_tensor::Tensor>>,
}

/// Opens every link rank `transport.rank()` needs for a `tp × pp` world
/// over the given transport. The channel topology is identical to the
/// typed-channel plumbing in [`ThreadedRuntime::from_serial`]
/// (`crate::ThreadedRuntime::from_serial`): calling this on every rank's
/// transport yields a fully connected world.
pub(crate) fn build_rank_links(
    transport: &mut dyn Transport,
    tp: usize,
    pp: usize,
) -> Result<RankLinks, TransportError> {
    let rank = transport.rank();
    debug_assert_eq!(transport.world(), tp * pp, "transport world mismatch");
    let stage = rank / tp;
    let tpi = rank % tp;
    let mut links = RankLinks::default();

    if tp > 1 {
        let next = stage * tp + (tpi + 1) % tp;
        let prev = stage * tp + (tpi + tp - 1) % tp;
        links.ring_tx = Some(MsgTx::Framed(Mutex::new(
            transport.open_send(next, CHAN_RING)?,
        )));
        links.ring_rx = Some(MsgRx::Framed(Mutex::new(
            transport.open_recv(prev, CHAN_RING)?,
        )));
        if tpi == 0 {
            for peer in 1..tp {
                links.bcast_tx.push(MsgTx::Framed(Mutex::new(
                    transport.open_send(stage * tp + peer, CHAN_BCAST)?,
                )));
            }
        } else {
            links.bcast_rx = Some(MsgRx::Framed(Mutex::new(
                transport.open_recv(stage * tp, CHAN_BCAST)?,
            )));
        }
    }

    if tpi == 0 && stage + 1 < pp {
        let downstream = (stage + 1) * tp;
        links.fwd_tx = Some(MsgTx::Framed(Mutex::new(
            transport.open_send(downstream, CHAN_FWD)?,
        )));
        links.grad_rx = Some(MsgRx::Framed(Mutex::new(
            transport.open_recv(downstream, CHAN_GRAD)?,
        )));
    }
    if tpi == 0 && stage > 0 {
        let upstream = (stage - 1) * tp;
        links.fwd_rx = Some(MsgRx::Framed(Mutex::new(
            transport.open_recv(upstream, CHAN_FWD)?,
        )));
        links.grad_tx = Some(MsgTx::Framed(Mutex::new(
            transport.open_send(upstream, CHAN_GRAD)?,
        )));
    }
    Ok(links)
}

/// Builds the typed-channel link set for every rank of a `tp × pp`
/// world — the threads backend's plumbing, wrapped in [`MsgTx`] /
/// [`MsgRx`] so the worker code is shared with the transport path.
pub(crate) fn typed_world_links(tp: usize, pp: usize) -> Vec<RankLinks> {
    let world = tp * pp;
    let mut links: Vec<RankLinks> = (0..world).map(|_| RankLinks::default()).collect();
    for stage in 0..pp {
        if tp > 1 {
            // Ring link t → (t+1) % tp within the stage.
            for t in 0..tp {
                let (tx, rx) = typed_pair();
                links[stage * tp + t].ring_tx = Some(tx);
                links[stage * tp + (t + 1) % tp].ring_rx = Some(rx);
            }
            // Broadcast fan-out from stage rank 0.
            for peer in 1..tp {
                let (tx, rx) = typed_pair();
                links[stage * tp].bcast_tx.push(tx);
                links[stage * tp + peer].bcast_rx = Some(rx);
            }
        }
        // Pipeline boundary between this stage's and the next stage's
        // rank 0s.
        if stage + 1 < pp {
            let (fwd_tx, fwd_rx) = typed_pair();
            let (grad_tx, grad_rx) = typed_pair();
            links[stage * tp].fwd_tx = Some(fwd_tx);
            links[stage * tp].grad_rx = Some(grad_rx);
            links[(stage + 1) * tp].fwd_rx = Some(fwd_rx);
            links[(stage + 1) * tp].grad_tx = Some(grad_tx);
        }
    }
    links
}
